//! Naming and cache coherence across an NFS domain (§5.3/§6.5): aliases,
//! symlinks, mounts and multiple hosts must all collapse to one cached
//! shadow per physical file — and updates through any alias must cohere.

use shadow::prelude::*;
use shadow::Vfs;

/// Builds the paper's topology: fileserver `c` exports /usr, `a` mounts it
/// at /projl, `b` at /others.
fn nfs_sim() -> (Simulation, shadow::ClientId, shadow::ClientId, shadow::ServerId) {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let vfs = sim.vfs_mut();
    vfs.add_host("c").unwrap();
    vfs.add_host("a").unwrap();
    vfs.add_host("b").unwrap();
    vfs.mkdir_p("c", "/usr").unwrap();
    vfs.write_file("c", "/usr/foo", b"line 1\nline 2\nline 3\n".to_vec())
        .unwrap();
    vfs.mount("a", "/projl", "c", "/usr").unwrap();
    vfs.mount("b", "/others", "c", "/usr").unwrap();
    let a = sim.add_client("a", ClientConfig::new("a", 1));
    let b = sim.add_client("b", ClientConfig::new("b", 1));
    (sim, a, b, server)
}

#[test]
fn one_shadow_for_all_aliases() {
    let (mut sim, a, b, server) = nfs_sim();
    let conn_a = sim.connect(a, server, profiles::lan()).unwrap();
    let conn_b = sim.connect(b, server, profiles::lan()).unwrap();
    // Extra aliases: a symlink on a, a hard link on the fileserver
    // (reachable through both mounts).
    sim.vfs_mut().symlink("a", "/shortcut", "/projl/foo").unwrap();
    sim.vfs_mut().hard_link("c", "/usr/foo", "/usr/foo-alias").unwrap();

    let names = [
        sim.canonical_name(a, "/projl/foo").unwrap(),
        sim.canonical_name(a, "/shortcut").unwrap(),
        sim.canonical_name(b, "/others/foo").unwrap(),
        sim.canonical_name(b, "/others/foo-alias").unwrap(),
    ];
    for n in &names[1..] {
        assert_eq!(&names[0], n, "every alias resolves to one identity");
    }

    // Submit through different aliases from both workstations.
    let shared = names[0].clone();
    sim.edit_file(a, "/ja.cmd", {
        let n = shared.clone();
        move |_| format!("wc {n}\n").into_bytes()
    })
    .unwrap();
    sim.submit(a, conn_a, "/ja.cmd", &["/shortcut"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    sim.edit_file(b, "/jb.cmd", {
        let n = shared.clone();
        move |_| format!("cat {n}\n").into_bytes()
    })
    .unwrap();
    sim.submit(b, conn_b, "/jb.cmd", &["/others/foo-alias"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();

    assert_eq!(sim.finished_jobs(a).len(), 1);
    assert_eq!(
        sim.finished_jobs(b)[0].output,
        b"line 1\nline 2\nline 3\n"
    );
    // 2 job files + exactly 1 copy of the shared file.
    assert_eq!(sim.server_report(server).counter("server", "full_updates"), 3);
}

#[test]
fn edit_through_one_mount_deltas_for_the_other() {
    let (mut sim, a, b, server) = nfs_sim();
    let conn_a = sim.connect(a, server, profiles::lan()).unwrap();
    let conn_b = sim.connect(b, server, profiles::lan()).unwrap();
    let shared = sim.canonical_name(a, "/projl/foo").unwrap();

    sim.edit_file(a, "/ja.cmd", {
        let n = shared.clone();
        move |_| format!("cat {n}\n").into_bytes()
    })
    .unwrap();
    sim.submit(a, conn_a, "/ja.cmd", &["/projl/foo"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();

    // Workstation a edits through its mount; the change is visible to b
    // through the fileserver, and b's submission needs only a delta.
    sim.edit_file(a, "/projl/foo", |mut c| {
        c.extend_from_slice(b"line 4 added on a\n");
        c
    })
    .unwrap();
    sim.run_until_quiet(); // background update (delta) flows
    assert_eq!(
        sim.vfs().read_file("b", "/others/foo").unwrap(),
        b"line 1\nline 2\nline 3\nline 4 added on a\n"
    );

    sim.edit_file(b, "/jb.cmd", {
        let n = shared.clone();
        move |_| format!("wc {n}\n").into_bytes()
    })
    .unwrap();
    sim.submit(b, conn_b, "/jb.cmd", &["/others/foo"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let out = String::from_utf8_lossy(&sim.finished_jobs(b)[0].output).to_string();
    assert!(out.starts_with("4 "), "job saw the edited file: {out}");
    let m = sim.server_report(server);
    assert_eq!(
        m.counter("server", "delta_updates"),
        1,
        "a's edit travelled once, as a delta"
    );
    assert_eq!(
        m.counter("server", "full_updates"),
        3,
        "still one full copy of the shared file"
    );
}

#[test]
fn different_domains_do_not_share_shadows() {
    // Two clients in DIFFERENT naming domains submit files with identical
    // canonical names; the server must keep them apart.
    let mut sim = Simulation::new(1);
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let c1 = sim.add_client("wsx", ClientConfig::new("wsx", 1));
    let c2 = sim.add_client("wsy", ClientConfig::new("wsy", 2));
    let conn1 = sim.connect(c1, server, profiles::lan()).unwrap();
    let conn2 = sim.connect(c2, server, profiles::lan()).unwrap();

    sim.edit_file(c1, "/j.cmd", |_| b"echo domain-one\n".to_vec()).unwrap();
    sim.edit_file(c2, "/j.cmd", |_| b"echo domain-two\n".to_vec()).unwrap();
    sim.submit(c1, conn1, "/j.cmd", &[], SubmitOptions::default()).unwrap();
    sim.submit(c2, conn2, "/j.cmd", &[], SubmitOptions::default()).unwrap();
    sim.run_until_quiet();
    assert_eq!(sim.finished_jobs(c1)[0].output, b"domain-one\n");
    assert_eq!(sim.finished_jobs(c2)[0].output, b"domain-two\n");
}

#[test]
fn vfs_identities_are_stable_under_remount() {
    // Unmount/remount semantics: identity depends on the exporting host's
    // canonical path, not the mount point used to reach it.
    let mut vfs = Vfs::new(DomainId::new(1));
    vfs.add_host("server").unwrap();
    vfs.add_host("ws").unwrap();
    vfs.mkdir_p("server", "/data").unwrap();
    vfs.write_file("server", "/data/f", b"x".to_vec()).unwrap();
    vfs.mount("ws", "/m1", "server", "/data").unwrap();
    let id1 = vfs.resolve("ws", "/m1/f").unwrap().file_id;
    vfs.mount("ws", "/m2", "server", "/data").unwrap();
    let id2 = vfs.resolve("ws", "/m2/f").unwrap().file_id;
    assert_eq!(id1, id2);
}
