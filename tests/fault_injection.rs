//! Fault injection: the best-effort promises of §5.1 under adversity —
//! cache loss, starved budgets, pruned version chains, dropped
//! connections. The system must degrade to full transfers, never to
//! wrong results.

use shadow::prelude::*;
use shadow::{EditModel, FileSpec};

#[test]
fn repeated_cache_loss_always_recovers() {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();

    let content = shadow::generate_file(&FileSpec::new(20_000, 1));
    sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
        .unwrap();

    for round in 0..4 {
        if round > 0 {
            sim.drop_server_cache(server);
            let model = EditModel::fraction(0.05, round as u64);
            sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
        }
        sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
    }
    let jobs = sim.finished_jobs(client);
    assert_eq!(jobs.len(), 4);
    for j in &jobs {
        assert_eq!(j.stats.exit_code, 0, "every round still succeeds");
    }
    // Every post-loss round needed full retransfers (no usable base).
    assert!(sim.client_report(client).counter("client", "fulls_sent") >= 4 + 3);
}

#[test]
fn starved_cache_still_runs_jobs_correctly() {
    // Cache smaller than a single data file: nothing can be cached, every
    // submission degenerates to a full transfer, results stay correct.
    let mut sim = Simulation::new(1);
    let server = sim.add_server(
        "superc",
        ServerConfig::builder("superc")
            .cache_budget(1_000)
            .build()
            .unwrap(),
    );
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();
    let content = shadow::generate_file(&FileSpec::new(20_000, 1));
    sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/tiny.job", move |_| format!("head 1 {name}\n").into_bytes())
        .unwrap();
    sim.submit(client, conn, "/tiny.job", &["/data"], SubmitOptions::default())
        .unwrap();
    // The data file (20 KB) cannot fit a 1 KB cache: the job can never
    // become runnable. The server retries a bounded number of times, then
    // fails the job *explicitly* — no hang, no corruption.
    sim.run_until_quiet();
    let jobs = sim.finished_jobs(client);
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].stats.exit_code, 1);
    assert!(
        String::from_utf8_lossy(&jobs[0].errors).contains("cannot be retained"),
        "errors: {}",
        String::from_utf8_lossy(&jobs[0].errors)
    );
    assert!(sim.server_report(server).counter("cache", "rejected_too_large") >= 1);
}

#[test]
fn eviction_pressure_forces_retransfer_but_correct_output() {
    let mut sim = Simulation::new(1);
    let server = sim.add_server(
        "superc",
        ServerConfig::builder("superc")
            .cache_budget(30_000)
            .eviction(EvictionPolicy::Lru)
            .build()
            .unwrap(),
    );
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();

    // Two 20 KB files cannot both stay cached in 30 KB.
    for i in 0..2 {
        let content = shadow::generate_file(&FileSpec::new(20_000, i));
        sim.edit_file(client, &format!("/d{i}"), move |_| content.clone())
            .unwrap();
    }
    let n0 = sim.canonical_name(client, "/d0").unwrap();
    let n1 = sim.canonical_name(client, "/d1").unwrap();
    sim.edit_file(client, "/j0", { let n = n0.clone(); move |_| format!("wc {n}\n").into_bytes() })
        .unwrap();
    sim.edit_file(client, "/j1", { let n = n1.clone(); move |_| format!("wc {n}\n").into_bytes() })
        .unwrap();

    for round in 0..3 {
        for (job, data) in [("/j0", "/d0"), ("/j1", "/d1")] {
            let model = EditModel::fraction(0.02, round);
            sim.edit_file(client, data, move |c| model.apply(&c)).unwrap();
            sim.submit(client, conn, job, &[data], SubmitOptions::default())
                .unwrap();
            sim.run_until_quiet();
        }
    }
    let jobs = sim.finished_jobs(client);
    assert_eq!(jobs.len(), 6);
    for j in &jobs {
        assert_eq!(j.stats.exit_code, 0);
    }
    let cache = sim.server_report(server);
    assert!(
        cache.counter("cache", "evictions") > 0,
        "pressure must have evicted something"
    );
    // Correctness survived the evictions; extra fulls were the price.
    assert!(sim.client_report(client).counter("client", "fulls_sent") > 4);
}

#[test]
fn zero_retention_client_never_sends_deltas_but_works() {
    // A client configured to keep no old versions can never answer a
    // delta request — every update falls back to a full transfer.
    let env = ShadowEnv {
        version_retention: 0,
        ..ShadowEnv::default()
    };
    let mut sim = Simulation::new(1);
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    // The validated builder rejects zero retention, so this degenerate
    // configuration must go through the raw `with_env` path on purpose.
    let client = sim.add_client("ws", ClientConfig::new("ws", 1).with_env(env));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();

    let content = shadow::generate_file(&FileSpec::new(10_000, 1));
    sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
        .unwrap();
    for round in 0..3u64 {
        let model = EditModel::fraction(0.05, round);
        sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
        sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
    }
    assert_eq!(sim.finished_jobs(client).len(), 3);
    let m = sim.client_report(client);
    // With no retained bases, deltas are impossible... unless the server
    // happens to hold the *latest* version already (dedup). Allow zero.
    assert_eq!(m.counter("client", "deltas_sent"), 0);
    assert!(m.counter("client", "fulls_sent") >= 3);
}

#[test]
fn connection_drop_mid_stream_leaves_server_consistent() {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();
    let content = shadow::generate_file(&FileSpec::new(10_000, 1));
    sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
        .unwrap();
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();

    sim.drop_connection(client, server);
    // Reconnect and carry on: a new session, same domain, same shadows.
    let conn2 = sim.connect(client, server, profiles::lan()).unwrap();
    let model = EditModel::fraction(0.05, 5);
    sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
    sim.submit(client, conn2, "/run.job", &["/data"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let jobs = sim.finished_jobs(client);
    assert_eq!(jobs.len(), 2);
    assert_eq!(jobs[1].stats.exit_code, 0);
    // The shadow survived the disconnect: the resubmission was a delta.
    assert!(sim.server_report(server).counter("server", "delta_updates") >= 1);
}

#[test]
fn oversized_single_file_vs_budget_reports_not_corrupts() {
    let mut sim = Simulation::new(1);
    let server = sim.add_server(
        "superc",
        ServerConfig::new("superc").with_cache_budget(5_000),
    );
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();
    // The job file itself fits; jobs without data files run fine.
    sim.edit_file(client, "/ok.job", |_| b"echo fits\n".to_vec()).unwrap();
    sim.submit(client, conn, "/ok.job", &[], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    assert_eq!(sim.finished_jobs(client)[0].output, b"fits\n");
    let _ = server;
}
