//! Direct state-machine conversations (no transport at all) and the cache
//! coherence property: after any sequence of edits with the message queues
//! drained, the server's cached content for every shadowed file equals the
//! client's latest version.

use proptest::prelude::*;
use shadow::prelude::*;
use shadow::{ClientEvent, ClientNode, ConnId, ServerEvent, ServerNode, SessionId};
use shadow_client::ClientAction;
use shadow_server::ServerAction;
use shadow_proto::{ClientMessage, FileId, ServerMessage};

/// Ferries messages between one client and one server until both queues
/// are empty, firing server timers immediately. Returns the number of
/// messages exchanged.
fn drain(
    client: &mut ClientNode,
    server: &mut ServerNode,
    conn: ConnId,
    session: SessionId,
    seed_to_server: Vec<ClientMessage>,
) -> usize {
    let mut to_server: Vec<ClientMessage> = seed_to_server;
    let mut to_client: Vec<ServerMessage> = Vec::new();
    let mut timers = Vec::new();
    let mut now_ms = 0u64;
    let mut exchanged = 0;

    let handle_client_actions = |actions: Vec<ClientAction>, to_server: &mut Vec<ClientMessage>| {
        for a in actions {
            if let ClientAction::Send { message, .. } = a {
                to_server.push(message);
            }
        }
    };
    let handle_server_actions =
        |actions: Vec<ServerAction>, to_client: &mut Vec<ServerMessage>, timers: &mut Vec<_>| {
            for a in actions {
                match a {
                    ServerAction::Send { message, .. } => to_client.push(message),
                    ServerAction::SetTimer { delay_ms, token } => timers.push((delay_ms, token)),
                    // This harness exercises the wire conversation only;
                    // durability is covered by the store/runtime tests.
                    ServerAction::Persist(_) => {}
                }
            }
        };

    loop {
        let mut progressed = false;
        for msg in std::mem::take(&mut to_server) {
            exchanged += 1;
            progressed = true;
            let actions = server.handle(ServerEvent::Message {
                session,
                message: msg,
                now_ms,
            });
            handle_server_actions(actions, &mut to_client, &mut timers);
        }
        for msg in std::mem::take(&mut to_client) {
            exchanged += 1;
            progressed = true;
            let actions = client.handle(ClientEvent::Message {
                conn,
                message: msg,
                now_ms,
            });
            handle_client_actions(actions, &mut to_server);
        }
        // Fire any due timers (simulated instantly).
        for (delay, token) in std::mem::take(&mut timers) {
            progressed = true;
            now_ms += delay;
            let actions = server.handle(ServerEvent::Timer { token, now_ms });
            handle_server_actions(actions, &mut to_client, &mut timers);
        }
        if !progressed {
            return exchanged;
        }
    }
}

fn handshake() -> (ClientNode, ServerNode, ConnId, SessionId) {
    let mut client = ClientNode::new(ClientConfig::new("ws", 1));
    let mut server = ServerNode::new(ServerConfig::new("sc"));
    let conn = ConnId::new(0);
    let session = SessionId::new(1);
    server.handle(ServerEvent::Connected { session, now_ms: 0 });
    let actions = client.connect(conn);
    let mut to_server = Vec::new();
    for a in actions {
        if let ClientAction::Send { message, .. } = a {
            to_server.push(message);
        }
    }
    for msg in to_server {
        let actions = server.handle(ServerEvent::Message {
            session,
            message: msg,
            now_ms: 0,
        });
        for a in actions {
            if let ServerAction::Send { message, .. } = a {
                client.handle(ClientEvent::Message {
                    conn,
                    message,
                    now_ms: 0,
                });
            }
        }
    }
    (client, server, conn, session)
}

#[test]
fn minimal_conversation_completes_a_job() {
    let (mut client, mut server, conn, session) = handshake();
    let job = FileRef::new(FileId::new(1), "ws:/j");
    client.edit_finished(&job, b"echo conversational\n".to_vec());
    let (_, actions) = client
        .submit(conn, &job, &[], SubmitOptions::default())
        .unwrap();
    let mut to_server = Vec::new();
    for a in actions {
        if let ClientAction::Send { message, .. } = a {
            to_server.push(message);
        }
    }
    let exchanged = drain(&mut client, &mut server, conn, session, to_server);
    assert!(exchanged > 0);
    assert_eq!(server.report().counter("server", "jobs_completed"), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE coherence invariant (§6.4): whatever sequence of editing
    /// sessions happens, once the network drains, the server's cache for
    /// each shadowed file digests identically to the client's latest
    /// version.
    #[test]
    fn cache_coherence_under_arbitrary_edit_sequences(
        edits in prop::collection::vec((0u64..3, prop::collection::vec(any::<u8>(), 0..200)), 1..24)
    ) {
        let (mut client, mut server, conn, session) = handshake();
        // Register up to three files and submit once so the server has
        // interest in each (job references them as data files).
        let files: Vec<FileRef> = (0..3)
            .map(|i| FileRef::new(FileId::new(i + 1), format!("ws:/f{i}")))
            .collect();
        let job = FileRef::new(FileId::new(99), "ws:/job");
        for f in &files {
            client.edit_finished(f, b"initial\ncontent\n".to_vec());
        }
        client.edit_finished(&job, b"echo ok\n".to_vec());
        let (_, actions) = client.submit(conn, &job, &files, SubmitOptions::default()).unwrap();
        let seed: Vec<ClientMessage> = actions
            .into_iter()
            .filter_map(|a| match a {
                ClientAction::Send { message, .. } => Some(message),
                _ => None,
            })
            .collect();
        drain(&mut client, &mut server, conn, session, seed);

        // Arbitrary interleaved editing sessions. Note: line-oriented
        // content (arbitrary bytes are fine — Document handles any bytes).
        for (which, content) in edits {
            let f = &files[which as usize];
            let (_, actions) = client.edit_finished(f, content);
            let seed: Vec<ClientMessage> = actions
                .into_iter()
                .filter_map(|a| match a {
                    ClientAction::Send { message, .. } => Some(message),
                    _ => None,
                })
                .collect();
            drain(&mut client, &mut server, conn, session, seed);
        }

        // Coherence: the server's cached content digests identically to
        // the client's latest version of every shadowed file.
        for (i, f) in files.iter().enumerate() {
            let key = shadow::FileKey::new(shadow::DomainId::new(1), f.id);
            let cached = server.cached_digest(key);
            prop_assert!(cached.is_some(), "file {i} should be cached");
            prop_assert_eq!(
                cached, client.latest_digest(f.id),
                "file {} cache must equal the client's latest content", i
            );
        }
    }
}
