//! Transport equivalence: the same scenario over the deterministic
//! simulator and the live (threaded, pipe-based) system must produce
//! identical protocol outcomes — same outputs, same delta/full decisions,
//! same server-side counters. Frames are byte-identical because both
//! drivers run the same state machines through the same codec.

use std::time::Duration;

use shadow::prelude::*;

/// The scenario: submit, edit 3 times, resubmit each time.
struct Outcome {
    outputs: Vec<Vec<u8>>,
    client_deltas: u64,
    client_fulls: u64,
    server_deltas: u64,
    server_fulls: u64,
    jobs_completed: u64,
}

fn versions_of_data() -> Vec<Vec<u8>> {
    let base: Vec<u8> = (0..800)
        .map(|i| format!("entry {i} = {}\n", i * 31 % 1000))
        .collect::<String>()
        .into_bytes();
    let mut versions = vec![base.clone()];
    let mut cur = base;
    for round in 1..4 {
        let text = String::from_utf8(cur.clone()).unwrap();
        let needle = format!("entry {} =", round * 100);
        let replaced = text.replace(&needle, &format!("ENTRY {} =", round * 100));
        cur = replaced.into_bytes();
        versions.push(cur.clone());
    }
    versions
}

fn run_sim() -> Outcome {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("sc", ServerConfig::new("sc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();

    let versions = versions_of_data();
    sim.edit_file(client, "/data", {
        let v = versions[0].clone();
        move |_| v.clone()
    })
    .unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| format!("grep ENTRY {name}\n").into_bytes())
        .unwrap();
    for v in &versions {
        let v = v.clone();
        sim.edit_file(client, "/data", move |_| v.clone()).unwrap();
        sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
    }
    let cm = sim.client_report(client);
    let sm = sim.server_report(server);
    Outcome {
        outputs: sim.finished_jobs(client).iter().map(|j| j.output.clone()).collect(),
        client_deltas: cm.counter("client", "deltas_sent"),
        client_fulls: cm.counter("client", "fulls_sent"),
        server_deltas: sm.counter("server", "delta_updates"),
        server_fulls: sm.counter("server", "full_updates"),
        jobs_completed: sm.counter("server", "jobs_completed"),
    }
}

fn run_live() -> Outcome {
    let system = Deployment::new(ServerConfig::new("sc")).pipes().unwrap();
    let mut client = system.connect_client(ClientConfig::new("ws", 1));
    client.wait_ready(Duration::from_secs(5)).unwrap();

    // Use the same canonical names the simulation derives from its vfs.
    let data = FileRef::new(data_file_id(), "ws:/data");
    let job = FileRef::new(job_file_id(), "ws:/run.job");
    let versions = versions_of_data();
    client.edit_finished(&data, versions[0].clone());
    client.edit_finished(&job, b"grep ENTRY ws:/data\n".to_vec());

    let mut outputs = Vec::new();
    for v in &versions {
        client.edit_finished(&data, v.clone());
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .unwrap();
        let (_, output, _, _) = client.wait_job(Duration::from_secs(10)).unwrap();
        outputs.push(output);
    }
    let cm = client.report();
    drop(client);
    let server = system.shutdown().remove(0);
    let sm = server.report();
    Outcome {
        outputs,
        client_deltas: cm.counter("client", "deltas_sent"),
        client_fulls: cm.counter("client", "fulls_sent"),
        server_deltas: sm.counter("server", "delta_updates"),
        server_fulls: sm.counter("server", "full_updates"),
        jobs_completed: sm.counter("server", "jobs_completed"),
    }
}

/// The simulation derives ids from canonical names; mirror that so both
/// worlds reference identical files.
fn data_file_id() -> FileId {
    id_for("ws", "/data")
}
fn job_file_id() -> FileId {
    id_for("ws", "/run.job")
}
fn id_for(host: &str, path: &str) -> FileId {
    let digest = shadow::ContentDigest::of(format!("{host}\u{0}{path}").as_bytes());
    FileId::new(digest.as_u64())
}

#[test]
fn sim_and_live_agree_on_protocol_outcomes() {
    let sim = run_sim();
    let live = run_live();
    assert_eq!(sim.outputs, live.outputs, "same job outputs in both worlds");
    assert_eq!(sim.client_deltas, live.client_deltas);
    assert_eq!(sim.client_fulls, live.client_fulls);
    assert_eq!(sim.server_deltas, live.server_deltas);
    assert_eq!(sim.server_fulls, live.server_fulls);
    assert_eq!(sim.jobs_completed, live.jobs_completed);
    // And the scenario itself behaved as designed: 1 full + 3 deltas.
    assert_eq!(sim.jobs_completed, 4);
    assert_eq!(sim.server_deltas, 3);
}
