//! Output routing (§8.3: "routing the output to different hosts") and
//! delivery fallbacks: the output goes to the requested host when it has a
//! live session, else back to the submitter; a submitter that reconnects
//! under the same host name still receives late output.

use shadow::prelude::*;

#[test]
fn output_routes_to_named_host() {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("sc", ServerConfig::new("sc"));
    let submitter = sim.add_client("ws", ClientConfig::new("ws", 1));
    let printer = sim.add_client("printer", ClientConfig::new("printer", 1));
    let conn = sim.connect(submitter, server, profiles::lan()).unwrap();
    sim.connect(printer, server, profiles::lan()).unwrap();

    sim.edit_file(submitter, "/j", |_| b"echo routed output\n".to_vec())
        .unwrap();
    sim.submit(
        submitter,
        conn,
        "/j",
        &[],
        SubmitOptions {
            deliver_to: Some(HostName::new("printer")),
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    sim.run_until_quiet();
    assert!(sim.finished_jobs(submitter).is_empty());
    let routed = sim.finished_jobs(printer);
    assert_eq!(routed.len(), 1);
    assert_eq!(routed[0].output, b"routed output\n");
}

#[test]
fn unknown_route_falls_back_to_submitter() {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("sc", ServerConfig::new("sc"));
    let submitter = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(submitter, server, profiles::lan()).unwrap();
    sim.edit_file(submitter, "/j", |_| b"echo fallback\n".to_vec())
        .unwrap();
    sim.submit(
        submitter,
        conn,
        "/j",
        &[],
        SubmitOptions {
            deliver_to: Some(HostName::new("no-such-host")),
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    sim.run_until_quiet();
    let jobs = sim.finished_jobs(submitter);
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].output, b"fallback\n");
}

#[test]
fn submitter_reconnect_under_same_host_receives_late_output() {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("sc", ServerConfig::new("sc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();
    // A job slow enough to outlive the first connection.
    sim.edit_file(client, "/slow.job", |_| {
        b"compute 20000000000\necho finally\n".to_vec()
    })
    .unwrap();
    sim.submit(client, conn, "/slow.job", &[], SubmitOptions::default())
        .unwrap();
    sim.run_until(sim.now() + SimTime::from_secs(2));
    // Connection drops mid-run; the client reconnects (same host name).
    sim.drop_connection(client, server);
    let _conn2 = sim.connect(client, server, profiles::lan()).unwrap();
    sim.run_until_quiet();
    let jobs = sim.finished_jobs(client);
    assert_eq!(jobs.len(), 1, "late output reached the reconnected session");
    assert_eq!(jobs[0].output, b"finally\n");
}

#[test]
fn output_to_disconnected_everything_is_dropped_not_fatal() {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("sc", ServerConfig::new("sc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();
    sim.edit_file(client, "/slow.job", |_| {
        b"compute 20000000000\necho lost\n".to_vec()
    })
    .unwrap();
    sim.submit(client, conn, "/slow.job", &[], SubmitOptions::default())
        .unwrap();
    sim.run_until(sim.now() + SimTime::from_secs(2));
    sim.drop_connection(client, server);
    // Nobody to deliver to: the server completes the job and moves on.
    sim.run_until_quiet();
    assert!(sim.finished_jobs(client).is_empty());
    assert_eq!(sim.server_report(server).counter("server", "jobs_completed"), 1);
}
