//! End-to-end integration: the edit-submit-fetch cycle across the whole
//! stack (vfs → client → wire → server → executor → output delivery),
//! checking both functional results and the traffic/time characteristics
//! the paper claims.

use shadow::prelude::*;
use shadow::{CpuModel, EditModel, FileSpec, JobStatus, Notification};

fn setup_with_data(
    size: usize,
) -> (Simulation, shadow::ClientId, shadow::ServerId, shadow::ConnId) {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::cypress()).unwrap();
    let content = shadow::generate_file(&FileSpec::new(size, 1));
    sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
        .unwrap();
    (sim, client, server, conn)
}

#[test]
fn five_session_cycle_transfers_shrink_after_first() {
    let (mut sim, client, server, conn) = setup_with_data(50_000);
    let mut uplink_per_cycle = Vec::new();
    let mut prev = 0;
    for session in 0..5 {
        if session > 0 {
            let model = EditModel::fraction(0.05, session as u64);
            sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
        }
        sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let sent = sim.link_stats(client, server).0.payload_bytes;
        uplink_per_cycle.push(sent - prev);
        prev = sent;
    }
    assert_eq!(sim.finished_jobs(client).len(), 5);
    // First cycle carries the whole file; every later cycle carries ~5%.
    assert!(uplink_per_cycle[0] > 50_000);
    for (i, &bytes) in uplink_per_cycle.iter().enumerate().skip(1) {
        assert!(
            bytes < uplink_per_cycle[0] / 5,
            "cycle {i} sent {bytes} bytes"
        );
    }
}

#[test]
fn shadow_beats_conventional_on_resubmission_time() {
    let run = |conventional: bool| -> f64 {
        let mut sim = Simulation::new(1).with_cpu(CpuModel::default());
        let server = sim.add_server("superc", ServerConfig::new("superc"));
        let config = if conventional {
            ClientConfig::new("ws", 1).conventional()
        } else {
            ClientConfig::new("ws", 1)
        };
        let client = sim.add_client("ws", config);
        let conn = sim.connect(client, server, profiles::cypress()).unwrap();
        let content = shadow::generate_file(&FileSpec::new(100_000, 1));
        sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
        let name = sim.canonical_name(client, "/data").unwrap();
        sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
            .unwrap();
        sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let model = EditModel::fraction(0.05, 9);
        let start = sim.now();
        sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
        sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        (sim.finished_jobs(client).last().unwrap().at - start).as_secs_f64()
    };
    let conventional = run(true);
    let shadow = run(false);
    // The paper: "the entire processing is four times faster under our
    // system" for <=20% edits; at 5% we expect well above 2x.
    assert!(
        conventional / shadow > 2.0,
        "conventional {conventional:.1}s vs shadow {shadow:.1}s"
    );
}

#[test]
fn status_queries_track_job_lifecycle() {
    let (mut sim, client, _server, conn) = setup_with_data(10_000);
    // A deliberately slow job.
    sim.edit_file(client, "/slow.job", |_| b"compute 2000000000\n".to_vec())
        .unwrap();
    sim.submit(client, conn, "/slow.job", &[], SubmitOptions::default())
        .unwrap();
    // Let the submit reach the server and the job start, then query.
    let deadline = sim.now() + shadow::SimTime::from_secs(30);
    sim.run_until(deadline);
    sim.status(client, conn, None).unwrap();
    sim.run_until_quiet();
    let report = sim
        .notifications(client)
        .iter()
        .find_map(|(_, n)| match n {
            Notification::StatusReport { entries, .. } => Some(entries.clone()),
            _ => None,
        })
        .expect("a status report arrived");
    assert_eq!(report.len(), 1);
    assert!(
        matches!(report[0].status, JobStatus::Running | JobStatus::Queued),
        "status was {:?}",
        report[0].status
    );
    // After completion, a specific query reports Completed.
    let job = report[0].job;
    sim.status(client, conn, Some(job)).unwrap();
    sim.run_until_quiet();
    let last = sim
        .notifications(client)
        .iter()
        .rev()
        .find_map(|(_, n)| match n {
            Notification::StatusReport { entries, .. } => Some(entries.clone()),
            _ => None,
        })
        .unwrap();
    assert_eq!(last[0].status, JobStatus::Completed);
}

#[test]
fn multi_file_job_with_mixed_freshness() {
    let (mut sim, client, server, conn) = setup_with_data(20_000);
    // A second data file and a job reading both.
    let content2 = shadow::generate_file(&FileSpec::new(5_000, 2));
    sim.edit_file(client, "/data2", move |_| content2.clone()).unwrap();
    let n1 = sim.canonical_name(client, "/data").unwrap();
    let n2 = sim.canonical_name(client, "/data2").unwrap();
    sim.edit_file(client, "/both.job", move |_| {
        format!("wc {n1} {n2}\n").into_bytes()
    })
    .unwrap();
    sim.submit(client, conn, "/both.job", &["/data", "/data2"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();

    // Edit only one of the two files; resubmit. Only that file travels.
    let before = sim.server_report(server);
    let model = EditModel::fraction(0.10, 3);
    sim.edit_file(client, "/data2", move |c| model.apply(&c)).unwrap();
    sim.submit(client, conn, "/both.job", &["/data", "/data2"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let after = sim.server_report(server);
    assert_eq!(
        after.counter("server", "delta_updates") - before.counter("server", "delta_updates"),
        1
    );
    assert_eq!(
        after.counter("server", "full_updates"),
        before.counter("server", "full_updates")
    );
    let jobs = sim.finished_jobs(client);
    assert_eq!(jobs.len(), 2);
    let out = String::from_utf8_lossy(&jobs[1].output);
    assert_eq!(out.lines().count(), 2, "wc reported both files: {out}");
}

#[test]
fn failed_job_reports_errors_and_exit_code() {
    let (mut sim, client, _server, conn) = setup_with_data(1_000);
    sim.edit_file(client, "/bad.job", |_| b"cat nonexistent:/file\n".to_vec())
        .unwrap();
    sim.submit(client, conn, "/bad.job", &[], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let jobs = sim.finished_jobs(client);
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].stats.exit_code, 1);
    assert!(String::from_utf8_lossy(&jobs[0].errors).contains("no such shadow file"));
}

#[test]
fn job_priorities_order_the_batch_queue() {
    let (mut sim, client, _server, conn) = setup_with_data(1_000);
    // Three jobs: the first occupies the single batch slot; the later two
    // queue and must run high-priority-first.
    sim.edit_file(client, "/a.job", |_| b"compute 200000000\necho first\n".to_vec())
        .unwrap();
    sim.edit_file(client, "/b.job", |_| b"echo low\n".to_vec()).unwrap();
    sim.edit_file(client, "/c.job", |_| b"echo high\n".to_vec()).unwrap();
    sim.submit(client, conn, "/a.job", &[], SubmitOptions::default())
        .unwrap();
    sim.submit(client, conn, "/b.job", &[], SubmitOptions { priority: 1, ..SubmitOptions::default() })
        .unwrap();
    sim.submit(client, conn, "/c.job", &[], SubmitOptions { priority: 9, ..SubmitOptions::default() })
        .unwrap();
    sim.run_until_quiet();
    let outputs: Vec<String> = sim
        .finished_jobs(client)
        .iter()
        .map(|j| String::from_utf8_lossy(&j.output).trim().to_string())
        .collect();
    assert_eq!(outputs, vec!["first", "high", "low"]);
}
