//! Property-based transport equivalence: a randomly generated
//! edit/submit/resubmit script replayed through the [`Simulation`] and
//! through a [`LiveSystem`] must put the *identical byte sequence* of
//! client→server frames on the wire and produce identical job outputs.
//!
//! Both deployments are adapters over the same `shadow-runtime` drivers,
//! so any divergence here means an adapter is reordering, dropping, or
//! re-encoding traffic. Client→server frames carry no timestamps, which
//! makes byte equality meaningful; server→client frames embed job stats
//! and are compared only through the outputs they deliver.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use shadow::prelude::*;
use shadow::DriverEvent;

/// One step of the script: mutate `/data` this way, then submit.
#[derive(Debug, Clone, Copy)]
struct EditOp {
    replace: bool,
    idx: u64,
}

const LINES: u64 = 200;

fn base_content() -> Vec<u8> {
    (0..LINES)
        .map(|i| format!("entry {i} = {}\n", i * 31 % 1000))
        .collect::<String>()
        .into_bytes()
}

fn apply(cur: &mut Vec<u8>, op: EditOp) {
    let text = String::from_utf8(cur.clone()).unwrap();
    let idx = op.idx % LINES;
    let next = if op.replace {
        text.replace(&format!("entry {idx} ="), &format!("ENTRY {idx} ="))
    } else {
        format!("{text}entry {} = appended\n", LINES + idx)
    };
    *cur = next.into_bytes();
}

/// Captures the bytes of every frame a client driver sends.
fn tap() -> (Arc<Mutex<Vec<Vec<u8>>>>, shadow::EventHook) {
    let seen: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let hook: shadow::EventHook = Box::new(move |e| {
        if let DriverEvent::FrameSent { frame, .. } = e {
            sink.lock().unwrap().push(frame.to_vec());
        }
    });
    (seen, hook)
}

/// What one deployment produced: the wire bytes, the job outputs, and
/// the observability reports of both endpoints.
struct WorldResult {
    frames: Vec<Vec<u8>>,
    outputs: Vec<Vec<u8>>,
    client_report: NodeReport,
    server_report: NodeReport,
}

fn run_sim(script: &[EditOp]) -> WorldResult {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("sc", ServerConfig::new("sc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::cypress()).unwrap();
    // Installed after connect so that, like the live client (whose Hello
    // is sent inside the constructor), the tap starts after the Hello.
    let (frames, hook) = tap();
    sim.set_client_event_hook(client, hook);

    let mut content = base_content();
    let v0 = content.clone();
    sim.edit_file(client, "/data", move |_| v0.clone()).unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| {
        format!("grep ENTRY {name}\n").into_bytes()
    })
    .unwrap();

    for op in script {
        apply(&mut content, *op);
        let v = content.clone();
        sim.edit_file(client, "/data", move |_| v.clone()).unwrap();
        sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
    }
    let outputs = sim
        .finished_jobs(client)
        .iter()
        .map(|j| j.output.clone())
        .collect();
    let client_report = sim.client_report(client);
    // Mirror the live run's teardown (client drop → orderly hang-up)
    // so close-reason accounting matches world to world.
    sim.close_connection(client, server);
    let server_report = sim.server_report(server);
    let frames = frames.lock().unwrap().clone();
    WorldResult {
        frames,
        outputs,
        client_report,
        server_report,
    }
}

fn run_live(script: &[EditOp]) -> WorldResult {
    let system = Deployment::new(ServerConfig::new("sc")).pipes().unwrap();
    let mut client = system.connect_client(ClientConfig::new("ws", 1));
    let (frames, hook) = tap();
    client.set_event_hook(hook);
    client.wait_ready(Duration::from_secs(5)).unwrap();

    // Mirror the simulation's vfs-derived file ids so both worlds name
    // identical files on the wire.
    let data = FileRef::new(id_for("ws", "/data"), "ws:/data");
    let job = FileRef::new(id_for("ws", "/run.job"), "ws:/run.job");
    let mut content = base_content();
    client.edit_finished(&data, content.clone());
    client.edit_finished(&job, b"grep ENTRY ws:/data\n".to_vec());

    let mut outputs = Vec::new();
    for op in script {
        apply(&mut content, *op);
        client.edit_finished(&data, content.clone());
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .unwrap();
        let (_, output, _, _) = client.wait_job(Duration::from_secs(10)).unwrap();
        outputs.push(output);
    }
    let client_report = client.report();
    drop(client);
    let server_report = system.shutdown().remove(0).report();
    let frames = frames.lock().unwrap().clone();
    WorldResult {
        frames,
        outputs,
        client_report,
        server_report,
    }
}

fn id_for(host: &str, path: &str) -> FileId {
    let digest = ContentDigest::of(format!("{host}\u{0}{path}").as_bytes());
    FileId::new(digest.as_u64())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sim_and_live_put_identical_frames_on_the_wire(
        script in prop::collection::vec(
            (any::<bool>(), 0u64..LINES).prop_map(|(replace, idx)| EditOp { replace, idx }),
            1..4,
        ),
    ) {
        let sim_world = run_sim(&script);
        let live_world = run_live(&script);
        prop_assert_eq!(
            sim_world.frames.len(),
            live_world.frames.len(),
            "frame count diverged for {:?}",
            script
        );
        for (i, (s, l)) in sim_world.frames.iter().zip(&live_world.frames).enumerate() {
            prop_assert_eq!(s, l, "frame {} diverged for {:?}", i, script);
        }
        prop_assert_eq!(&sim_world.outputs, &live_world.outputs);

        // The unified NodeReport surface must tell the same story in both
        // worlds: identical protocol behaviour section by section. (The
        // "driver" section is deployment mechanics — notification drain
        // order and server->client frame sizes legitimately differ — so
        // only the protocol-level sections are compared.)
        for section in ["client", "versions"] {
            prop_assert_eq!(
                sim_world.client_report.section(section),
                live_world.client_report.section(section),
                "client report section {:?} diverged for {:?}",
                section,
                script
            );
        }
        for section in ["server", "cache"] {
            prop_assert_eq!(
                sim_world.server_report.section(section),
                live_world.server_report.section(section),
                "server report section {:?} diverged for {:?}",
                section,
                script
            );
        }
    }
}
