//! Adaptive flow control (§5.2/§3): under load the server postpones pulls;
//! once the load clears, the postponed updates still arrive — the paper's
//! promise that the server can pick "the best time to retrieve the needed
//! files" without losing any.

use shadow::prelude::*;
use shadow::FileKey;

fn adaptive_sim(limit: usize) -> (Simulation, shadow::ClientId, shadow::ServerId, shadow::ConnId) {
    let mut sim = Simulation::new(1);
    let server = sim.add_server(
        "superc",
        ServerConfig::builder("superc")
            .flow(FlowControl::DemandAdaptive {
                eager_queue_limit: limit,
                cache_pressure_limit: 0.9,
            })
            .build()
            .unwrap(),
    );
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();
    (sim, client, server, conn)
}

fn file_key(sim: &Simulation, host: &str, path: &str) -> FileKey {
    let name = sim.vfs().resolve(host, path).unwrap();
    FileKey::new(shadow::DomainId::new(1), name.file_id)
}

#[test]
fn postponed_pulls_land_after_load_clears() {
    let (mut sim, client, server, conn) = adaptive_sim(0);
    // Occupy the server with a slow job (queue length 1 > limit 0).
    sim.edit_file(client, "/slow.job", |_| b"compute 3000000000\n".to_vec())
        .unwrap();
    sim.submit(client, conn, "/slow.job", &[], SubmitOptions::default())
        .unwrap();
    sim.run_until(sim.now() + shadow::SimTime::from_secs(5));

    // Edit a new file while the server is busy: the pull is postponed.
    sim.edit_file(client, "/later.dat", |_| b"arrives later\n".to_vec())
        .unwrap();
    // Submit referencing it so the server has interest; still busy though.
    sim.run_until(sim.now() + shadow::SimTime::from_secs(2));
    let key = file_key(&sim, "ws", "/later.dat");
    // (The file may or may not be cached yet depending on pulse timing;
    // the strong guarantee is after quiescence.)
    sim.run_until_quiet();
    assert!(
        sim.server_report(server).counter("cache", "insertions") > 0,
        "postponed updates were eventually pulled"
    );
    let metrics = sim.server_report(server);
    assert!(metrics.counter("server", "update_requests") >= 1);
    let _ = key;
}

#[test]
fn adaptive_behaves_eagerly_when_idle() {
    let (mut sim, client, server, _conn) = adaptive_sim(4);
    sim.edit_file(client, "/f.dat", |_| b"v1\n".to_vec()).unwrap();
    // Without any submit the server has no interest yet — no pull.
    sim.run_until_quiet();
    assert_eq!(sim.server_report(server).counter("server", "update_requests"), 0);
    let _ = server;
}

#[test]
fn adaptive_full_cycle_is_equivalent_to_eager_functionally() {
    // Same scenario under eager and adaptive; outputs must match.
    let run = |flow: FlowControl| -> Vec<Vec<u8>> {
        let mut sim = Simulation::new(1);
        let server = sim.add_server("superc", ServerConfig::new("superc").with_flow(flow));
        let client = sim.add_client("ws", ClientConfig::new("ws", 1));
        let conn = sim.connect(client, server, profiles::lan()).unwrap();
        sim.edit_file(client, "/d", |_| b"1\n2\n3\n".to_vec()).unwrap();
        let name = sim.canonical_name(client, "/d").unwrap();
        sim.edit_file(client, "/j", move |_| format!("sort {name}\n").into_bytes())
            .unwrap();
        for round in 0..3 {
            sim.edit_file(client, "/d", move |mut c| {
                c.extend_from_slice(format!("extra {round}\n").as_bytes());
                c
            })
            .unwrap();
            sim.submit(client, conn, "/j", &["/d"], SubmitOptions::default())
                .unwrap();
            sim.run_until_quiet();
        }
        sim.finished_jobs(client).iter().map(|j| j.output.clone()).collect()
    };
    let eager = run(FlowControl::DemandEager);
    let adaptive = run(FlowControl::DemandAdaptive {
        eager_queue_limit: 1,
        cache_pressure_limit: 0.5,
    });
    assert_eq!(eager, adaptive);
    assert_eq!(eager.len(), 3);
}
