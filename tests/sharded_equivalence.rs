//! Sharding must be a pure deployment choice: the same multi-domain
//! workload run against a single [`ServerRuntime`]-backed system and
//! against a 4-shard `Deployment` must yield identical
//! per-domain protocol outcomes — same job outputs, same client
//! counters, and byte-identical `server`/`cache` report sections on
//! the node that served each domain. (The timing-dependent `driver` /
//! `server_runtime` sections are excluded: poll and timer counts are
//! scheduling artifacts, not protocol state.)
//!
//! The drain test proves the graceful-shutdown contract: initiating
//! shutdown while jobs are still executing loses nothing — every
//! submitted job still completes and delivers its output before the
//! shards exit.

use std::time::Duration;

use shadow::{
    shard_for, ClientConfig, Deployment, DomainId, FileRef, LiveClient, Notification, Section,
    ServerConfig, SubmitOptions,
};
use shadow_proto::FileId;

const WAIT: Duration = Duration::from_secs(10);

/// Per-domain outcome of the scripted workload.
struct DomainOutcome {
    outputs: Vec<Vec<u8>>,
    client_section: Section,
}

/// The scripted workload for one domain: a full transfer, a job, an
/// edit, and a delta resubmission — exercising cache, diff, and exec
/// paths on whichever server node owns the domain.
fn run_script(client: &mut LiveClient, tag: u64) -> DomainOutcome {
    client.wait_ready(WAIT).expect("handshake");
    let data = FileRef::new(FileId::new(2), format!("ws{tag}:/data"));
    let job = FileRef::new(FileId::new(1), format!("ws{tag}:/run.job"));
    let content: Vec<u8> = (0..400)
        .flat_map(|i| format!("row {i} of domain {tag}\n").into_bytes())
        .collect();
    client.edit_finished(&data, content.clone());
    client.edit_finished(&job, format!("wc ws{tag}:/data\n").into_bytes());

    let mut outputs = Vec::new();
    client
        .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
        .expect("submit");
    outputs.push(client.wait_job(WAIT).expect("first job").1);

    let mut edited = content;
    edited.extend_from_slice(format!("appended in domain {tag}\n").as_bytes());
    client.edit_finished(&data, edited);
    client
        .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
        .expect("resubmit");
    outputs.push(client.wait_job(WAIT).expect("second job").1);

    let client_section = client
        .report()
        .section("client")
        .expect("client section")
        .clone();
    DomainOutcome {
        outputs,
        client_section,
    }
}

/// Four domain ids that land on four *distinct* shards of a 4-way
/// split, so the equivalence claim covers every worker.
fn domains_covering_four_shards() -> Vec<u64> {
    let mut picks = Vec::new();
    let mut seen = [false; 4];
    let mut d = 1u64;
    while picks.len() < 4 {
        let s = shard_for(DomainId::new(d), 4);
        if !seen[s] {
            seen[s] = true;
            picks.push(d);
        }
        d += 1;
    }
    picks
}

#[test]
fn sharded_and_single_runtimes_agree_per_domain() {
    let domains = domains_covering_four_shards();

    // Baselines: each domain's script alone against an ordinary
    // single-runtime system.
    let mut baselines = Vec::new();
    for &d in &domains {
        let system = Deployment::new(ServerConfig::new("sc")).pipes().unwrap();
        let mut client = system.connect_client(ClientConfig::new(format!("ws{d}"), d));
        let outcome = run_script(&mut client, d);
        drop(client);
        let node = system.shutdown().remove(0);
        baselines.push((outcome, node.report()));
    }

    // The same scripts through a 4-shard system, one domain at a time
    // (sequential driving keeps per-node frame order identical).
    let sharded = Deployment::new(ServerConfig::new("sc"))
        .shards(4)
        .pipes()
        .unwrap();
    let mut sharded_outcomes = Vec::new();
    for &d in &domains {
        let mut client = sharded.connect_client(ClientConfig::new(format!("ws{d}"), d));
        sharded_outcomes.push(run_script(&mut client, d));
        drop(client);
    }
    let nodes = sharded.shutdown();
    assert_eq!(nodes.len(), 4);

    for (i, &d) in domains.iter().enumerate() {
        let (base_outcome, base_report) = &baselines[i];
        let shard_outcome = &sharded_outcomes[i];

        // Client-observed outcomes: outputs and protocol counters
        // (deltas vs fulls, versions advanced) identical.
        assert_eq!(
            base_outcome.outputs, shard_outcome.outputs,
            "domain {d}: job outputs must not depend on sharding"
        );
        assert_eq!(
            base_outcome.client_section, shard_outcome.client_section,
            "domain {d}: client counters must not depend on sharding"
        );

        // Server-side: the shard that owns the domain must have the
        // byte-identical protocol state the dedicated server had.
        let shard_report = nodes[shard_for(DomainId::new(d), 4)].report();
        for section in ["server", "cache"] {
            assert_eq!(
                base_report.section(section),
                shard_report.section(section),
                "domain {d}: `{section}` section must be identical on its shard"
            );
        }
        // And the scenario really exercised the delta path.
        assert_eq!(shard_report.counter("server", "delta_updates"), 1);
        assert_eq!(shard_report.counter("server", "jobs_completed"), 2);
    }
}

/// A mid-run disconnect must not change where a domain's state lives:
/// the client abandons its pipe between the first job and the edit,
/// resumes over a fresh transport, and the router must land the new
/// session back on the owning shard — proved by the resubmission still
/// travelling as a delta against that shard's cache.
#[test]
fn mid_run_disconnect_resumes_on_the_owning_shard() {
    let domains = domains_covering_four_shards();
    let system = Deployment::new(ServerConfig::new("sc"))
        .shards(4)
        .pipes()
        .unwrap();

    for &d in &domains {
        let mut client = system.connect_client(ClientConfig::new(format!("ws{d}"), d));
        client.wait_ready(WAIT).expect("handshake");
        let data = FileRef::new(FileId::new(2), format!("ws{d}:/data"));
        let job = FileRef::new(FileId::new(1), format!("ws{d}:/run.job"));
        let content: Vec<u8> = (0..400)
            .flat_map(|i| format!("row {i} of domain {d}\n").into_bytes())
            .collect();
        client.edit_finished(&data, content.clone());
        client.edit_finished(&job, format!("wc ws{d}:/data\n").into_bytes());
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .expect("submit");
        client.wait_job(WAIT).expect("first job");

        // The link dies between the job and the next edit; the resume
        // handshake travels over a brand-new pipe.
        client.link_down();
        client
            .resume_over(system.connect_transport())
            .expect("resume handshake");
        let ready = client
            .wait_for(WAIT, |n| matches!(n, Notification::SessionReady { .. }))
            .expect("resumed handshake");
        assert!(
            matches!(ready, Notification::SessionReady { resumed: true, .. }),
            "domain {d}: the server must recognize the resumption"
        );

        let mut edited = content;
        edited.extend_from_slice(format!("appended in domain {d}\n").as_bytes());
        client.edit_finished(&data, edited);
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .expect("resubmit");
        client.wait_job(WAIT).expect("second job");

        let report = client.report();
        assert_eq!(
            report.counter("client", "deltas_sent"),
            1,
            "domain {d}: the post-resume submission must be a delta"
        );
        assert_eq!(report.counter("client", "reconnects"), 1);
        assert!(report.counter("client", "resume_hits") >= 1);
        assert_eq!(report.counter("client", "resume_fallbacks"), 0);
        drop(client);
    }

    let nodes = system.shutdown();
    for &d in &domains {
        let report = nodes[shard_for(DomainId::new(d), 4)].report();
        assert_eq!(
            report.counter("server", "sessions_resumed"),
            1,
            "domain {d}: the resumed session must land on its owning shard"
        );
        assert_eq!(report.counter("server", "delta_updates"), 1);
        assert_eq!(report.counter("server", "jobs_completed"), 2);
    }
}

#[test]
fn shutdown_drains_in_flight_jobs() {
    // Two domains, two shards; jobs take ~500 ms (the default exec
    // profile's per-job overhead), so shutdown begins well before they
    // finish.
    let system = Deployment::new(ServerConfig::new("sc"))
        .shards(2)
        .pipes()
        .unwrap();
    let mut clients: Vec<LiveClient> = (1..=2u64)
        .map(|d| system.connect_client(ClientConfig::new(format!("ws{d}"), d)))
        .collect();
    for (i, c) in clients.iter_mut().enumerate() {
        c.wait_ready(WAIT).expect("handshake");
        let job = FileRef::new(FileId::new(1), "ws:/slow.job");
        c.edit_finished(&job, format!("echo drained {i}\n").into_bytes());
        c.submit(&job, &[], SubmitOptions::default()).expect("submit");
    }

    // Initiate shutdown NOW, while both jobs are still running. The
    // shards must keep serving their live sessions until the clients
    // have their results and hang up.
    let drainer = std::thread::spawn(move || system.shutdown());

    for (i, c) in clients.iter_mut().enumerate() {
        let (_, output, _, stats) = c.wait_job(WAIT).expect("job survives shutdown");
        assert_eq!(output, format!("drained {i}\n").into_bytes());
        assert_eq!(stats.exit_code, 0);
    }
    drop(clients);

    let nodes = drainer.join().expect("drain thread");
    assert_eq!(nodes.len(), 2);
    let completed: u64 = nodes
        .iter()
        .map(|n| n.report().counter("server", "jobs_completed"))
        .sum();
    assert_eq!(completed, 2, "no submitted job may be lost to shutdown");
}
