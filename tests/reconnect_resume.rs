//! Kill-the-link integration tests: a real session must survive its
//! transport dying — client-side (a scheduled fault-transport reset)
//! and network-side (a chaos proxy severing live TCP connections) —
//! with the reconnect supervisor driving the redial and the resumption
//! handshake keeping the delta path warm. The acceptance bar: after
//! every reconnect, the *next submission travels as a delta*, proved by
//! `resume_hits`/`resume_fallbacks` on both ends, never by a silent
//! full-transfer fallback.

use std::time::{Duration, Instant};

use shadow::tcp::TcpFramed;
use shadow::{
    connect_tcp, shard_for, ChaosProxy, ClientConfig, Deployment, DomainId, FaultPlan,
    FaultTransport, FileRef, FrameTransport, LiveClient, LiveError, Notification, ServerConfig,
    SubmitOptions, Supervisor, SupervisorConfig, SupervisorEvent, TransportClosed,
};
use shadow_proto::FileId;

const WAIT: Duration = Duration::from_secs(10);

/// Idle window for the server thread: long enough that a cut link plus
/// the whole redial dance never looks like a drained deployment.
const SERVER_IDLE: Duration = Duration::from_secs(2);

fn data_ref(tag: &str) -> FileRef {
    FileRef::new(FileId::new(2), format!("{tag}:/data"))
}

fn job_ref(tag: &str) -> FileRef {
    FileRef::new(FileId::new(1), format!("{tag}:/run.job"))
}

/// The warm-up half of the workload: a large data file (big enough that
/// the adaptive policy always prefers a delta for a small edit), a job
/// over it, and the first full transfer + execution.
fn warm_session<T: FrameTransport>(client: &mut LiveClient<T>, tag: &str) -> Vec<u8> {
    client.wait_ready(WAIT).expect("handshake");
    let content: Vec<u8> = (0..2000)
        .flat_map(|i| format!("row {i} of {tag}\n").into_bytes())
        .collect();
    client.edit_finished(&data_ref(tag), content.clone());
    client.edit_finished(&job_ref(tag), format!("wc {tag}:/data\n").into_bytes());
    client
        .submit(
            &job_ref(tag),
            std::slice::from_ref(&data_ref(tag)),
            SubmitOptions::default(),
        )
        .expect("first submit");
    client.wait_job(WAIT).expect("first job");
    content
}

/// The post-resume half: one appended line and a resubmission that must
/// travel as a delta against the cache the resumed session re-attached.
fn resubmit_after_resume<T: FrameTransport>(
    client: &mut LiveClient<T>,
    tag: &str,
    mut content: Vec<u8>,
) {
    content.extend_from_slice(format!("appended after resume in {tag}\n").as_bytes());
    client.edit_finished(&data_ref(tag), content);
    client
        .submit(
            &job_ref(tag),
            std::slice::from_ref(&data_ref(tag)),
            SubmitOptions::default(),
        )
        .expect("resubmit");
    client.wait_job(WAIT).expect("job after resume");

    let report = client.report();
    assert_eq!(
        report.counter("client", "deltas_sent"),
        1,
        "{tag}: the post-resume submission must travel as a delta"
    );
    assert_eq!(report.counter("client", "reconnects"), 1);
    assert!(
        report.counter("client", "resume_hits") >= 1,
        "{tag}: the server must confirm at least one resumable version"
    );
    assert_eq!(
        report.counter("client", "resume_fallbacks"),
        0,
        "{tag}: nothing should fall back to a full transfer"
    );
}

/// Pings until the dead link surfaces as a transport close. A cut
/// socket keeps accepting writes into OS buffers for a while, so the
/// loss is only observable once the receive side reports it.
fn observe_link_loss<T: FrameTransport>(client: &mut LiveClient<T>) -> TransportClosed {
    let deadline = Instant::now() + WAIT;
    let mut nonce = 0u64;
    loop {
        assert!(Instant::now() < deadline, "link loss was never observed");
        nonce += 1;
        let outcome = client.ping(nonce).and_then(|()| {
            client
                .wait_for(Duration::from_millis(50), |n| {
                    matches!(n, Notification::Pong { .. })
                })
                .map(|_| ())
        });
        match outcome {
            Ok(()) | Err(LiveError::Timeout) => {}
            Err(e) => {
                return e
                    .closed()
                    .unwrap_or_else(|| panic!("expected a transport close, got: {e}"))
            }
        }
    }
}

/// Drives the supervisor's policy clock (virtual time — the connector
/// dials instantly) until a dial succeeds, returning the transport and
/// how many attempts the outage took.
fn redial<N: shadow::Connector>(sup: &mut Supervisor<N>, mut now_ms: u64) -> (N::Transport, u32) {
    for _ in 0..64 {
        match sup.poll(now_ms) {
            Some(SupervisorEvent::Connected { attempts, .. }) => {
                return (sup.take_transport().expect("fresh dial"), attempts);
            }
            Some(SupervisorEvent::DialFailed { retry_at_ms }) => now_ms = retry_at_ms,
            Some(other) => panic!("unexpected supervisor event: {other:?}"),
            None => now_ms = sup.next_deadline_ms(),
        }
    }
    panic!("supervisor never reconnected");
}

/// The network kills the link: a chaos proxy cuts every live TCP
/// connection mid-session; the supervisor redials through the same
/// proxy and the session resumes with its cache knowledge intact.
#[test]
fn proxy_cut_reconnects_with_backoff_and_resumes_as_delta() {
    let runtime = Deployment::new(ServerConfig::new("sc"))
        .tcp("127.0.0.1:0")
        .unwrap();
    let addr = runtime.local_addr().unwrap();
    let server = std::thread::spawn(move || runtime.run_until_idle_for(SERVER_IDLE));
    let proxy = ChaosProxy::start(addr).unwrap();
    let proxy_addr = proxy.addr();

    // The supervisor owns the dial policy from the very first connect;
    // the client owns the mechanism once the transport is handed over.
    let mut sup = Supervisor::new(
        move || TcpFramed::connect(proxy_addr),
        SupervisorConfig {
            base_backoff_ms: 20,
            max_backoff_ms: 500,
            seed: 7,
            ..SupervisorConfig::default()
        },
    );
    let (transport, attempts) = redial(&mut sup, 0);
    assert_eq!(attempts, 1, "first dial through a healthy proxy");
    let mut client = LiveClient::over_transport(ClientConfig::new("ws1", 1), transport).unwrap();
    let content = warm_session(&mut client, "ws1");

    proxy.cut();
    let closed = observe_link_loss(&mut client);
    assert!(
        closed.error_kind().is_some() || closed.is_clean(),
        "a cut surfaces as some transport close: {closed:?}"
    );
    client.link_down();
    let retry_at = sup.link_failed(1);
    assert!(retry_at >= 21, "the first retry waits at least the base backoff");

    let (fresh, _) = redial(&mut sup, retry_at);
    client.resume_over(fresh).unwrap();
    let ready = client
        .wait_for(WAIT, |n| matches!(n, Notification::SessionReady { .. }))
        .unwrap();
    assert!(
        matches!(ready, Notification::SessionReady { resumed: true, .. }),
        "the server must recognize the handshake as a resumption"
    );
    resubmit_after_resume(&mut client, "ws1", content);

    assert_eq!(sup.stats().dials, 2);
    assert_eq!(sup.stats().reconnects, 1);
    assert_eq!(proxy.connections_served(), 2, "one original dial, one redial");

    drop(client);
    let node = server.join().unwrap().unwrap().remove(0);
    let report = node.report();
    assert_eq!(report.counter("server", "sessions_resumed"), 1);
    assert!(report.counter("server", "resume_hits") >= 1);
    assert_eq!(report.counter("server", "delta_updates"), 1);
    assert_eq!(report.counter("server", "jobs_completed"), 2);
    assert_eq!(
        report.counter("server", "closed_clean") + report.counter("server", "closed_error"),
        2,
        "both the cut session and the final hangup are accounted"
    );
}

/// The client's own transport dies: a seeded fault plan hard-resets the
/// link after a scheduled number of sends. The session resumes over a
/// clean replacement transport and the delta path stays warm.
#[test]
fn scheduled_reset_fails_over_to_a_fresh_transport() {
    let runtime = Deployment::new(ServerConfig::new("sc"))
        .tcp("127.0.0.1:0")
        .unwrap();
    let addr = runtime.local_addr().unwrap();
    let server = std::thread::spawn(move || runtime.run_until_idle_for(SERVER_IDLE));

    // 64 sends comfortably covers the handshake and the warm-up
    // workload; the heartbeat loop below then walks into the reset.
    let plan = FaultPlan {
        reset_after_sends: Some(64),
        ..FaultPlan::none(11)
    };
    let faulty = FaultTransport::new(TcpFramed::connect(addr).unwrap(), plan);
    let mut client = LiveClient::over_transport(ClientConfig::new("ws9", 9), faulty).unwrap();
    let content = warm_session(&mut client, "ws9");

    let closed = observe_link_loss(&mut client);
    assert_eq!(
        closed.error_kind(),
        Some(std::io::ErrorKind::ConnectionReset),
        "the scheduled reset is a hard error close, not an orderly EOF"
    );
    assert!(!closed.is_clean());

    client.link_down();
    let clean = FaultTransport::new(TcpFramed::connect(addr).unwrap(), FaultPlan::none(11));
    client.resume_over(clean).unwrap();
    let ready = client
        .wait_for(WAIT, |n| matches!(n, Notification::SessionReady { .. }))
        .unwrap();
    assert!(matches!(
        ready,
        Notification::SessionReady { resumed: true, .. }
    ));
    resubmit_after_resume(&mut client, "ws9", content);

    drop(client);
    let node = server.join().unwrap().unwrap().remove(0);
    let report = node.report();
    assert_eq!(report.counter("server", "sessions_resumed"), 1);
    assert_eq!(report.counter("server", "delta_updates"), 1);
    assert_eq!(report.counter("server", "jobs_completed"), 2);
}

/// Resumption must compose with sharding: the resume `Hello` carries
/// the client's domain, so the router lands the new connection on the
/// shard that holds the cached versions — on any other shard the
/// resubmission could only be a full transfer.
#[test]
fn two_shard_resume_lands_on_the_owning_shard() {
    let shards = 2usize;
    let runtime = Deployment::new(ServerConfig::new("sc"))
        .shards(shards)
        .tcp("127.0.0.1:0")
        .unwrap();
    let addr = runtime.local_addr().unwrap();
    let server = std::thread::spawn(move || runtime.run_until_idle_for(SERVER_IDLE));
    let proxy = ChaosProxy::start(addr).unwrap();

    // One domain per shard, so the routing claim covers both workers.
    let mut domains = Vec::new();
    let mut seen = vec![false; shards];
    let mut d = 1u64;
    while domains.len() < shards {
        let s = shard_for(DomainId::new(d), shards);
        if !seen[s] {
            seen[s] = true;
            domains.push(d);
        }
        d += 1;
    }

    for &d in &domains {
        let tag = format!("ws{d}");
        let mut client =
            connect_tcp(ClientConfig::new(tag.clone(), d), proxy.addr()).unwrap();
        let content = warm_session(&mut client, &tag);

        proxy.cut();
        observe_link_loss(&mut client);
        client.link_down();
        client
            .resume_over(TcpFramed::connect(proxy.addr()).unwrap())
            .unwrap();
        let ready = client
            .wait_for(WAIT, |n| matches!(n, Notification::SessionReady { .. }))
            .unwrap();
        assert!(
            matches!(ready, Notification::SessionReady { resumed: true, .. }),
            "domain {d}: resumption must survive the shard router"
        );
        resubmit_after_resume(&mut client, &tag, content);
        drop(client);
    }

    let nodes = server.join().unwrap().unwrap();
    assert_eq!(nodes.len(), shards);
    for &d in &domains {
        let report = nodes[shard_for(DomainId::new(d), shards)].report();
        assert_eq!(
            report.counter("server", "sessions_resumed"),
            1,
            "domain {d}: the resumed session must land on its owning shard"
        );
        assert_eq!(report.counter("server", "delta_updates"), 1);
        assert_eq!(report.counter("server", "jobs_completed"), 2);
    }
}
