//! Kill-and-restart: the durable shadow store must preserve the delta
//! economy across a server restart.
//!
//! A client submits edits, the server process "dies" (the deployment is
//! shut down and its in-memory state discarded), a new deployment
//! replays the journal from the same store root, and the client — whose
//! own shadow environment survived via `persist::save_state` — resubmits
//! an edited file. Because journal replay rebuilt the server's cached
//! `vN`, the resubmission must travel as a delta, not a full transfer.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use shadow::persist;
use shadow::{ClientConfig, Deployment, FileRef, ServerConfig, SubmitOptions};
use shadow_proto::FileId;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("restart-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn restart_from_journal_keeps_the_delta_path() {
    let store_root = temp_dir("store");
    let client_state = temp_dir("client");
    let data = FileRef::new(FileId::new(1), "ws:/galaxy.dat");
    let job = FileRef::new(FileId::new(2), "ws:/analyze.job");
    let content: Vec<u8> = (0..2000)
        .flat_map(|i| format!("row {i}\n").into_bytes())
        .collect();

    // Session 1: first submission, whole files travel, journal fills.
    {
        let system = Deployment::new(ServerConfig::new("sc"))
            .durable(&store_root)
            .pipes()
            .expect("deploy");
        assert_eq!(system.recovery().replayed(), 0, "fresh store");
        let mut client = system.connect_client(ClientConfig::new("ws", 1));
        client.wait_ready(Duration::from_secs(5)).unwrap();
        client.edit_finished(&data, content.clone());
        client.edit_finished(&job, b"wc ws:/galaxy.dat\n".to_vec());
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(client.report().counter("client", "fulls_sent"), 2);

        // The client's shadow environment outlives the process …
        persist::save_state(&client_state, client.node()).unwrap();
        drop(client);
        // … the server's in-memory state does NOT: the deployment is
        // discarded entirely. Only the journal under `store_root`
        // remains.
        system.shutdown();
    }

    // Session 2: a new deployment over the same store root. Journal
    // replay must rebuild the server's cached versions before serving.
    let system = Deployment::new(ServerConfig::new("sc"))
        .durable(&store_root)
        .pipes()
        .expect("redeploy");
    let recovery = system.recovery();
    assert!(
        recovery.replayed() > 0,
        "the restart must replay the journaled shadow state"
    );
    assert!(!recovery.degraded(), "a clean shutdown leaves no damage");

    let mut client = system.connect_client(ClientConfig::new("ws", 1));
    let loaded = persist::load_state(&client_state, client.node_mut()).unwrap();
    assert!(loaded.restored > 0, "the client restored its version chains");
    client.wait_ready(Duration::from_secs(5)).unwrap();

    let mut edited = content;
    edited.extend_from_slice(b"one more row\n");
    client.edit_finished(&data, edited);
    client
        .submit(&job, &[data], SubmitOptions::default())
        .unwrap();
    let (_, output, _, stats) = client.wait_job(Duration::from_secs(10)).unwrap();
    assert_eq!(stats.exit_code, 0);
    assert!(!output.is_empty());

    // The acceptance criterion: the client holding vN got to send a
    // delta against the *replayed* cache — no full transfer happened
    // after the restart.
    assert_eq!(
        client.report().counter("client", "deltas_sent"),
        1,
        "resubmission after restart must travel as a delta"
    );
    assert_eq!(client.report().counter("client", "fulls_sent"), 0);

    drop(client);
    let server = system.shutdown().remove(0);
    assert_eq!(server.report().counter("server", "delta_updates"), 1);
    let _ = fs::remove_dir_all(&store_root);
    let _ = fs::remove_dir_all(&client_state);
}

#[test]
fn sharded_restart_replays_each_shards_journal() {
    let store_root = temp_dir("sharded");
    // Spread domains over two shards, journal, kill, restart, and check
    // the replayed state survived shard-by-shard.
    {
        let system = Deployment::new(ServerConfig::new("sc"))
            .shards(2)
            .durable(&store_root)
            .pipes()
            .expect("deploy");
        for d in 1..=4u64 {
            let mut client = system.connect_client(ClientConfig::new(format!("ws{d}"), d));
            client.wait_ready(Duration::from_secs(5)).unwrap();
            let job = FileRef::new(FileId::new(1), "ws:/j.job");
            client.edit_finished(&job, format!("echo domain {d}\n").into_bytes());
            client.submit(&job, &[], SubmitOptions::default()).unwrap();
            client.wait_job(Duration::from_secs(10)).unwrap();
            drop(client);
        }
        system.shutdown();
    }

    let system = Deployment::new(ServerConfig::new("sc"))
        .shards(2)
        .durable(&store_root)
        .pipes()
        .expect("redeploy");
    let recovery = system.recovery();
    assert_eq!(recovery.domains, 4, "every domain's journal was replayed");
    assert!(recovery.replayed() > 0);

    // The replayed cache is live again: restore inserted each domain's
    // journaled versions back into the shard caches.
    let report = system.report().expect("running");
    assert!(report.counter("cache", "insertions") >= 4);
    system.shutdown();
    let _ = fs::remove_dir_all(&store_root);
}
