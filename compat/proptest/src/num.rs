//! Whole-domain numeric strategies (`prop::num::u64::ANY`, …).

macro_rules! num_module {
    ($($m:ident => $t:ty),* $(,)?) => {$(
        /// Strategies for one numeric type.
        pub mod $m {
            use crate::test_runner::TestRng;

            /// A strategy producing any value of the type.
            #[derive(Clone, Copy, Debug)]
            pub struct Any;

            /// The full-domain strategy constant.
            pub const ANY: Any = Any;

            impl crate::strategy::Strategy for Any {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    <$t as crate::Arbitrary>::arbitrary(rng)
                }
            }
        }
    )*};
}

num_module! {
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    usize => usize,
    i8 => i8,
    i16 => i16,
    i32 => i32,
    i64 => i64,
    isize => isize,
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn any_u64_generates() {
        let mut rng = TestRng::seed_from_u64(7);
        let a = super::u64::ANY.generate(&mut rng);
        let b = super::u64::ANY.generate(&mut rng);
        // Astronomically unlikely to collide with a working generator.
        assert_ne!(a, b);
    }
}
