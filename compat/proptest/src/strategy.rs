//! The [`Strategy`] trait and its combinators.

use crate::string::generate_matching;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `pred` (resampling otherwise).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            reason,
            pred,
        }
    }

    /// Filters and maps in one step (resampling on `None`).
    fn prop_filter_map<U: Debug, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            source: self,
            reason,
            f,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

const FILTER_ATTEMPTS: usize = 4096;

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone, Copy)]
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_ATTEMPTS {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}': filter rejected every sample", self.reason);
    }
}

/// Strategy produced by [`Strategy::prop_filter_map`].
#[derive(Debug, Clone, Copy)]
pub struct FilterMap<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map '{}': filter rejected every sample",
            self.reason
        );
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals are regex strategies generating matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F2);
}

type ArmFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Weighted choice between strategies with a common value type; built
/// by the `prop_oneof!` macro.
pub struct Union<V> {
    arms: Vec<(u32, ArmFn<V>)>,
    total: u64,
}

impl<V: Debug> Union<V> {
    /// Builds the union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, ArmFn<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: all weights zero");
        Union { arms, total }
    }
}

/// Wraps one strategy as a `prop_oneof!` arm.
pub fn arm<S: Strategy + 'static>(weight: u32, strategy: S) -> (u32, ArmFn<S::Value>) {
    (weight, Box::new(move |rng| strategy.generate(rng)))
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, f) in &self.arms {
            if pick < *weight as u64 {
                return f(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}
