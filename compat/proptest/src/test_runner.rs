//! Deterministic case runner: seeds, rejection handling, failure
//! reporting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// How a property run is configured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated; the run fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`/filters; resample.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejection with the given reason.
    pub fn reject(reason: String) -> Self {
        TestCaseError::Reject(reason)
    }

    /// Attaches the generated-inputs description to a failure.
    pub fn with_inputs(self, inputs: &str) -> Self {
        match self {
            TestCaseError::Fail(msg) => {
                TestCaseError::Fail(format!("{msg}\ngenerated inputs: {inputs}"))
            }
            reject => reject,
        }
    }
}

/// The generator handed to strategies; a seeded deterministic stream.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for one case attempt.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The raw 64-bit word source.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform usize draw from a half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.below((range.end - range.start) as u64) as usize)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `case` until `config.cases` attempts pass, rejections aside.
/// Deterministic: the seed stream depends only on the test name.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = (config.cases as u64) * 32 + 1024;
    while passed < config.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "proptest '{name}': gave up after {attempt} attempts \
                 ({passed}/{} cases passed; too many rejections)",
                config.cases
            );
        }
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at attempt {attempt} (seed {seed:#x}):\n{msg}")
            }
        }
    }
}
