//! Collection strategies: `vec` and `hash_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::Range;

/// Size bounds for a generated collection, half-open.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange(r)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.0.clone())
    }
}

/// A vector of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A hash map with keys from `key` and values from `value`, sized
/// within `size` (duplicate keys may produce a smaller map, as in real
/// proptest's key-collision behaviour).
pub fn hash_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> HashMapStrategy<K, V> {
    HashMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// Strategy returned by [`hash_map`].
#[derive(Debug, Clone)]
pub struct HashMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
where
    K::Value: Eq + Hash,
{
    type Value = HashMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n.saturating_mul(4) {
            if map.len() >= n {
                break;
            }
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}
