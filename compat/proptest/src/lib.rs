//! Minimal in-tree substitute for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_filter_map`, tuple and
//! range strategies, `any`, `Just`, collection / option / sample
//! strategies, a small regex-based string generator, and the
//! `proptest!` / `prop_oneof!` / `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test seed;
//! failures report the generated inputs. **No shrinking** — a failing
//! case prints the raw inputs instead of a minimised one, which is
//! acceptable for an offline CI gate.

#![forbid(unsafe_code)]

pub mod collection;
pub mod num;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

use std::marker::PhantomData;

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for [u64; 4] {
    fn arbitrary(rng: &mut TestRng) -> [u64; 4] {
        [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ]
    }
}

/// The canonical strategy for a type: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod prelude {
    //! Everything a property-test file imports with one glob.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// (with its generated inputs) is reported instead of panicking on the
/// spot.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                            left,
                            right,
                            ::std::format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left != right`\n  both: `{:?}`",
                            left
                        ),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Weighted (or unweighted) choice between strategies producing the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::arm(1u32, $strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(inputs in strategies) { body }`
/// becomes a `#[test]` running many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    let __inputs = ( $( $crate::strategy::Strategy::generate(&($strat), __rng), )+ );
                    let __described = ::std::format!("{:?}", __inputs);
                    let ( $($pat,)+ ) = __inputs;
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __outcome.map_err(|e| e.with_inputs(&__described))
                });
            }
        )*
    };
}
