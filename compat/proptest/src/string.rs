//! A tiny regex *generator*: turns the subset of regex syntax the
//! workspace's string strategies use into random matching strings.
//!
//! Supported: literal characters, `.`, character classes with ranges
//! (`[a-z./ -~]`), groups `(...)`, and the quantifiers `*` `+` `?`
//! `{m}` `{m,n}`. Unbounded quantifiers repeat at most four times.
//! Alternation and anchors are not supported and panic loudly, so an
//! unsupported pattern fails the test rather than silently generating
//! garbage.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
    Group(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

const UNBOUNDED_CAP: u32 = 4;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("string strategy: {} in pattern {:?}", what, self.pattern)
    }

    fn sequence(&mut self, in_group: bool) -> Vec<Node> {
        let mut nodes = Vec::new();
        loop {
            match self.chars.peek().copied() {
                None => {
                    if in_group {
                        self.fail("unterminated group");
                    }
                    return nodes;
                }
                Some(')') => {
                    if !in_group {
                        self.fail("unmatched ')'");
                    }
                    self.chars.next();
                    return nodes;
                }
                Some(_) => {
                    let atom = self.atom();
                    nodes.push(self.quantified(atom));
                }
            }
        }
    }

    fn atom(&mut self) -> Node {
        match self.chars.next().expect("peeked") {
            '(' => Node::Group(self.sequence(true)),
            '[' => self.class(),
            '.' => Node::AnyChar,
            '\\' => {
                let escaped = self
                    .chars
                    .next()
                    .unwrap_or_else(|| self.fail("dangling escape"));
                Node::Literal(escaped)
            }
            '|' | '^' | '$' => self.fail("unsupported regex feature"),
            c => Node::Literal(c),
        }
    }

    fn class(&mut self) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = self
                .chars
                .next()
                .unwrap_or_else(|| self.fail("unterminated class"));
            if c == ']' {
                if ranges.is_empty() {
                    self.fail("empty character class");
                }
                return Node::Class(ranges);
            }
            let lo = if c == '\\' {
                self.chars
                    .next()
                    .unwrap_or_else(|| self.fail("dangling escape in class"))
            } else {
                c
            };
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next();
                if ahead.peek() != Some(&']') {
                    self.chars.next();
                    let hi = self
                        .chars
                        .next()
                        .unwrap_or_else(|| self.fail("unterminated range"));
                    if hi < lo {
                        self.fail("inverted class range");
                    }
                    ranges.push((lo, hi));
                    continue;
                }
            }
            ranges.push((lo, lo));
        }
    }

    fn quantified(&mut self, atom: Node) -> Node {
        match self.chars.peek().copied() {
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('{') => {
                self.chars.next();
                let mut digits = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                    digits.push(self.chars.next().expect("peeked"));
                }
                let lo: u32 = digits
                    .parse()
                    .unwrap_or_else(|_| self.fail("bad repetition count"));
                let hi = match self.chars.next() {
                    Some('}') => lo,
                    Some(',') => {
                        let mut digits = String::new();
                        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                            digits.push(self.chars.next().expect("peeked"));
                        }
                        let hi: u32 = digits
                            .parse()
                            .unwrap_or_else(|_| self.fail("bad repetition bound"));
                        match self.chars.next() {
                            Some('}') => hi,
                            _ => self.fail("unterminated repetition"),
                        }
                    }
                    _ => self.fail("unterminated repetition"),
                };
                if hi < lo {
                    self.fail("inverted repetition bounds");
                }
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::AnyChar => out.push((b' ' + rng.below(95) as u8) as char),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).expect("valid scalar"));
                    return;
                }
                pick -= span;
            }
        }
        Node::Group(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let times = *lo as u64 + rng.below((*hi as u64) - (*lo as u64) + 1);
            for _ in 0..times {
                emit(inner, rng, out);
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = Parser::new(pattern).sequence(false);
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use crate::test_runner::TestRng;

    fn gen100(pattern: &str) -> Vec<String> {
        (0..100u64)
            .map(|i| generate_matching(pattern, &mut TestRng::seed_from_u64(i)))
            .collect()
    }

    #[test]
    fn class_with_counts() {
        for s in gen100("[a-d]{1,3}") {
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_range_class() {
        for s in gen100("[ -~]{0,40}") {
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn groups_and_star_and_question() {
        for s in gen100("(/([a-c.]{1,3}))*/?") {
            // Every segment introduced by the group starts with '/'.
            assert!(
                s.is_empty() || s.starts_with('/'),
                "unexpected shape: {s:?}"
            );
        }
    }

    #[test]
    fn literal_runs_pass_through() {
        assert_eq!(
            generate_matching("abc", &mut TestRng::seed_from_u64(0)),
            "abc"
        );
    }

    #[test]
    fn mixed_literal_class() {
        for s in gen100("[a-z0-9.]{1,20}") {
            assert!((1..=20).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));
        }
    }
}
