//! Sampling strategies over fixed collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// A uniform pick from a non-empty list of values.
pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select: empty choice list");
    Select { values }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.usize_in(0..self.values.len())].clone()
    }
}
