//! Minimal in-tree substitute for the `criterion` crate.
//!
//! Provides the measurement surface the bench harnesses use —
//! `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! warm-up + timed-batch mean (no statistics, no HTML reports): each
//! benchmark prints one line with the mean iteration time and, when a
//! throughput was declared, the derived rate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Something usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    mean: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, storing the mean iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and calibration: run once to estimate scale.
        let once = Instant::now();
        black_box(routine());
        let estimate = once.elapsed().max(Duration::from_nanos(1));

        // Aim for ~100ms of measurement, clamped by the sample size the
        // caller configured and a hard iteration cap.
        let budget = Duration::from_millis(100);
        let by_budget = (budget.as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as usize;
        let iters = by_budget.min(self.sample_size.max(1));

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

fn render_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn report(name: &str, mean: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean.as_nanos() > 0 => {
            let per_sec = bytes as f64 / mean.as_secs_f64();
            format!("  ({:.1} MiB/s)", per_sec / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench: {name:<40} {:>12}{rate}", render_duration(mean));
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean: Duration::ZERO,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, b.mean, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean: Duration::ZERO,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            b.mean,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean: Duration::ZERO,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            b.mean,
            self.throughput,
        );
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| vec![0u8; 64]));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
