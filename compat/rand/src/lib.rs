//! Minimal in-tree substitute for the `rand` crate.
//!
//! Provides a deterministic, seedable generator ([`rngs::StdRng`]) and
//! the [`Rng`]/[`SeedableRng`] trait subset the workspace uses:
//! `gen_range` over half-open integer/float ranges, `gen_bool`, and
//! `gen` for small primitives. The generator is xoshiro256**-style
//! (SplitMix64-seeded); it is *not* the real StdRng stream, which is
//! fine — every consumer treats the stream as opaque pseudo-random
//! input keyed only by its own seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A type that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling within a range, for `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value using the supplied 64-bit word source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (next() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (next() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// A value drawable from the uniform distribution, for `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value using the supplied 64-bit word source.
    fn draw(next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn draw(next: &mut dyn FnMut() -> u64) -> $ty {
                next() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn draw(next: &mut dyn FnMut() -> u64) -> bool {
        next() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(next: &mut dyn FnMut() -> u64) -> f64 {
        (next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience methods over a word generator.
pub trait Rng {
    /// The raw 64-bit word source.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform draw of a primitive value.
    fn gen<T: Standard>(&mut self) -> T {
        let mut next = || self.next_u64();
        T::draw(&mut next)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's deterministic pseudo-random generator
    /// (xoshiro256**, SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits = {hits}");
    }
}
