//! Minimal in-tree substitute for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: a
//! cheaply-clonable immutable byte buffer ([`Bytes`]), a growable encode
//! buffer ([`BytesMut`]), and the little-endian cursor traits
//! ([`Buf`]/[`BufMut`]) the wire codec relies on. Semantics match the
//! real crate for this subset; anything else is intentionally absent.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// A buffer borrowing nothing: copies the static slice once.
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes(Arc::from(slice))
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer used on the encode path.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut(v)
    }
}

/// Little-endian write access, as used by the wire encoder.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32);
    /// Appends an `i32`, little-endian.
    fn put_i32_le(&mut self, v: i32);
    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a slice verbatim.
    fn put_slice(&mut self, data: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

/// Little-endian read access over an advancing slice, as used by the
/// wire decoder. Reads panic when the slice is too short — callers
/// bounds-check first, exactly like the real crate.
pub trait Buf {
    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `i32` and advances.
    fn get_i32_le(&mut self) -> i32;
    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64;
    /// Bytes left to read.
    fn remaining(&self) -> usize;
}

impl Buf for &[u8] {
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }
    fn get_i32_le(&mut self) -> i32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        i32::from_le_bytes(head.try_into().expect("4 bytes"))
    }
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }
    fn remaining(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_integers() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i32_le(-5);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_slice(b"xyz");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r, b"xyz");
    }

    #[test]
    fn bytes_equality_and_clone_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2, 3]);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"hi").to_vec(), b"hi".to_vec());
    }
}
