//! Minimal in-tree substitute for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided, and only the MPMC unbounded
//! flavour the workspace uses: cloneable senders *and* receivers, with
//! disconnect detection on both sides. Built on `Mutex` + `Condvar`;
//! throughput is far below real crossbeam but semantics match for this
//! subset.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (crossbeam channels are MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// The channel is disconnected: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Why a blocking receive failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Why a non-blocking receive failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    /// Why a bounded-wait receive failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with nothing queued.
        Timeout,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock");
                state = next;
                if timed_out.timed_out() && state.items.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Dequeues, blocking until a value or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock");
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_and_receive_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_reported_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery_wakes_blocked_receiver() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42u32).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn send_fails_once_receivers_are_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }
    }
}
