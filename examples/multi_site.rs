//! One client, two supercomputer sites, routed output (§6.1 + §8.3).
//!
//! "Multiple clients can have connections open to a server simultaneously,
//! and a client can have simultaneous connections to multiple servers."
//! The future-work section adds "routing the output to different hosts" —
//! e.g. a host with a high-speed printer.
//!
//! The scientist's workstation submits the same analysis to two sites over
//! different links, with the second job's output delivered to a separate
//! print host. Background updates keep both sites' shadows fresh while
//! the user keeps editing.
//!
//! Run with: `cargo run --example multi_site`

use shadow::prelude::*;
use shadow::{EditModel, FileSpec, Notification, SimError};

fn main() -> Result<(), SimError> {
    let mut sim = Simulation::new(1);
    let purdue = sim.add_server("purdue-cyber", ServerConfig::builder("purdue-cyber").build().expect("valid config"));
    let uiuc = sim.add_server("uiuc-cray", ServerConfig::builder("uiuc-cray").build().expect("valid config"));

    let ws = sim.add_client("ws", ClientConfig::builder("ws", 1).build().expect("valid config"));
    let printer = sim.add_client("print-host", ClientConfig::builder("print-host", 1).build().expect("valid config"));

    // Local site over Cypress; remote site over ARPANET; the print host
    // sits next to the remote site.
    let conn_purdue = sim.connect(ws, purdue, profiles::cypress())?;
    let conn_uiuc = sim.connect(ws, uiuc, profiles::arpanet())?;
    let _printer_conn = sim.connect(printer, uiuc, profiles::lan())?;

    let content = shadow::generate_file(&FileSpec::new(40_000, 9));
    sim.edit_file(ws, "/field.dat", move |_| content.clone())?;
    let data = sim.canonical_name(ws, "/field.dat")?;
    sim.edit_file(ws, "/survey.job", {
        let d = data.clone();
        move |_| format!("wc {d}\nsum {d}\n").into_bytes()
    })?;

    println!("submitting to both sites…");
    sim.submit(ws, conn_purdue, "/survey.job", &["/field.dat"], SubmitOptions::default())?;
    sim.submit(
        ws,
        conn_uiuc,
        "/survey.job",
        &["/field.dat"],
        SubmitOptions {
            deliver_to: Some(HostName::new("print-host")),
            ..SubmitOptions::default()
        },
    )?;
    sim.run_until_quiet();

    let local = &sim.finished_jobs(ws)[0];
    println!(
        "purdue result at t={:>8}: {}",
        local.at,
        String::from_utf8_lossy(&local.output).lines().next().unwrap_or("")
    );
    let routed = &sim.finished_jobs(printer)[0];
    println!(
        "uiuc result routed to print-host at t={:>8}: {}",
        routed.at,
        String::from_utf8_lossy(&routed.output).lines().next().unwrap_or("")
    );

    // Keep editing: background notifications flow to BOTH sites without
    // any submit (§5.1 concurrency).
    println!("\nediting 3% of the data; shadows update in the background…");
    let model = EditModel::fraction(0.03, 77);
    sim.edit_file(ws, "/field.dat", move |c| model.apply(&c))?;
    sim.run_until_quiet();
    let m = sim.client_report(ws);
    println!(
        "client traffic: {} notifies, {} deltas, {} fulls",
        m.counter("client", "notifies_sent"),
        m.counter("client", "deltas_sent"),
        m.counter("client", "fulls_sent")
    );
    assert!(
        m.counter("client", "deltas_sent") >= 2,
        "both sites pulled the edit as deltas"
    );

    // Resubmit to the remote site: the shadow is already current, so the
    // submit itself is short and quick.
    let start = sim.now();
    sim.submit(ws, conn_uiuc, "/survey.job", &["/field.dat"], SubmitOptions::default())?;
    sim.run_until_quiet();
    let done = sim
        .notifications(ws)
        .iter()
        .rev()
        .find(|(_, n)| matches!(n, Notification::JobFinished { .. }))
        .expect("resubmission completed")
        .0;
    println!(
        "resubmission round-trip with warm shadow: {:.1}s",
        (done - start).as_secs_f64()
    );
    Ok(())
}
