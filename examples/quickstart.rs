//! Quickstart: a real (threaded) shadow server and one client.
//!
//! Deploys the server state machine in its own thread over in-process
//! pipes (`Deployment::new(...).pipes()`) —
//! connects a client, runs an editing session, submits a job, edits the
//! data and resubmits, printing what actually travelled each time.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use shadow::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("starting shadow server thread…");
    let system = Deployment::new(
        ServerConfig::builder("supercomputer").build().expect("valid config"),
    )
    .pipes()?;
    let mut client = system.connect_client(
        ClientConfig::builder("workstation", 1).build().expect("valid config"),
    );
    client.wait_ready(Duration::from_secs(5))?;
    println!("session established.\n");

    // The scientist's files. In the full system these ids come from name
    // resolution (see the nfs_naming example); here we assign them.
    let data = FileRef::new(FileId::new(1), "workstation:/home/sci/galaxy.dat");
    let job = FileRef::new(FileId::new(2), "workstation:/home/sci/analyze.job");

    // Editing session #1: create the data and the job command file.
    let dataset: Vec<u8> = (0..2000)
        .map(|i| format!("{i:06} {:8.3}\n", (i as f64 * 0.37).sin() * 100.0))
        .collect::<String>()
        .into_bytes();
    client.edit_finished(&data, dataset.clone());
    client.edit_finished(
        &job,
        b"wc workstation:/home/sci/galaxy.dat\nhead 3 workstation:/home/sci/galaxy.dat\n"
            .to_vec(),
    );

    println!("submitting analyze.job (first time: the whole file must travel)…");
    client.submit(&job, std::slice::from_ref(&data), SubmitOptions::default())?;
    let (job_id, output, _, stats) = client.wait_job(Duration::from_secs(10))?;
    println!("{job_id} completed in {} ms of server time:", stats.running_ms);
    println!("{}", String::from_utf8_lossy(&output));
    let m = client.report();
    println!(
        "traffic so far: {} full transfer(s), {} delta(s), {} payload bytes\n",
        m.counter("client", "fulls_sent"),
        m.counter("client", "deltas_sent"),
        m.counter("client", "update_payload_bytes")
    );

    // Editing session #2: fix one record, resubmit the same job.
    println!("editing one record and resubmitting…");
    let mut edited = dataset;
    let patch = b"000042 REDACTED\n";
    edited.splice(42 * 16..43 * 16, patch.iter().copied());
    client.edit_finished(&data, edited);
    client.submit(&job, &[data], SubmitOptions::default())?;
    let (job_id, output, _, _) = client.wait_job(Duration::from_secs(10))?;
    println!("{job_id} completed:");
    println!("{}", String::from_utf8_lossy(&output));
    let m = client.report();
    println!(
        "traffic total: {} full transfer(s), {} delta(s), {} payload bytes",
        m.counter("client", "fulls_sent"),
        m.counter("client", "deltas_sent"),
        m.counter("client", "update_payload_bytes")
    );
    println!("→ the resubmission travelled as a tiny ed-script delta.");

    drop(client);
    let server = system.shutdown().remove(0);
    let report = server.report();
    println!(
        "\nserver saw: {} deltas applied, {} jobs completed",
        report.counter("server", "delta_updates"),
        report.counter("server", "jobs_completed")
    );
    Ok(())
}
