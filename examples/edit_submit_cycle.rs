//! The paper's motivating scenario (§2.1): a scientist's repeated
//! edit-submit-fetch cycle over a 9600-baud Cypress line, comparing the
//! conventional batch system against shadow processing.
//!
//! Run with: `cargo run --example edit_submit_cycle`

use shadow::prelude::*;
use shadow::{CpuModel, EditModel, FileSpec, SimError};

const FILE_SIZE: usize = 100_000;
const SESSIONS: usize = 4;
const EDIT_FRACTION: f64 = 0.05;

fn run_mode(mode: TransferMode) -> Result<(), SimError> {
    let label = match mode {
        TransferMode::Shadow => "shadow processing",
        TransferMode::Conventional => "conventional batch",
    };
    println!("--- {label} over Cypress (9600 baud), {FILE_SIZE} byte data file ---");

    let mut sim = Simulation::new(1).with_cpu(CpuModel::default());
    let server = sim.add_server("superc", ServerConfig::builder("superc").build().expect("valid config"));
    let client_config = match mode {
        TransferMode::Shadow => ClientConfig::builder("ws", 1),
        TransferMode::Conventional => ClientConfig::builder("ws", 1).conventional(),
    }
    .build()
    .expect("valid config");
    let client = sim.add_client("ws", client_config);
    let conn = sim.connect(client, server, profiles::cypress())?;

    let content = shadow::generate_file(&FileSpec::new(FILE_SIZE, 1));
    sim.edit_file(client, "/experiment.dat", move |_| content.clone())?;
    let data_name = sim.canonical_name(client, "/experiment.dat")?;
    sim.edit_file(client, "/run.job", move |_| {
        format!("wc {data_name}\n").into_bytes()
    })?;

    let mut prev_bytes = 0;
    for session in 0..SESSIONS {
        let start = sim.now();
        if session > 0 {
            // The scientist notices a slight error and corrects it (§5.1).
            let model = EditModel::fraction(EDIT_FRACTION, session as u64);
            sim.edit_file(client, "/experiment.dat", move |c| model.apply(&c))?;
        }
        sim.submit(client, conn, "/run.job", &["/experiment.dat"], SubmitOptions::default())?;
        sim.run_until_quiet();
        let done = sim.finished_jobs(client).last().expect("job completed").at;
        let sent = sim.link_stats(client, server).0.payload_bytes;
        println!(
            "cycle {}: {:>7.1}s, {:>7} bytes uplink{}",
            session + 1,
            (done - start).as_secs_f64(),
            sent - prev_bytes,
            if session == 0 { "  (initial full transfer)" } else { "" },
        );
        prev_bytes = sent;
    }
    let total = sim.link_stats(client, server).0;
    println!(
        "total uplink: {} payload bytes in {} messages, finished at t={}\n",
        total.payload_bytes,
        total.messages,
        sim.now()
    );
    Ok(())
}

fn main() -> Result<(), SimError> {
    println!("Four edit-submit-fetch cycles, editing {:.0}% of the file each time.\n", EDIT_FRACTION * 100.0);
    run_mode(TransferMode::Conventional)?;
    run_mode(TransferMode::Shadow)?;
    println!("→ after the first submission, shadow processing ships only the");
    println!("  changed lines; the conventional system re-ships everything.");
    Ok(())
}
