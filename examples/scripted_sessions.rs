//! A scientist's week of scripted editing sessions (§6.3.2 version
//! control, end to end).
//!
//! Drives a sequence of [`ScriptedEditor`] sessions — substitutions,
//! deletions, insertions, the way real parameter files evolve — through
//! the shadow editor wrapper, and prints what each session cost on a
//! 9600-baud line: version numbers, delta bytes, and the version-store
//! pruning driven by server acknowledgements.
//!
//! Run with: `cargo run --example scripted_sessions`

use shadow::prelude::*;
use shadow::{ScriptedEditor, SimError};

fn main() -> Result<(), SimError> {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("superc", ServerConfig::builder("superc").build().expect("valid config"));
    let client = sim.add_client("ws", ClientConfig::builder("ws", 1).build().expect("valid config"));
    let conn = sim.connect(client, server, profiles::cypress())?;

    // Monday: write the parameter file and the job, submit.
    let initial: String = (0..800)
        .map(|i| format!("param_{i:03} = {}\n", i * 7 % 100))
        .collect::<String>()
        + "# TODO: tune param_400\nmax_iterations = 10\n";
    sim.edit_file(client, "/params.cfg", {
        let text = initial.clone();
        move |_| text.clone().into_bytes()
    })?;
    let name = sim.canonical_name(client, "/params.cfg")?;
    sim.edit_file(client, "/fit.job", move |_| format!("wc {name}\nstats {name}\n").into_bytes())?;
    sim.submit(client, conn, "/fit.job", &["/params.cfg"], SubmitOptions::default())?;
    sim.run_until_quiet();
    report(&sim, client, server, "monday: initial submission");

    // The week's editing sessions, as editor scripts.
    let sessions: Vec<(&str, ScriptedEditor)> = vec![
        (
            "tuesday: bump iterations",
            ScriptedEditor::new().substitute("max_iterations = 10", "max_iterations = 50"),
        ),
        (
            "wednesday: fix the flagged parameter",
            ScriptedEditor::new()
                .substitute("param_400 = 0", "param_400 = 42")
                .delete_matching("# TODO"),
        ),
        (
            "thursday: add a comment block",
            ScriptedEditor::new()
                .insert_line(1, "# calibration run 4")
                .append_line("# reviewed by rcy"),
        ),
    ];
    for (label, editor) in sessions {
        let mut editor = editor;
        sim.edit_file_with(client, "/params.cfg", &mut editor)?;
        sim.submit(client, conn, "/fit.job", &["/params.cfg"], SubmitOptions::default())?;
        sim.run_until_quiet();
        report(&sim, client, server, label);
    }

    let last = sim.finished_jobs(client).last().expect("jobs ran").clone();
    println!("\nfinal job output:\n{}", String::from_utf8_lossy(&last.output));
    let report = sim.client_report(client);
    println!(
        "version store now holds {} version(s), {} bytes — older versions were \
         pruned as the server acknowledged them.",
        report.counter("versions", "versions"),
        report.counter("versions", "bytes")
    );
    Ok(())
}

fn report(sim: &Simulation, client: shadow::ClientId, server: shadow::ServerId, label: &str) {
    let m = sim.client_report(client);
    let link = sim.link_stats(client, server).0;
    println!(
        "{label:<42} uplink total {:>7} B   ({} full, {} delta)",
        link.payload_bytes,
        m.counter("client", "fulls_sent"),
        m.counter("client", "deltas_sent")
    );
}
