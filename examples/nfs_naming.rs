//! Name resolution across an NFS domain (§5.3/§6.5 of the paper).
//!
//! Machine C exports `/usr`; machine A mounts it as `/projl`, machine B as
//! `/others`. Both workstations submit jobs over the same file under
//! different names — the shadow server caches exactly one copy, because
//! both names resolve to the same `(domain id, file id)` pair.
//!
//! Run with: `cargo run --example nfs_naming`

use shadow::prelude::*;
use shadow::SimError;

fn main() -> Result<(), SimError> {
    let mut sim = Simulation::new(1);
    let server = sim.add_server("superc", ServerConfig::builder("superc").build().expect("valid config"));

    // Build the NFS topology: fileserver c exports /usr.
    let vfs = sim.vfs_mut();
    vfs.add_host("c")?;
    vfs.add_host("a")?;
    vfs.add_host("b")?;
    vfs.mkdir_p("c", "/usr")?;
    let dataset: Vec<u8> = (0..500)
        .map(|i| format!("sample {i}: {}\n", i * i % 997))
        .collect::<String>()
        .into_bytes();
    vfs.write_file("c", "/usr/foo", dataset)?;
    vfs.mount("a", "/projl", "c", "/usr")?;
    vfs.mount("b", "/others", "c", "/usr")?;
    // Workstation a also reaches it through a personal symlink (an alias).
    vfs.symlink("a", "/mydata", "/projl/foo")?;

    let ws_a = sim.add_client("a", ClientConfig::builder("a", 1).build().expect("valid config"));
    let ws_b = sim.add_client("b", ClientConfig::builder("b", 1).build().expect("valid config"));
    let conn_a = sim.connect(ws_a, server, profiles::cypress())?;
    let conn_b = sim.connect(ws_b, server, profiles::cypress())?;

    println!("the same file under three user-visible names:");
    for (client, path) in [(ws_a, "/projl/foo"), (ws_a, "/mydata"), (ws_b, "/others/foo")] {
        let canonical = sim.canonical_name(client, path)?;
        println!("  {:>14} → {canonical}", path);
    }
    let shared = sim.canonical_name(ws_a, "/mydata")?;
    assert_eq!(shared, sim.canonical_name(ws_b, "/others/foo")?);

    // Workstation a submits a job over its alias.
    sim.edit_file(ws_a, "/job_a.cmd", {
        let n = shared.clone();
        move |_| format!("wc {n}\n").into_bytes()
    })?;
    sim.submit(ws_a, conn_a, "/job_a.cmd", &["/mydata"], SubmitOptions::default())?;
    sim.run_until_quiet();
    println!(
        "\nws a submitted via /mydata         → output: {}",
        String::from_utf8_lossy(&sim.finished_jobs(ws_a)[0].output).trim_end()
    );

    // Workstation b submits over its own mount: the file is ALREADY cached.
    sim.edit_file(ws_b, "/job_b.cmd", {
        let n = shared.clone();
        move |_| format!("head 2 {n}\n").into_bytes()
    })?;
    sim.submit(ws_b, conn_b, "/job_b.cmd", &["/others/foo"], SubmitOptions::default())?;
    sim.run_until_quiet();
    println!(
        "ws b submitted via /others/foo     → output: {}",
        String::from_utf8_lossy(&sim.finished_jobs(ws_b)[0].output).trim_end()
    );

    let fulls = sim.server_report(server).counter("server", "full_updates");
    println!("\nserver full transfers received: {fulls} (2 job files + 1 shared data file)");
    assert_eq!(fulls, 3, "the shared file was transferred once");
    println!("→ one cached shadow served both workstations' names.");
    Ok(())
}
