# Development shortcuts. `just check` is what CI runs.

# Build everything, run the full test suite, and lint.
check: build test lint

# Release build of the whole workspace.
build:
    cargo build --release

# The full test suite (unit + integration + property tests).
test:
    cargo test -q

# Clippy with warnings promoted to errors.
lint:
    cargo clippy -- -D warnings

# Regenerate the paper's figures/tables (slow; see EXPERIMENTS.md).
experiments:
    cargo test -q --release -p shadow experiment
