# Development shortcuts. `just check` is what CI runs.

# Build everything, run the full test suite, and lint.
check: build test lint verify analyze

# Release build of the whole workspace.
build:
    cargo build --release

# The full test suite (unit + integration + property tests).
test:
    cargo test -q --workspace

# Clippy with warnings promoted to errors.
lint:
    cargo clippy -- -D warnings

# Protocol-level verification: repo lints plus the bounded state-space
# sweep over the built-in scenarios (CI profile, a few seconds).
verify:
    cargo run --release -p shadow-check -- lint --root .
    cargo run --release -p shadow-check -- explore --profile ci

# The overnight sweep: wider reordering, bigger budgets and state caps.
verify-deep:
    cargo run --release -p shadow-check -- explore --profile deep

# Call-graph static analysis: transitive panic/alloc/clock/blocking
# guarantees over the whole workspace (deny by default; see DESIGN.md
# §13). Also exports per-rule counts + wall time to BENCH_analysis.json.
analyze:
    cargo run --release -p shadow-check -- analyze --root .
    cargo run --release -p shadow-check -- analyze --root . --json > BENCH_analysis.json

# Regenerate the paper's figures/tables (slow; see EXPERIMENTS.md).
experiments:
    cargo test -q --release -p shadow experiment

# Small-parameter pass over every bench target; each writes its rows to
# BENCH_<name>.json at the workspace root (see DESIGN.md §10).
bench-quick:
    SHADOW_BENCH_QUICK=1 cargo bench

# The full-size benchmark suite (slow; same JSON exports).
bench:
    cargo bench

# Diff pipeline micro rows + regression guard: re-exports BENCH_micro.json
# (quick parameters) and fails when any diff/apply row is more than 2x
# slower than the committed BENCH_baseline_diff.json.
bench-diff:
    SHADOW_BENCH_QUICK=1 cargo bench -p shadow-bench --bench micro
    cargo run --release -p shadow-bench --bin diff_guard

# Sharded-runtime scaling sweep (sessions x shards over live pipes);
# writes BENCH_contention.json. Quick parameters: pass no env for the
# full 10k-session sweep.
bench-contention:
    SHADOW_BENCH_QUICK=1 cargo bench -p shadow-bench --bench contention

# Durable-store recovery rows + regression guard: re-exports
# BENCH_recovery.json (quick parameters) and fails when any append or
# replay row is more than 3x slower than the committed
# BENCH_baseline_recovery.json.
bench-recovery:
    SHADOW_BENCH_QUICK=1 cargo bench -p shadow-bench --bench recovery
    cargo run --release -p shadow-bench --bin recovery_guard

# Fault-tolerance suite: the kill-the-link integration tests, then the
# seeded chaos matrix (scheduled resets, a lossy link, a healed
# partition) exporting BENCH_chaos.json, gated by chaos_guard on the
# recovered-as-delta ratio and recovery latency vs the committed
# BENCH_baseline_chaos.json.
chaos:
    cargo test -q --release -p shadow --test reconnect_resume
    SHADOW_BENCH_QUICK=1 cargo bench -p shadow-bench --bench chaos
    cargo run --release -p shadow-bench --bin chaos_guard
