//! Reverse shadow processing: caching job output at the server (§8.3).
//!
//! "Sometimes the result of processing on a supercomputer involves
//! generating a large amount of output … it will be advantageous to apply
//! the technique of shadow processing in reverse (i.e., cache the output on
//! the supercomputer, and, next time the same job is run, send the
//! differences between the current output and the previous output to the
//! client)."
//!
//! An output delta may only be used as a base once the client has
//! **acknowledged** receiving the base output — otherwise the client could
//! be asked to patch an output it never stored.

use std::collections::HashMap;

use shadow_diff::DocBuf;
use shadow_proto::{DomainId, FileId, JobId};

#[derive(Debug, Clone)]
struct OutputEntry {
    job: JobId,
    /// Cached output as a [`DocBuf`]: the line index is built once at
    /// record time, so every later reverse-shadow diff against this base
    /// starts from pre-indexed lines, and handing the entry out is O(1).
    output: DocBuf,
    acked: bool,
    inserted: u64,
}

/// The store of previous job outputs, keyed by the job command file that
/// produced them ("the same job" = same command file).
#[derive(Debug, Clone)]
pub struct OutputShadowStore {
    budget: usize,
    used: usize,
    clock: u64,
    entries: HashMap<(DomainId, FileId), OutputEntry>,
}

impl OutputShadowStore {
    /// Creates a store with a byte budget.
    pub fn new(budget: usize) -> Self {
        OutputShadowStore {
            budget,
            used: 0,
            clock: 0,
            entries: HashMap::new(),
        }
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Records the latest output for a job command file. Oversized outputs
    /// are simply not cached (best effort). Older entries are evicted FIFO
    /// to fit.
    pub fn record(&mut self, domain: DomainId, job_file: FileId, job: JobId, output: DocBuf) {
        self.clock += 1;
        if let Some(old) = self.entries.remove(&(domain, job_file)) {
            self.used -= old.output.byte_len();
        }
        if output.byte_len() > self.budget {
            return;
        }
        while self.used + output.byte_len() > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.inserted, **k))
                .map(|(k, _)| *k)
                .expect("used > 0 implies entries exist");
            let e = self.entries.remove(&victim).expect("victim exists");
            self.used -= e.output.byte_len();
        }
        self.used += output.byte_len();
        self.entries.insert(
            (domain, job_file),
            OutputEntry {
                job,
                output,
                acked: false,
                inserted: self.clock,
            },
        );
    }

    /// The acknowledged previous output usable as a delta base, if any.
    /// The returned [`DocBuf`] carries the line index built at record
    /// time, ready for [`shadow_diff::diff_docs`].
    pub fn base_for(&self, domain: DomainId, job_file: FileId) -> Option<(JobId, &DocBuf)> {
        let e = self.entries.get(&(domain, job_file))?;
        if e.acked {
            Some((e.job, &e.output))
        } else {
            None
        }
    }

    /// Marks the output of `job` as held by the client (OutputAck
    /// arrived). Returns the domain of the entry that flipped, if any —
    /// the journal key for persisting the ack.
    pub fn mark_acked(&mut self, job: JobId) -> Option<DomainId> {
        let mut domain = None;
        for (key, e) in self.entries.iter_mut() {
            if e.job == job {
                e.acked = true;
                domain = Some(key.0);
            }
        }
        domain
    }

    /// Number of cached outputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A deterministic digest of the cached outputs (model-checker state
    /// deduplication). Insertion order is excluded for the same reason
    /// recency is excluded from the file cache's digest: it only matters
    /// once eviction pressure exists.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut items: Vec<((DomainId, FileId), JobId, u64, bool)> = self
            .entries
            .iter()
            .map(|(k, e)| {
                (
                    *k,
                    e.job,
                    shadow_proto::ContentDigest::of(e.output.as_bytes()).as_u64(),
                    e.acked,
                )
            })
            .collect();
        items.sort_unstable();
        let mut h = shadow_proto::StableHasher::new();
        items.hash(&mut h);
        self.used.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> DomainId {
        DomainId::new(1)
    }

    #[test]
    fn unacked_output_is_not_a_base() {
        let mut s = OutputShadowStore::new(1000);
        s.record(d(), FileId::new(1), JobId::new(10), DocBuf::from_bytes(b"out".to_vec()));
        assert!(s.base_for(d(), FileId::new(1)).is_none());
        s.mark_acked(JobId::new(10));
        let (job, out) = s.base_for(d(), FileId::new(1)).unwrap();
        assert_eq!(job, JobId::new(10));
        assert_eq!(out.as_bytes(), b"out");
    }

    #[test]
    fn new_run_replaces_old_output() {
        let mut s = OutputShadowStore::new(1000);
        s.record(d(), FileId::new(1), JobId::new(10), DocBuf::from_bytes(vec![0; 100]));
        s.mark_acked(JobId::new(10));
        s.record(d(), FileId::new(1), JobId::new(11), DocBuf::from_bytes(vec![1; 50]));
        assert_eq!(s.used_bytes(), 50);
        // The replacement is not acked yet.
        assert!(s.base_for(d(), FileId::new(1)).is_none());
    }

    #[test]
    fn oversized_output_not_cached() {
        let mut s = OutputShadowStore::new(10);
        s.record(d(), FileId::new(1), JobId::new(1), DocBuf::from_bytes(vec![0; 100]));
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn budget_enforced_by_fifo_eviction() {
        let mut s = OutputShadowStore::new(100);
        s.record(d(), FileId::new(1), JobId::new(1), DocBuf::from_bytes(vec![0; 60]));
        s.record(d(), FileId::new(2), JobId::new(2), DocBuf::from_bytes(vec![0; 60]));
        assert_eq!(s.len(), 1);
        assert!(s.used_bytes() <= 100);
        assert!(s.entries.contains_key(&(d(), FileId::new(2))));
    }

    #[test]
    fn stale_ack_does_not_resurrect_replaced_output() {
        let mut s = OutputShadowStore::new(1000);
        s.record(d(), FileId::new(1), JobId::new(10), DocBuf::from_bytes(b"old".to_vec()));
        s.record(d(), FileId::new(1), JobId::new(11), DocBuf::from_bytes(b"new".to_vec()));
        s.mark_acked(JobId::new(10)); // ack for the replaced output
        assert!(s.base_for(d(), FileId::new(1)).is_none());
        s.mark_acked(JobId::new(11));
        assert_eq!(s.base_for(d(), FileId::new(1)).unwrap().0, JobId::new(11));
    }
}
