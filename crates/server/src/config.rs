//! Server configuration.

use shadow_cache::EvictionPolicy;
use shadow_proto::HostName;

/// How the server controls the flow of file updates (§5.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FlowControl {
    /// **Request driven** (the baseline the paper argues against): the
    /// client pushes every file in full with each submission; the server
    /// never requests updates and keeps no useful cache state.
    RequestDriven,
    /// Demand driven, eager: the server pulls an update as soon as it is
    /// notified of a new version (enables the paper's background-transfer
    /// concurrency, §5.1).
    #[default]
    DemandEager,
    /// Demand driven, lazy: the server pulls updates only when a submitted
    /// job actually needs the file ("it may postpone such a retrieval
    /// until the changes are actually needed").
    DemandLazy,
    /// Demand driven, adaptive: eager while the job queue is short and the
    /// cache has headroom, lazy under pressure — §5.2: "by monitoring the
    /// load average, cache size to disk space ratio, number of incoming
    /// jobs, network delays, etc., the remote host can decide when is the
    /// best time to retrieve the needed files".
    DemandAdaptive {
        /// Queue length at which the server stops eager pulls.
        eager_queue_limit: usize,
        /// Cache utilisation (0.0–1.0) above which eager pulls stop.
        cache_pressure_limit: f64,
    },
}

impl FlowControl {
    /// Whether this mode ever issues `UpdateRequest`s.
    pub fn is_demand_driven(self) -> bool {
        !matches!(self, FlowControl::RequestDriven)
    }
}

/// The simulated supercomputer's execution cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecProfile {
    /// Bytes of input a job command processes per simulated second.
    pub cpu_byte_rate: u64,
    /// Fixed scheduling/startup overhead per job, milliseconds.
    pub job_overhead_ms: u64,
}

impl Default for ExecProfile {
    fn default() -> Self {
        // A late-1980s supercomputer front end: fast relative to the
        // long-haul links that dominate the experiments.
        ExecProfile {
            cpu_byte_rate: 2_000_000,
            job_overhead_ms: 500,
        }
    }
}

/// Configuration of a [`ServerNode`](crate::ServerNode).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// The server host's name.
    pub host: HostName,
    /// Shadow cache byte budget (§5.1: the remote host decides "how much
    /// disk space should be used for caching").
    pub cache_budget: usize,
    /// Shadow cache eviction policy.
    pub eviction: EvictionPolicy,
    /// Update flow-control policy.
    pub flow: FlowControl,
    /// Batch slots that may run concurrently.
    pub max_running: usize,
    /// Execution cost model.
    pub exec: ExecProfile,
    /// Bytes of job output retained for reverse shadow processing.
    pub output_shadow_budget: usize,
}

impl ServerConfig {
    /// A server with generous defaults: 64 MiB cache, LRU, eager demand-
    /// driven flow, one batch slot.
    pub fn new(host: impl Into<String>) -> Self {
        ServerConfig {
            host: HostName::new(host.into()),
            cache_budget: 64 << 20,
            eviction: EvictionPolicy::Lru,
            flow: FlowControl::default(),
            max_running: 1,
            exec: ExecProfile::default(),
            output_shadow_budget: 16 << 20,
        }
    }

    /// Sets the cache budget.
    #[must_use]
    pub fn with_cache_budget(mut self, bytes: usize) -> Self {
        self.cache_budget = bytes;
        self
    }

    /// Sets the eviction policy.
    #[must_use]
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Sets the flow-control policy.
    #[must_use]
    pub fn with_flow(mut self, flow: FlowControl) -> Self {
        self.flow = flow;
        self
    }

    /// Sets the number of concurrent batch slots.
    #[must_use]
    pub fn with_max_running(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "at least one batch slot is required");
        self.max_running = slots;
        self
    }

    /// Sets the execution cost model.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecProfile) -> Self {
        self.exec = exec;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_demand_driven() {
        let c = ServerConfig::new("s");
        assert_eq!(c.flow, FlowControl::DemandEager);
        assert!(c.flow.is_demand_driven());
        assert!(!FlowControl::RequestDriven.is_demand_driven());
    }

    #[test]
    fn builders_apply() {
        let c = ServerConfig::new("s")
            .with_cache_budget(1000)
            .with_eviction(EvictionPolicy::Fifo)
            .with_flow(FlowControl::DemandLazy)
            .with_max_running(4);
        assert_eq!(c.cache_budget, 1000);
        assert_eq!(c.eviction, EvictionPolicy::Fifo);
        assert_eq!(c.flow, FlowControl::DemandLazy);
        assert_eq!(c.max_running, 4);
    }

    #[test]
    #[should_panic(expected = "batch slot")]
    fn zero_slots_rejected() {
        let _ = ServerConfig::new("s").with_max_running(0);
    }
}
