//! Server configuration.

use shadow_cache::EvictionPolicy;
use shadow_proto::HostName;

/// How the server controls the flow of file updates (§5.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FlowControl {
    /// **Request driven** (the baseline the paper argues against): the
    /// client pushes every file in full with each submission; the server
    /// never requests updates and keeps no useful cache state.
    RequestDriven,
    /// Demand driven, eager: the server pulls an update as soon as it is
    /// notified of a new version (enables the paper's background-transfer
    /// concurrency, §5.1).
    #[default]
    DemandEager,
    /// Demand driven, lazy: the server pulls updates only when a submitted
    /// job actually needs the file ("it may postpone such a retrieval
    /// until the changes are actually needed").
    DemandLazy,
    /// Demand driven, adaptive: eager while the job queue is short and the
    /// cache has headroom, lazy under pressure — §5.2: "by monitoring the
    /// load average, cache size to disk space ratio, number of incoming
    /// jobs, network delays, etc., the remote host can decide when is the
    /// best time to retrieve the needed files".
    DemandAdaptive {
        /// Queue length at which the server stops eager pulls.
        eager_queue_limit: usize,
        /// Cache utilisation (0.0–1.0) above which eager pulls stop.
        cache_pressure_limit: f64,
    },
}

impl FlowControl {
    /// Whether this mode ever issues `UpdateRequest`s.
    pub fn is_demand_driven(self) -> bool {
        !matches!(self, FlowControl::RequestDriven)
    }
}

/// The simulated supercomputer's execution cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecProfile {
    /// Bytes of input a job command processes per simulated second.
    pub cpu_byte_rate: u64,
    /// Fixed scheduling/startup overhead per job, milliseconds.
    pub job_overhead_ms: u64,
}

impl Default for ExecProfile {
    fn default() -> Self {
        // A late-1980s supercomputer front end: fast relative to the
        // long-haul links that dominate the experiments.
        ExecProfile {
            cpu_byte_rate: 2_000_000,
            job_overhead_ms: 500,
        }
    }
}

/// Configuration of a [`ServerNode`](crate::ServerNode).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// The server host's name.
    pub host: HostName,
    /// Shadow cache byte budget (§5.1: the remote host decides "how much
    /// disk space should be used for caching").
    pub cache_budget: usize,
    /// Shadow cache eviction policy.
    pub eviction: EvictionPolicy,
    /// Update flow-control policy.
    pub flow: FlowControl,
    /// Batch slots that may run concurrently.
    pub max_running: usize,
    /// Execution cost model.
    pub exec: ExecProfile,
    /// Bytes of job output retained for reverse shadow processing.
    pub output_shadow_budget: usize,
}

impl ServerConfig {
    /// A server with generous defaults: 64 MiB cache, LRU, eager demand-
    /// driven flow, one batch slot.
    pub fn new(host: impl Into<String>) -> Self {
        ServerConfig {
            host: HostName::new(host.into()),
            cache_budget: 64 << 20,
            eviction: EvictionPolicy::Lru,
            flow: FlowControl::default(),
            max_running: 1,
            exec: ExecProfile::default(),
            output_shadow_budget: 16 << 20,
        }
    }

    /// Sets the cache budget.
    #[must_use]
    pub fn with_cache_budget(mut self, bytes: usize) -> Self {
        self.cache_budget = bytes;
        self
    }

    /// Sets the eviction policy.
    #[must_use]
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Sets the flow-control policy.
    #[must_use]
    pub fn with_flow(mut self, flow: FlowControl) -> Self {
        self.flow = flow;
        self
    }

    /// Sets the number of concurrent batch slots.
    #[must_use]
    pub fn with_max_running(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "at least one batch slot is required");
        self.max_running = slots;
        self
    }

    /// Sets the execution cost model.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecProfile) -> Self {
        self.exec = exec;
        self
    }

    /// Starts a validated fluent builder; invariants (non-empty host,
    /// at least one batch slot, sane adaptive thresholds) are checked
    /// once at [`build()`](ServerConfigBuilder::build).
    pub fn builder(host: impl Into<String>) -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::new(host),
        }
    }
}

/// A configuration value rejected by the builder's `build()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for [`ServerConfig`], created by
/// [`ServerConfig::builder`]. Unlike the `with_*` conveniences, every
/// invariant is deferred to [`build()`](Self::build) and reported as a
/// [`ConfigError`] instead of a panic.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Sets the shadow-cache byte budget.
    #[must_use]
    pub fn cache_budget(mut self, bytes: usize) -> Self {
        self.config.cache_budget = bytes;
        self
    }

    /// Sets the cache eviction policy.
    #[must_use]
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.config.eviction = policy;
        self
    }

    /// Sets the update flow-control policy.
    #[must_use]
    pub fn flow(mut self, flow: FlowControl) -> Self {
        self.config.flow = flow;
        self
    }

    /// Sets the number of concurrent batch slots.
    #[must_use]
    pub fn max_running(mut self, slots: usize) -> Self {
        self.config.max_running = slots;
        self
    }

    /// Sets the execution cost model.
    #[must_use]
    pub fn exec(mut self, exec: ExecProfile) -> Self {
        self.config.exec = exec;
        self
    }

    /// Sets the byte budget for reverse-shadow output caching.
    #[must_use]
    pub fn output_shadow_budget(mut self, bytes: usize) -> Self {
        self.config.output_shadow_budget = bytes;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        let c = self.config;
        if c.host.as_str().is_empty() {
            return Err(ConfigError("host name must not be empty".into()));
        }
        if c.max_running < 1 {
            return Err(ConfigError(
                "at least one batch slot is required".into(),
            ));
        }
        if c.cache_budget == 0 {
            return Err(ConfigError(
                "a zero cache budget cannot hold any shadow; use a small \
                 budget to model a starved cache"
                    .into(),
            ));
        }
        if let FlowControl::DemandAdaptive {
            cache_pressure_limit,
            ..
        } = c.flow
        {
            if !(0.0..=1.0).contains(&cache_pressure_limit) {
                return Err(ConfigError(
                    "adaptive cache pressure limit must lie in 0.0..=1.0".into(),
                ));
            }
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_demand_driven() {
        let c = ServerConfig::new("s");
        assert_eq!(c.flow, FlowControl::DemandEager);
        assert!(c.flow.is_demand_driven());
        assert!(!FlowControl::RequestDriven.is_demand_driven());
    }

    #[test]
    fn builders_apply() {
        let c = ServerConfig::new("s")
            .with_cache_budget(1000)
            .with_eviction(EvictionPolicy::Fifo)
            .with_flow(FlowControl::DemandLazy)
            .with_max_running(4);
        assert_eq!(c.cache_budget, 1000);
        assert_eq!(c.eviction, EvictionPolicy::Fifo);
        assert_eq!(c.flow, FlowControl::DemandLazy);
        assert_eq!(c.max_running, 4);
    }

    #[test]
    #[should_panic(expected = "batch slot")]
    fn zero_slots_rejected() {
        let _ = ServerConfig::new("s").with_max_running(0);
    }

    #[test]
    fn builder_builds_and_validates() {
        let c = ServerConfig::builder("s")
            .cache_budget(1000)
            .eviction(EvictionPolicy::Fifo)
            .flow(FlowControl::DemandLazy)
            .max_running(4)
            .output_shadow_budget(500)
            .build()
            .unwrap();
        assert_eq!(c.cache_budget, 1000);
        assert_eq!(c.eviction, EvictionPolicy::Fifo);
        assert_eq!(c.flow, FlowControl::DemandLazy);
        assert_eq!(c.max_running, 4);
        assert_eq!(c.output_shadow_budget, 500);
        // Builder defaults equal the plain constructor.
        assert_eq!(ServerConfig::builder("s").build().unwrap(), ServerConfig::new("s"));
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(ServerConfig::builder("s").max_running(0).build().is_err());
        assert!(ServerConfig::builder("s").cache_budget(0).build().is_err());
        assert!(ServerConfig::builder("").build().is_err());
        let bad_flow = FlowControl::DemandAdaptive {
            eager_queue_limit: 2,
            cache_pressure_limit: 1.5,
        };
        assert!(ServerConfig::builder("s").flow(bad_flow).build().is_err());
    }
}
