//! The shadow server: the component that runs at each supercomputer site.
//!
//! §6.1 of the paper: "A shadow server runs at each supercomputer site …
//! The server accepts requests for job execution, initiates execution at
//! the supercomputer, reports on the status of outstanding jobs, and
//! transfers results back to an appropriate client."
//!
//! [`ServerNode`] is a **sans-io state machine**: it consumes
//! [`ServerEvent`]s (a message arrived, a timer fired) and returns
//! [`ServerAction`]s (send a message, set a timer). Drivers — the
//! deterministic simulation in the `shadow` crate, or a threaded live
//! system — own all I/O and clocks, so the protocol logic is identical in
//! both worlds and fully unit-testable.
//!
//! Major subsystems:
//!
//! * [`DomainDirectory`] — the per-domain mapping from file ids to cached
//!   shadow files (§6.5), backed by the best-effort
//!   [`ShadowStore`](shadow_cache::ShadowStore);
//! * the **demand-driven update scheduler** (§5.2): the server chooses when
//!   to pull file updates, under a configurable [`FlowControl`] policy
//!   (including the request-driven baseline the paper argues against);
//! * the **batch executor** ([`exec`]) — the stand-in for the
//!   supercomputer: a job-control-file interpreter with a small command
//!   set, deterministic output, and a simulated runtime cost;
//! * **reverse shadow processing** (§8.3): job output is cached so a
//!   re-run of the same job sends only output differences.
//!
//! # Example
//!
//! ```
//! use shadow_server::{ServerConfig, ServerEvent, ServerNode, SessionId};
//! use shadow_proto::{ClientMessage, DomainId, HostName, PROTOCOL_VERSION};
//!
//! let mut server = ServerNode::new(ServerConfig::new("superc"));
//! let session = SessionId::new(1);
//! let actions = server.handle(ServerEvent::Message {
//!     session,
//!     message: ClientMessage::Hello {
//!         domain: DomainId::new(1),
//!         host: HostName::new("ws1"),
//!         protocol: PROTOCOL_VERSION,
//!         epoch: 0,
//!         resume: Vec::new(),
//!     },
//!     now_ms: 0,
//! });
//! assert_eq!(actions.len(), 1); // HelloAck
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod config;
mod domain;
pub mod exec;
mod jobs;
mod node;
mod output_shadow;

pub use action::{CloseReason, ServerAction, ServerEvent, TimerToken};
pub use config::{ConfigError, ExecProfile, FlowControl, ServerConfig, ServerConfigBuilder};
pub use domain::{DomainDirectory, MappingEntry};
pub use jobs::{Job, JobPhase};
pub use node::{RestoreSummary, ServerMetrics, ServerNode, SessionId};
#[cfg(any(test, feature = "check-faults"))]
pub use node::FaultInjection;
pub use output_shadow::OutputShadowStore;
