//! The batch executor — this repository's stand-in for the supercomputer.
//!
//! The paper's server "initiates execution at the supercomputer"; its
//! prototype used "a remote UNIX system" as the supercomputer. Here a job
//! is a **job command file** (§6.2: "one or more lines where each line
//! specifies a command along with its arguments") interpreted against the
//! shadow cache. The command set is deliberately UNIX-flavoured — the
//! workloads scientists ran were filters over large data files — and every
//! command reports how many bytes it processed, which drives the simulated
//! runtime.
//!
//! | command | effect |
//! |---|---|
//! | `# …` / blank | ignored |
//! | `echo TEXT…` | prints its arguments |
//! | `cat FILE…` | concatenates files |
//! | `wc FILE…` | lines/words/bytes per file |
//! | `grep PAT FILE…` | lines containing `PAT` |
//! | `sort FILE…` | sorted lines of all inputs |
//! | `head N FILE` / `tail N FILE` | first/last `N` lines |
//! | `sum FILE…` | sum of all numeric tokens |
//! | `uniq FILE` | collapse adjacent duplicate lines |
//! | `nl FILE` | number lines |
//! | `stats FILE…` | min/max/mean of all numeric tokens |
//! | `gen N PREFIX` | emits `N` generated lines (big-output jobs) |
//! | `compute BYTES` | pure simulated CPU burn |
//!
//! A missing file or malformed command stops the job with exit code 1 —
//! the error text goes to the error stream, exactly what the `submit`
//! command's error-file option captures.

/// The result of interpreting one job command file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecOutcome {
    /// Standard output.
    pub output: Vec<u8>,
    /// Error output.
    pub errors: Vec<u8>,
    /// Bytes "processed" — input read plus output written plus explicit
    /// `compute` burn; the server converts this to simulated runtime.
    pub cpu_bytes: u64,
    /// 0 on success, 1 on the first failed command.
    pub exit_code: i32,
}

/// Interprets `command_file`, resolving data-file names through `resolve`
/// (the server wires this to the shadow cache + mapping directory).
///
/// # Example
///
/// ```
/// use shadow_server::exec::run_job;
///
/// let outcome = run_job(b"echo hello world\n", &|_name| None);
/// assert_eq!(outcome.output, b"hello world\n");
/// assert_eq!(outcome.exit_code, 0);
/// ```
pub fn run_job(command_file: &[u8], resolve: &dyn Fn(&str) -> Option<Vec<u8>>) -> ExecOutcome {
    let mut out = ExecOutcome::default();
    let text = String::from_utf8_lossy(command_file);
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().expect("non-empty line");
        let args: Vec<&str> = parts.collect();
        if let Err(msg) = run_command(cmd, &args, resolve, &mut out) {
            out.errors
                .extend_from_slice(format!("line {}: {}: {msg}\n", lineno + 1, cmd).as_bytes());
            out.exit_code = 1;
            break;
        }
    }
    out
}

fn read_file(
    name: &str,
    resolve: &dyn Fn(&str) -> Option<Vec<u8>>,
    out: &mut ExecOutcome,
) -> Result<Vec<u8>, String> {
    let content = resolve(name).ok_or_else(|| format!("{name}: no such shadow file"))?;
    out.cpu_bytes += content.len() as u64;
    Ok(content)
}

fn emit(out: &mut ExecOutcome, bytes: &[u8]) {
    out.cpu_bytes += bytes.len() as u64;
    out.output.extend_from_slice(bytes);
}

fn run_command(
    cmd: &str,
    args: &[&str],
    resolve: &dyn Fn(&str) -> Option<Vec<u8>>,
    out: &mut ExecOutcome,
) -> Result<(), String> {
    match cmd {
        "echo" => {
            let line = args.join(" ") + "\n";
            emit(out, line.as_bytes());
            Ok(())
        }
        "cat" => {
            if args.is_empty() {
                return Err("missing operand".into());
            }
            for name in args {
                let content = read_file(name, resolve, out)?;
                emit(out, &content);
            }
            Ok(())
        }
        "wc" => {
            if args.is_empty() {
                return Err("missing operand".into());
            }
            for name in args {
                let content = read_file(name, resolve, out)?;
                let lines = content.iter().filter(|&&b| b == b'\n').count();
                let words = content
                    .split(|b| b.is_ascii_whitespace())
                    .filter(|w| !w.is_empty())
                    .count();
                let line = format!("{lines} {words} {} {name}\n", content.len());
                emit(out, line.as_bytes());
            }
            Ok(())
        }
        "grep" => {
            let (pattern, files) = args.split_first().ok_or("missing pattern")?;
            if files.is_empty() {
                return Err("missing operand".into());
            }
            for name in files {
                let content = read_file(name, resolve, out)?;
                for line in content.split(|&b| b == b'\n') {
                    if !line.is_empty()
                        && line
                            .windows(pattern.len().max(1))
                            .any(|w| w == pattern.as_bytes())
                    {
                        let mut l = line.to_vec();
                        l.push(b'\n');
                        emit(out, &l);
                    }
                }
            }
            Ok(())
        }
        "sort" => {
            if args.is_empty() {
                return Err("missing operand".into());
            }
            let mut lines: Vec<Vec<u8>> = Vec::new();
            for name in args {
                let content = read_file(name, resolve, out)?;
                for line in content.split(|&b| b == b'\n') {
                    if !line.is_empty() {
                        lines.push(line.to_vec());
                    }
                }
            }
            lines.sort();
            for l in lines {
                emit(out, &l);
                emit(out, b"\n");
            }
            Ok(())
        }
        "head" | "tail" => {
            let (&n_str, files) = args.split_first().ok_or("missing line count")?;
            let n: usize = n_str.parse().map_err(|_| format!("bad count {n_str:?}"))?;
            let name = files.first().ok_or("missing operand")?;
            let content = read_file(name, resolve, out)?;
            let lines: Vec<&[u8]> = content
                .split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .collect();
            let picked: Vec<&[u8]> = if cmd == "head" {
                lines.iter().take(n).copied().collect()
            } else {
                lines.iter().rev().take(n).rev().copied().collect()
            };
            for l in picked {
                emit(out, l);
                emit(out, b"\n");
            }
            Ok(())
        }
        "sum" => {
            if args.is_empty() {
                return Err("missing operand".into());
            }
            let mut total = 0f64;
            let mut count = 0u64;
            for name in args {
                let content = read_file(name, resolve, out)?;
                for token in String::from_utf8_lossy(&content).split_whitespace() {
                    if let Ok(v) = token.parse::<f64>() {
                        total += v;
                        count += 1;
                    }
                }
            }
            let line = format!("sum {total} of {count} values\n");
            emit(out, line.as_bytes());
            Ok(())
        }
        "uniq" => {
            let name = args.first().ok_or("missing operand")?;
            let content = read_file(name, resolve, out)?;
            let mut previous: Option<&[u8]> = None;
            for line in content.split(|&b| b == b'\n') {
                if line.is_empty() {
                    continue;
                }
                if previous != Some(line) {
                    emit(out, line);
                    emit(out, b"\n");
                }
                previous = Some(line);
            }
            Ok(())
        }
        "nl" => {
            let name = args.first().ok_or("missing operand")?;
            let content = read_file(name, resolve, out)?;
            for (i, line) in content
                .split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .enumerate()
            {
                let prefix = format!("{:>6}  ", i + 1);
                emit(out, prefix.as_bytes());
                emit(out, line);
                emit(out, b"\n");
            }
            Ok(())
        }
        "stats" => {
            if args.is_empty() {
                return Err("missing operand".into());
            }
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut total = 0f64;
            let mut count = 0u64;
            for name in args {
                let content = read_file(name, resolve, out)?;
                for token in String::from_utf8_lossy(&content).split_whitespace() {
                    if let Ok(v) = token.parse::<f64>() {
                        min = min.min(v);
                        max = max.max(v);
                        total += v;
                        count += 1;
                    }
                }
            }
            let line = if count == 0 {
                "stats: no numeric values\n".to_string()
            } else {
                format!("min {min} max {max} mean {} n {count}\n", total / count as f64)
            };
            emit(out, line.as_bytes());
            Ok(())
        }
        "gen" => {
            let (&n_str, rest) = args.split_first().ok_or("missing line count")?;
            let n: usize = n_str.parse().map_err(|_| format!("bad count {n_str:?}"))?;
            if n > 1_000_000 {
                return Err(format!("line count {n} exceeds the 1000000 limit"));
            }
            let prefix = rest.first().copied().unwrap_or("line");
            for i in 0..n {
                let line = format!("{prefix} {i:08}\n");
                emit(out, line.as_bytes());
            }
            Ok(())
        }
        "compute" => {
            let n_str = args.first().ok_or("missing byte count")?;
            let n: u64 = n_str.parse().map_err(|_| format!("bad count {n_str:?}"))?;
            out.cpu_bytes += n;
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn files(pairs: &[(&str, &str)]) -> impl Fn(&str) -> Option<Vec<u8>> {
        let map: HashMap<String, Vec<u8>> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.as_bytes().to_vec()))
            .collect();
        move |name| map.get(name).cloned()
    }

    #[test]
    fn echo_and_comments() {
        let o = run_job(b"# setup\n\necho a b  c\n", &|_| None);
        assert_eq!(o.output, b"a b c\n");
        assert_eq!(o.exit_code, 0);
        assert!(o.errors.is_empty());
    }

    #[test]
    fn cat_concatenates() {
        let r = files(&[("/a", "1\n"), ("/b", "2\n")]);
        let o = run_job(b"cat /a /b\n", &r);
        assert_eq!(o.output, b"1\n2\n");
        assert!(o.cpu_bytes >= 4);
    }

    #[test]
    fn wc_counts() {
        let r = files(&[("/f", "one two\nthree\n")]);
        let o = run_job(b"wc /f\n", &r);
        assert_eq!(o.output, b"2 3 14 /f\n");
    }

    #[test]
    fn grep_filters() {
        let r = files(&[("/f", "apple\nbanana\npineapple\n")]);
        let o = run_job(b"grep apple /f\n", &r);
        assert_eq!(o.output, b"apple\npineapple\n");
    }

    #[test]
    fn sort_merges_inputs() {
        let r = files(&[("/a", "c\na\n"), ("/b", "b\n")]);
        let o = run_job(b"sort /a /b\n", &r);
        assert_eq!(o.output, b"a\nb\nc\n");
    }

    #[test]
    fn head_and_tail() {
        let r = files(&[("/f", "1\n2\n3\n4\n5\n")]);
        assert_eq!(run_job(b"head 2 /f\n", &r).output, b"1\n2\n");
        assert_eq!(run_job(b"tail 2 /f\n", &r).output, b"4\n5\n");
    }

    #[test]
    fn sum_totals_numbers() {
        let r = files(&[("/f", "1.5 2\nskip 3\n")]);
        let o = run_job(b"sum /f\n", &r);
        assert_eq!(o.output, b"sum 6.5 of 3 values\n");
    }

    #[test]
    fn uniq_collapses_adjacent_duplicates() {
        let r = files(&[("/f", "a\na\nb\na\na\n")]);
        let o = run_job(b"uniq /f\n", &r);
        assert_eq!(o.output, b"a\nb\na\n");
    }

    #[test]
    fn nl_numbers_lines() {
        let r = files(&[("/f", "x\ny\n")]);
        let o = run_job(b"nl /f\n", &r);
        assert_eq!(o.output, b"     1  x\n     2  y\n");
    }

    #[test]
    fn stats_reports_min_max_mean() {
        let r = files(&[("/f", "1 2\n3\n")]);
        let o = run_job(b"stats /f\n", &r);
        assert_eq!(o.output, b"min 1 max 3 mean 2 n 3\n");
        let o = run_job(b"stats /g\n", &files(&[("/g", "no numbers here\n")]));
        assert_eq!(o.output, b"stats: no numeric values\n");
    }

    #[test]
    fn new_commands_require_operands() {
        for job in ["uniq\n", "nl\n", "stats\n"] {
            assert_eq!(run_job(job.as_bytes(), &|_| None).exit_code, 1, "{job}");
        }
    }

    #[test]
    fn gen_produces_big_output() {
        let o = run_job(b"gen 3 result\n", &|_| None);
        assert_eq!(o.output, b"result 00000000\nresult 00000001\nresult 00000002\n");
    }

    #[test]
    fn compute_burns_cpu_without_output() {
        let o = run_job(b"compute 1000000\n", &|_| None);
        assert!(o.output.is_empty());
        assert_eq!(o.cpu_bytes, 1_000_000);
    }

    #[test]
    fn multi_line_jobs_run_in_order() {
        let r = files(&[("/f", "x\n")]);
        let o = run_job(b"echo start\ncat /f\necho end\n", &r);
        assert_eq!(o.output, b"start\nx\nend\n");
    }

    #[test]
    fn missing_file_fails_with_error() {
        let o = run_job(b"cat /missing\necho unreachable\n", &|_| None);
        assert_eq!(o.exit_code, 1);
        assert!(String::from_utf8_lossy(&o.errors).contains("no such shadow file"));
        assert!(o.output.is_empty());
    }

    #[test]
    fn unknown_command_fails() {
        let o = run_job(b"frobnicate /f\n", &|_| None);
        assert_eq!(o.exit_code, 1);
        assert!(String::from_utf8_lossy(&o.errors).contains("unknown command"));
    }

    #[test]
    fn malformed_counts_fail() {
        assert_eq!(run_job(b"head x /f\n", &|_| None).exit_code, 1);
        assert_eq!(run_job(b"gen nope\n", &|_| None).exit_code, 1);
        assert_eq!(run_job(b"compute many\n", &|_| None).exit_code, 1);
    }

    #[test]
    fn missing_operands_fail() {
        for job in ["cat\n", "wc\n", "grep\n", "grep pat\n", "sort\n", "sum\n", "head 3\n"] {
            let o = run_job(job.as_bytes(), &|_| None);
            assert_eq!(o.exit_code, 1, "job {job:?}");
        }
    }
}
