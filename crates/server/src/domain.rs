//! Per-domain mapping directories (§6.5 of the paper).
//!
//! "Once a unique file identifier is obtained for the local domain …, the
//! remote site maintains a separate mapping file for each domain that maps
//! each file identifier within that domain into the name of the cached
//! file at the remote site."

use std::collections::HashMap;

use shadow_proto::{ContentDigest, DomainId, FileId, VersionNumber};

/// What the server knows about one file of one domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingEntry {
    /// The file's canonical name within its domain (from `NotifyVersion`).
    pub name: String,
    /// The newest version the client has announced.
    pub announced_version: VersionNumber,
    /// Size of that version in bytes.
    pub announced_size: u64,
    /// Digest of that version.
    pub announced_digest: ContentDigest,
}

/// The mapping directories of every domain this server serves.
#[derive(Debug, Clone, Default)]
pub struct DomainDirectory {
    domains: HashMap<DomainId, HashMap<FileId, MappingEntry>>,
}

impl DomainDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        DomainDirectory::default()
    }

    /// Records (or refreshes) a file's announcement.
    pub fn record(
        &mut self,
        domain: DomainId,
        file: FileId,
        name: &str,
        version: VersionNumber,
        size: u64,
        digest: ContentDigest,
    ) {
        let entry = MappingEntry {
            name: name.to_string(),
            announced_version: version,
            announced_size: size,
            announced_digest: digest,
        };
        self.domains.entry(domain).or_default().insert(file, entry);
    }

    /// Looks up a file's mapping entry.
    pub fn get(&self, domain: DomainId, file: FileId) -> Option<&MappingEntry> {
        self.domains.get(&domain)?.get(&file)
    }

    /// Finds a file id by its canonical name within a domain (used by the
    /// batch executor to resolve command-file arguments).
    pub fn file_by_name(&self, domain: DomainId, name: &str) -> Option<FileId> {
        self.domains
            .get(&domain)?
            .iter()
            .find(|(_, e)| e.name == name)
            .map(|(id, _)| *id)
    }

    /// Number of files known within a domain.
    pub fn domain_len(&self, domain: DomainId) -> usize {
        self.domains.get(&domain).map_or(0, HashMap::len)
    }

    /// Number of domains with at least one entry.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// A deterministic digest of every mapping entry, in sorted order
    /// (model-checker state deduplication).
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut entries: Vec<(DomainId, FileId, &MappingEntry)> = self
            .domains
            .iter()
            .flat_map(|(d, files)| files.iter().map(move |(f, e)| (*d, *f, e)))
            .collect();
        entries.sort_unstable_by_key(|(d, f, _)| (*d, *f));
        let mut h = shadow_proto::StableHasher::new();
        for (d, f, e) in entries {
            (
                d,
                f,
                &e.name,
                e.announced_version,
                e.announced_size,
                e.announced_digest.as_u64(),
            )
                .hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest() -> ContentDigest {
        ContentDigest::of(b"x")
    }

    #[test]
    fn record_and_get() {
        let mut dir = DomainDirectory::new();
        dir.record(
            DomainId::new(1),
            FileId::new(5),
            "/usr/f",
            VersionNumber::new(2),
            100,
            digest(),
        );
        let e = dir.get(DomainId::new(1), FileId::new(5)).unwrap();
        assert_eq!(e.name, "/usr/f");
        assert_eq!(e.announced_version, VersionNumber::new(2));
        assert_eq!(e.announced_size, 100);
    }

    #[test]
    fn domains_are_separate_namespaces() {
        let mut dir = DomainDirectory::new();
        dir.record(
            DomainId::new(1),
            FileId::new(5),
            "/a",
            VersionNumber::FIRST,
            1,
            digest(),
        );
        dir.record(
            DomainId::new(2),
            FileId::new(5),
            "/b",
            VersionNumber::FIRST,
            2,
            digest(),
        );
        assert_eq!(dir.get(DomainId::new(1), FileId::new(5)).unwrap().name, "/a");
        assert_eq!(dir.get(DomainId::new(2), FileId::new(5)).unwrap().name, "/b");
        assert_eq!(dir.domain_count(), 2);
        assert_eq!(dir.domain_len(DomainId::new(1)), 1);
    }

    #[test]
    fn refresh_updates_version() {
        let mut dir = DomainDirectory::new();
        let d = DomainId::new(1);
        let f = FileId::new(5);
        dir.record(d, f, "/a", VersionNumber::new(1), 10, digest());
        dir.record(d, f, "/a", VersionNumber::new(3), 12, digest());
        assert_eq!(dir.get(d, f).unwrap().announced_version, VersionNumber::new(3));
        assert_eq!(dir.domain_len(d), 1);
    }

    #[test]
    fn lookup_by_name() {
        let mut dir = DomainDirectory::new();
        let d = DomainId::new(1);
        dir.record(d, FileId::new(5), "/data/input", VersionNumber::FIRST, 1, digest());
        assert_eq!(dir.file_by_name(d, "/data/input"), Some(FileId::new(5)));
        assert_eq!(dir.file_by_name(d, "/nope"), None);
        assert_eq!(dir.file_by_name(DomainId::new(9), "/data/input"), None);
    }
}
