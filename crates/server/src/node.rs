//! The server state machine.

use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;
use shadow_cache::ShadowStore;
use shadow_compress::{Codec, Lzss, Rle};
use shadow_diff::{
    apply_chunk_delta, apply_delta, choose_chunk_codec, chunk_delta_into, diff_docs, DeltaError,
    DiffAlgorithm, DiffScratch, DocBuf,
};
use shadow_proto::{
    ClientMessage, ContentDigest, DeltaCodec, DomainId, FileId, FileKey, HostName, JobId,
    JobStats, JobStatus, JobStatusEntry, OutputPayload, PersistRecord, ServerMessage,
    SubmitOptions, TransferEncoding, UpdatePayload, VersionNumber, PROTOCOL_VERSION,
};

use crate::action::{CloseReason, ServerAction, ServerEvent, TimerToken};
use crate::config::{FlowControl, ServerConfig};
use crate::domain::DomainDirectory;
use crate::exec::run_job;
use crate::jobs::{Job, JobPhase, JobTable};
use crate::output_shadow::OutputShadowStore;

/// A transport session handle, assigned by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// Wraps a raw session number.
    pub const fn new(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess-{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Session {
    domain: DomainId,
    host: HostName,
}

/// Counters describing server behaviour, for experiments and monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerMetrics {
    /// `UpdateRequest`s sent (demand-driven pulls).
    pub update_requests: u64,
    /// Full-content updates received.
    pub full_updates: u64,
    /// Delta updates received and applied.
    pub delta_updates: u64,
    /// Updates that failed verification and triggered a full-transfer
    /// fallback.
    pub update_failures: u64,
    /// Jobs completed (either exit status).
    pub jobs_completed: u64,
    /// Output deltas sent (reverse shadow processing).
    pub output_deltas: u64,
    /// Payload bytes received in updates.
    pub update_payload_bytes: u64,
    /// Journal records applied during startup replay.
    pub restored_records: u64,
    /// Journal records skipped during startup replay (broken delta
    /// chains, digest mismatches).
    pub restore_skipped: u64,
    /// Sessions resumed via an epoch > 0 `Hello`.
    pub sessions_resumed: u64,
    /// Resume-summary entries verified against the shadow cache: the
    /// client's next update for these files travels as a delta.
    pub resume_hits: u64,
    /// Resume-summary entries the cache could not confirm (evicted,
    /// stale, or digest mismatch): those files degrade to full transfer.
    pub resume_fallbacks: u64,
    /// Heartbeat `Ping`s answered with a `Pong`.
    pub pings_answered: u64,
    /// Sessions closed by an orderly `Bye` or clean transport shutdown.
    pub closed_clean: u64,
    /// Sessions closed by a transport failure.
    pub closed_error: u64,
    /// Sessions killed because an inbound frame failed to decode.
    pub closed_decode: u64,
    /// Sessions evicted by the runtime for prolonged inactivity.
    pub closed_idle: u64,
    /// Sessions dropped by a runtime shutdown.
    pub closed_shutdown: u64,
}

impl shadow_obs::Snapshot for ServerMetrics {
    fn section_name(&self) -> &'static str {
        "server"
    }

    fn snapshot(&self) -> shadow_obs::Section {
        shadow_obs::Section::new("server")
            .with("update_requests", self.update_requests)
            .with("full_updates", self.full_updates)
            .with("delta_updates", self.delta_updates)
            .with("update_failures", self.update_failures)
            .with("jobs_completed", self.jobs_completed)
            .with("output_deltas", self.output_deltas)
            .with("update_payload_bytes", self.update_payload_bytes)
            .with("restored_records", self.restored_records)
            .with("restore_skipped", self.restore_skipped)
            .with("sessions_resumed", self.sessions_resumed)
            .with("resume_hits", self.resume_hits)
            .with("resume_fallbacks", self.resume_fallbacks)
            .with("pings_answered", self.pings_answered)
            .with("closed_clean", self.closed_clean)
            .with("closed_error", self.closed_error)
            .with("closed_decode", self.closed_decode)
            .with("closed_idle", self.closed_idle)
            .with("closed_shutdown", self.closed_shutdown)
    }
}

/// What startup replay managed to rebuild (see [`ServerNode::restore`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreSummary {
    /// Records applied to the cache or output store.
    pub applied: usize,
    /// Records skipped: a delta whose base was missing or whose result
    /// digest did not match drops its key instead of corrupting it.
    pub skipped: usize,
}

/// Deliberately injectable protocol bugs, used to prove the model
/// checker in `shadow-check` is not vacuous: a checker that cannot find
/// a *known* bug within its exploration budget is not checking anything.
///
/// All faults default to **off**; the flag is runtime-toggled because
/// cargo feature unification would otherwise enable the buggy code path
/// for every crate in a workspace build.
#[cfg(any(test, feature = "check-faults"))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Apply delta updates without validating that the cached base
    /// matches the delta's base version, and skip the post-apply digest
    /// check — the server "trusts its cache bookkeeping". Two deltas
    /// against the same base then silently corrupt the shadow.
    pub delta_base_bug: bool,
}

/// The shadow server state machine. See the [crate docs](crate).
#[derive(Debug, Clone)]
pub struct ServerNode {
    config: ServerConfig,
    sessions: HashMap<SessionId, Session>,
    hosts: HashMap<HostName, SessionId>,
    directory: DomainDirectory,
    cache: ShadowStore,
    /// Which session most recently announced each file (where pulls go).
    announcers: HashMap<FileKey, SessionId>,
    /// Versions currently being pulled, to suppress duplicate requests.
    in_flight: HashMap<FileKey, VersionNumber>,
    /// Pulls postponed by adaptive flow control.
    postponed: Vec<(FileKey, VersionNumber)>,
    pulse_armed: bool,
    jobs: JobTable,
    next_job: u64,
    outputs: OutputShadowStore,
    /// Reusable diff working memory for reverse-shadow output deltas;
    /// steady-state re-runs of the same job diff with zero allocation.
    /// (Cloning a server starts with a fresh scratch.)
    diff_scratch: DiffScratch,
    metrics: ServerMetrics,
    #[cfg(any(test, feature = "check-faults"))]
    faults: FaultInjection,
}

impl ServerNode {
    /// Creates a server from its configuration.
    pub fn new(config: ServerConfig) -> Self {
        let cache = ShadowStore::new(config.cache_budget, config.eviction);
        let outputs = OutputShadowStore::new(config.output_shadow_budget);
        ServerNode {
            config,
            sessions: HashMap::new(),
            hosts: HashMap::new(),
            directory: DomainDirectory::new(),
            cache,
            announcers: HashMap::new(),
            in_flight: HashMap::new(),
            postponed: Vec::new(),
            pulse_armed: false,
            jobs: JobTable::default(),
            next_job: 0,
            outputs,
            diff_scratch: DiffScratch::new(),
            metrics: ServerMetrics::default(),
            #[cfg(any(test, feature = "check-faults"))]
            faults: FaultInjection::default(),
        }
    }

    /// Enables or disables injected faults (checker validation only).
    #[cfg(any(test, feature = "check-faults"))]
    pub fn set_faults(&mut self, faults: FaultInjection) {
        self.faults = faults;
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Behaviour counters.
    #[deprecated(note = "use `report()` and read the \"server\" section")]
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    /// Shadow-cache counters (hits, misses, evictions…).
    #[deprecated(note = "use `report()` and read the \"cache\" section")]
    pub fn cache_stats(&self) -> shadow_cache::CacheStats {
        self.cache.stats()
    }

    /// Everything this node can report about itself — behaviour
    /// counters plus shadow-cache statistics — as one aggregate.
    pub fn report(&self) -> shadow_obs::NodeReport {
        shadow_obs::NodeReport::new("server")
            .with(&self.metrics)
            .with(&self.cache.stats())
    }

    /// The cached version of a file, if any (test/diagnostic hook).
    pub fn cached_version(&self, key: FileKey) -> Option<VersionNumber> {
        self.cache.version_of(&key)
    }

    /// The digest of a file's cached content, if any (coherence checks).
    pub fn cached_digest(&self, key: FileKey) -> Option<ContentDigest> {
        self.cache.peek(&key).map(|e| e.digest)
    }

    /// Simulates the remote host reclaiming the shadow disk — the fault
    /// best-effort caching must survive (§5.1).
    pub fn drop_cache(&mut self) {
        self.cache.clear();
    }

    /// Replays journal records into a fresh node, rebuilding the shadow
    /// cache and output shadow store exactly as the pre-crash server had
    /// them. Pure (no I/O): the runtime reads the journal, this applies
    /// it, so the model checker can replay in-memory journals too.
    ///
    /// Replay is deliberately *forgiving*: a delta record whose base is
    /// not cached (its chain was cut by a skipped record) or whose
    /// re-applied result does not match the archived digest drops the
    /// key — the server then degrades to requesting a full transfer for
    /// that one file, never to serving corrupt content.
    ///
    /// Sessions, the mapping directory, and the job table are *not*
    /// restored: sessions and name mappings are re-established by
    /// reconnecting clients, and in-flight jobs are lost by design. Job
    /// ids seen in output records advance the job counter so fresh jobs
    /// never collide with restored output bases.
    pub fn restore(&mut self, records: &[PersistRecord]) -> RestoreSummary {
        let mut summary = RestoreSummary::default();
        for record in records {
            match record {
                PersistRecord::CacheFull {
                    key,
                    version,
                    content,
                } => {
                    self.cache.insert(*key, *version, content.to_vec());
                    summary.applied += 1;
                }
                PersistRecord::CacheDelta {
                    key,
                    version,
                    base,
                    codec,
                    script,
                    digest,
                } => {
                    let applied = match self.cache.get(key) {
                        Some(entry) if entry.version == *base => match codec {
                            DeltaCodec::Line => apply_delta(&entry.content, script)
                                .ok()
                                .filter(|c| ContentDigest::of(c) == *digest),
                            DeltaCodec::Chunk => apply_chunk_delta(&entry.content, script)
                                .ok()
                                .filter(|c| ContentDigest::of(c) == *digest),
                        },
                        _ => None,
                    };
                    match applied {
                        Some(content) => {
                            self.cache.insert(*key, *version, content);
                            summary.applied += 1;
                        }
                        None => {
                            self.cache.remove(key);
                            summary.skipped += 1;
                        }
                    }
                }
                PersistRecord::CacheRemove { key } => {
                    self.cache.remove(key);
                    summary.applied += 1;
                }
                PersistRecord::Output {
                    domain,
                    job_file,
                    job,
                    content,
                } => {
                    self.next_job = self.next_job.max(job.as_u64());
                    self.outputs
                        .record(*domain, *job_file, *job, DocBuf::from_bytes(content.to_vec()));
                    summary.applied += 1;
                }
                PersistRecord::OutputAcked { job, .. } => {
                    self.next_job = self.next_job.max(job.as_u64());
                    self.outputs.mark_acked(*job);
                    summary.applied += 1;
                }
            }
        }
        self.metrics.restored_records += summary.applied as u64;
        self.metrics.restore_skipped += summary.skipped as u64;
        summary
    }

    /// Every file key currently cached (coherence checks).
    pub fn cached_keys(&self) -> Vec<FileKey> {
        let mut keys: Vec<FileKey> = self.cache.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys
    }

    /// Ids of jobs not yet in a terminal phase (liveness checks).
    pub fn pending_job_ids(&self) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|j| j.is_pending())
            .map(|j| j.id)
            .collect()
    }

    /// A deterministic digest of the protocol-relevant server state:
    /// sessions, the mapping directory, the shadow cache, pull
    /// bookkeeping, the job table, and output shadows. Used by the model
    /// checker to deduplicate explored states; two servers with equal
    /// digests react identically to any future event sequence.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = shadow_proto::StableHasher::new();
        let mut sessions: Vec<(SessionId, DomainId, &HostName)> = self
            .sessions
            .iter()
            .map(|(id, s)| (*id, s.domain, &s.host))
            .collect();
        sessions.sort_unstable_by_key(|(id, ..)| *id);
        sessions.hash(&mut h);
        let mut hosts: Vec<(&HostName, SessionId)> =
            self.hosts.iter().map(|(n, s)| (n, *s)).collect();
        hosts.sort_unstable();
        hosts.hash(&mut h);
        self.directory.state_digest().hash(&mut h);
        self.cache.state_digest().hash(&mut h);
        let mut announcers: Vec<(&FileKey, &SessionId)> = self.announcers.iter().collect();
        announcers.sort_unstable();
        announcers.hash(&mut h);
        let mut in_flight: Vec<(&FileKey, &VersionNumber)> = self.in_flight.iter().collect();
        in_flight.sort_unstable();
        in_flight.hash(&mut h);
        let mut postponed = self.postponed.clone();
        postponed.sort_unstable();
        postponed.hash(&mut h);
        self.pulse_armed.hash(&mut h);
        for job in self.jobs.iter() {
            (
                job.id,
                job.session,
                job.domain,
                &job.client_host,
                job.job_file,
                &job.data_files,
                job.status(),
                &job.fetch_attempts,
            )
                .hash(&mut h);
        }
        self.next_job.hash(&mut h);
        self.outputs.state_digest().hash(&mut h);
        h.finish()
    }

    /// A job's current status (diagnostic hook).
    pub fn job_status(&self, job: JobId) -> Option<JobStatus> {
        self.jobs.get(job).map(Job::status)
    }

    /// Feeds one event through the state machine.
    pub fn handle(&mut self, event: ServerEvent) -> Vec<ServerAction> {
        let mut actions = Vec::new();
        match event {
            ServerEvent::Connected { .. } => {}
            ServerEvent::Disconnected {
                session, reason, ..
            } => {
                if let Some(s) = self.sessions.remove(&session) {
                    if self.hosts.get(&s.host) == Some(&session) {
                        self.hosts.remove(&s.host);
                    }
                    self.count_close(reason);
                }
                // Pulls outstanding toward the dead session can never be
                // answered; clearing them lets a re-announce (or resume)
                // re-request instead of wedging behind `in_flight`.
                self.in_flight
                    .retain(|key, _| self.announcers.get(key) != Some(&session));
            }
            ServerEvent::Message {
                session,
                message,
                now_ms,
            } => self.on_message(session, message, now_ms, &mut actions),
            ServerEvent::Timer { token, now_ms } => self.on_timer(token, now_ms, &mut actions),
        }
        actions
    }

    fn on_message(
        &mut self,
        session: SessionId,
        message: ClientMessage,
        now_ms: u64,
        actions: &mut Vec<ServerAction>,
    ) {
        match message {
            ClientMessage::Hello {
                domain,
                host,
                protocol: _,
                epoch,
                resume,
            } => {
                self.hosts.insert(host.clone(), session);
                self.sessions.insert(session, Session { domain, host });
                // Session resumption (epoch > 0): verify each entry of
                // the client's shadow-cache summary against our cache.
                // A confirmed entry keeps its delta base warm — the next
                // update for that file travels as a diff — and re-points
                // the announcer at the new session so pending pulls have
                // somewhere to go. Anything the cache cannot confirm
                // degrades to a full transfer, never to trusting a
                // digest we did not check.
                let resumed = epoch > 0;
                let mut retained = Vec::with_capacity(resume.len().min(4096));
                for entry in &resume {
                    let key = FileKey::new(domain, entry.file);
                    let confirmed = self.cache.version_of(&key) == Some(entry.version)
                        && self.cache.peek(&key).map(|e| e.digest) == Some(entry.digest);
                    if confirmed {
                        self.metrics.resume_hits += 1;
                        self.announcers.insert(key, session);
                        retained.push((entry.file, entry.version));
                    } else {
                        self.metrics.resume_fallbacks += 1;
                    }
                }
                if resumed {
                    self.metrics.sessions_resumed += 1;
                }
                actions.push(ServerAction::Send {
                    session,
                    message: ServerMessage::HelloAck {
                        protocol: PROTOCOL_VERSION,
                        server: self.config.host.clone(),
                        resumed,
                        retained,
                    },
                });
                if resumed {
                    // Jobs stranded by the disconnect (waiting on files
                    // whose pull died with the old session) get their
                    // requests re-driven against the resumed session.
                    self.check_waiting_jobs(now_ms, actions);
                }
            }
            ClientMessage::Ping { nonce } => {
                self.metrics.pings_answered += 1;
                actions.push(ServerAction::Send {
                    session,
                    message: ServerMessage::Pong { nonce },
                });
            }
            ClientMessage::NotifyVersion {
                file,
                name,
                version,
                size,
                digest,
            } => {
                let Some(domain) = self.session_domain(session) else {
                    return;
                };
                self.directory
                    .record(domain, file, &name, version, size, digest);
                let key = FileKey::new(domain, file);
                self.announcers.insert(key, session);
                self.consider_pull(key, version, actions);
            }
            ClientMessage::Update {
                file,
                version,
                payload,
            } => {
                let Some(domain) = self.session_domain(session) else {
                    return;
                };
                self.on_update(session, FileKey::new(domain, file), version, payload, now_ms, actions);
            }
            ClientMessage::Submit {
                request,
                job_file,
                job_version,
                data_files,
                options,
            } => {
                let Some(sess) = self.sessions.get(&session).cloned() else {
                    actions.push(ServerAction::Send {
                        session,
                        message: ServerMessage::SubmitError {
                            request,
                            reason: "session has not said hello".to_string(),
                        },
                    });
                    return;
                };
                self.on_submit(
                    session, &sess, request, job_file, job_version, data_files, options, now_ms,
                    actions,
                );
            }
            ClientMessage::StatusQuery { request, job } => {
                let entries = match job {
                    Some(id) => vec![JobStatusEntry {
                        job: id,
                        status: self
                            .jobs
                            .get(id)
                            .map_or(JobStatus::Unknown, Job::status),
                        submitted_at_ms: self.jobs.get(id).map_or(0, |j| j.submitted_at_ms),
                    }],
                    None => self
                        .jobs
                        .iter()
                        .filter(|j| j.session == session && j.is_pending())
                        .map(|j| JobStatusEntry {
                            job: j.id,
                            status: j.status(),
                            submitted_at_ms: j.submitted_at_ms,
                        })
                        .collect(),
                };
                actions.push(ServerAction::Send {
                    session,
                    message: ServerMessage::StatusReport { request, entries },
                });
            }
            ClientMessage::OutputAck { job } => {
                if let Some(domain) = self.outputs.mark_acked(job) {
                    actions.push(ServerAction::Persist(PersistRecord::OutputAcked {
                        domain,
                        job,
                    }));
                }
            }
            ClientMessage::Bye => {
                actions.push(ServerAction::Send {
                    session,
                    message: ServerMessage::Bye,
                });
                if let Some(s) = self.sessions.remove(&session) {
                    if self.hosts.get(&s.host) == Some(&session) {
                        self.hosts.remove(&s.host);
                    }
                    self.count_close(CloseReason::Clean);
                }
            }
        }
    }

    fn session_domain(&self, session: SessionId) -> Option<DomainId> {
        self.sessions.get(&session).map(|s| s.domain)
    }

    /// Counted exactly once per closed session, at the moment it leaves
    /// the session table (a `Bye` followed by the transport reap does
    /// not double-count).
    fn count_close(&mut self, reason: CloseReason) {
        match reason {
            CloseReason::Clean => self.metrics.closed_clean += 1,
            CloseReason::Error => self.metrics.closed_error += 1,
            CloseReason::Decode => self.metrics.closed_decode += 1,
            CloseReason::Idle => self.metrics.closed_idle += 1,
            CloseReason::Shutdown => self.metrics.closed_shutdown += 1,
        }
    }

    /// Flow control: decide whether to pull a newly announced version now,
    /// later, or not at all (§5.2).
    fn consider_pull(
        &mut self,
        key: FileKey,
        version: VersionNumber,
        actions: &mut Vec<ServerAction>,
    ) {
        if self.cache.version_of(&key).is_some_and(|v| v >= version) {
            return; // already current
        }
        match self.config.flow {
            FlowControl::RequestDriven | FlowControl::DemandLazy => {}
            FlowControl::DemandEager => self.request_update(key, version, actions),
            FlowControl::DemandAdaptive {
                eager_queue_limit,
                cache_pressure_limit,
            } => {
                let pressure = if self.cache.budget() == 0 {
                    1.0
                } else {
                    self.cache.used_bytes() as f64 / self.cache.budget() as f64
                };
                if self.jobs.pending_count() <= eager_queue_limit
                    && pressure <= cache_pressure_limit
                {
                    self.request_update(key, version, actions);
                } else {
                    self.postponed.push((key, version));
                    if !self.pulse_armed {
                        self.pulse_armed = true;
                        actions.push(ServerAction::SetTimer {
                            delay_ms: 1_000,
                            token: TimerToken::FetchPulse,
                        });
                    }
                }
            }
        }
    }

    /// Sends an `UpdateRequest` naming the best base version we hold.
    fn request_update(
        &mut self,
        key: FileKey,
        version: VersionNumber,
        actions: &mut Vec<ServerAction>,
    ) {
        if self.in_flight.get(&key).is_some_and(|&v| v >= version) {
            return; // an equal-or-newer pull is already outstanding
        }
        let Some(&session) = self.announcers.get(&key) else {
            return;
        };
        if !self.sessions.contains_key(&session) {
            return;
        }
        self.in_flight.insert(key, version);
        self.metrics.update_requests += 1;
        actions.push(ServerAction::Send {
            session,
            message: ServerMessage::UpdateRequest {
                file: key.file,
                have: self.cache.version_of(&key),
            },
        });
    }

    fn decode_payload(
        encoding: TransferEncoding,
        data: &Bytes,
    ) -> Result<Vec<u8>, &'static str> {
        match encoding {
            TransferEncoding::Identity => Ok(data.to_vec()),
            TransferEncoding::Rle => Rle.decompress(data).map_err(|_| "rle decode failed"),
            TransferEncoding::Lzss => Lzss::default()
                .decompress(data)
                .map_err(|_| "lzss decode failed"),
        }
    }

    fn on_update(
        &mut self,
        session: SessionId,
        key: FileKey,
        version: VersionNumber,
        payload: UpdatePayload,
        now_ms: u64,
        actions: &mut Vec<ServerAction>,
    ) {
        // Only an update at least as new as the outstanding pull answers
        // it; an older (reordered/duplicated) frame must leave the pull
        // pending or the newer version would never arrive.
        if self.in_flight.get(&key).is_some_and(|&v| v <= version) {
            self.in_flight.remove(&key);
        }
        self.metrics.update_payload_bytes += payload.data_len() as u64;
        // Reordered or duplicated delivery: an update no newer than the
        // cached shadow must not overwrite it (an old Full would roll the
        // shadow back) and must not be re-acked.
        if self.cache.version_of(&key).is_some_and(|have| have >= version) {
            return;
        }
        let trust_bookkeeping = {
            #[cfg(any(test, feature = "check-faults"))]
            {
                self.faults.delta_base_bug
            }
            #[cfg(not(any(test, feature = "check-faults")))]
            {
                false
            }
        };
        let expected_digest = payload.digest();
        // When a delta applies cleanly, the decoded delta bytes are kept
        // (with their codec) so the journal can archive the *delta* (the
        // compressed form of the version chain) instead of the
        // materialized content.
        let mut applied_script: Option<(VersionNumber, DeltaCodec, Bytes)> = None;
        let content: Result<Vec<u8>, &'static str> = match &payload {
            UpdatePayload::Full { encoding, data, .. } => {
                self.metrics.full_updates += 1;
                Self::decode_payload(*encoding, data)
            }
            UpdatePayload::Delta {
                base,
                codec,
                encoding,
                data,
                ..
            } => {
                self.metrics.delta_updates += 1;
                match self.cache.get(&key) {
                    Some(entry) if trust_bookkeeping || entry.version == *base => {
                        // One pass over (base bytes, delta bytes) straight
                        // to the new content — no base clone, no line
                        // vectors, no parsed-script allocation. The
                        // payload's codec picks the decoder the client's
                        // classifier chose.
                        Self::decode_payload(*encoding, data).and_then(|delta_bytes| {
                            let applied = match codec {
                                DeltaCodec::Line => apply_delta(&entry.content, &delta_bytes)
                                    .map_err(|e| match e {
                                        DeltaError::Parse(_) => "edit script parse failed",
                                        DeltaError::Apply(_) => "edit script apply failed",
                                    }),
                                DeltaCodec::Chunk => {
                                    apply_chunk_delta(&entry.content, &delta_bytes)
                                        .map_err(|_| "chunk delta apply failed")
                                }
                            };
                            if applied.is_ok() {
                                applied_script =
                                    Some((entry.version, *codec, Bytes::from(delta_bytes)));
                            }
                            applied
                        })
                    }
                    Some(_) => Err("delta base version not cached"),
                    None => Err("file not cached"),
                }
            }
        };
        let content = content.and_then(|c| {
            if trust_bookkeeping || ContentDigest::of(&c) == expected_digest {
                Ok(c)
            } else {
                Err("content digest mismatch")
            }
        });
        match content {
            Ok(content) => {
                // Build the journal record before the content moves into
                // the cache. A cleanly applied delta is archived as the
                // delta itself; everything else as full content. The
                // digest is of the *actual* result so replay can verify
                // its own re-application.
                let record = match applied_script {
                    Some((base, codec, script)) => PersistRecord::CacheDelta {
                        key,
                        version,
                        base,
                        codec,
                        script,
                        digest: ContentDigest::of(&content),
                    },
                    None => PersistRecord::CacheFull {
                        key,
                        version,
                        content: Bytes::from(content.clone()),
                    },
                };
                for victim in self.cache.insert(key, version, content) {
                    actions.push(ServerAction::Persist(PersistRecord::CacheRemove {
                        key: victim,
                    }));
                }
                if self.cache.version_of(&key) == Some(version) {
                    actions.push(ServerAction::Persist(record));
                } else {
                    // The insertion was rejected (content alone exceeds
                    // the budget) and any prior entry is gone with it.
                    actions.push(ServerAction::Persist(PersistRecord::CacheRemove { key }));
                }
                actions.push(ServerAction::Send {
                    session,
                    message: ServerMessage::VersionAck {
                        file: key.file,
                        version,
                    },
                });
                self.check_waiting_jobs(now_ms, actions);
            }
            Err(_reason) => {
                // Best-effort recovery: ask for the whole file.
                self.metrics.update_failures += 1;
                if self.cache.remove(&key).is_some() {
                    actions.push(ServerAction::Persist(PersistRecord::CacheRemove { key }));
                }
                self.in_flight.insert(key, version);
                self.metrics.update_requests += 1;
                actions.push(ServerAction::Send {
                    session,
                    message: ServerMessage::UpdateRequest {
                        file: key.file,
                        have: None,
                    },
                });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_submit(
        &mut self,
        session: SessionId,
        sess: &Session,
        request: shadow_proto::RequestId,
        job_file: FileId,
        job_version: VersionNumber,
        data_files: Vec<(FileId, VersionNumber)>,
        options: SubmitOptions,
        now_ms: u64,
        actions: &mut Vec<ServerAction>,
    ) {
        self.next_job += 1;
        let id = JobId::new(self.next_job);
        let job = Job {
            id,
            session,
            domain: sess.domain,
            client_host: sess.host.clone(),
            job_file: (job_file, job_version),
            data_files,
            options,
            phase: JobPhase::WaitingForFiles,
            fetch_attempts: std::collections::BTreeMap::new(),
            submitted_at_ms: now_ms,
            files_ready_at_ms: None,
            started_at_ms: None,
        };
        actions.push(ServerAction::Send {
            session,
            message: ServerMessage::SubmitAck { request, job: id },
        });
        // Missing files are demanded by `check_waiting_jobs` ("the updates
        // for the files involved may be obtained in the background even
        // before a submit request is received" — and now if they were not).
        self.jobs.insert(job);
        self.check_waiting_jobs(now_ms, actions);
    }

    /// Re-requests a waiting job's missing file before giving up on it —
    /// bounds the eviction ping-pong of a cache too small for the job.
    const MAX_FETCH_ATTEMPTS: u32 = 4;

    /// Promotes waiting jobs whose files are all cached, (re-)requests the
    /// files still missing, fails jobs whose files can never stick, then
    /// fills idle batch slots.
    fn check_waiting_jobs(&mut self, now_ms: u64, actions: &mut Vec<ServerAction>) {
        let mut to_fail = Vec::new();
        for id in self.jobs.waiting_ids() {
            let (domain, missing): (DomainId, Vec<(FileId, VersionNumber)>) = {
                let job = self.jobs.get(id).expect("listed job exists");
                (
                    job.domain,
                    job.required_files()
                        .filter(|(f, v)| {
                            self
                                .cache
                                .version_of(&FileKey::new(job.domain, *f)).is_none_or(|have| have < *v)
                        })
                        .collect(),
                )
            };
            if missing.is_empty() {
                let job = self.jobs.get_mut(id).expect("listed job exists");
                job.phase = JobPhase::Queued;
                job.files_ready_at_ms = Some(now_ms);
                continue;
            }
            if !self.config.flow.is_demand_driven() {
                // Request-driven clients push everything ahead of the
                // submit; a missing file here means the cache rejected or
                // lost it and no pull is possible.
                to_fail.push((id, missing[0].0));
                continue;
            }
            for (file, version) in missing {
                let key = FileKey::new(domain, file);
                if self.in_flight.get(&key).is_some_and(|&v| v >= version) {
                    continue; // a pull is already outstanding
                }
                let attempts = {
                    let job = self.jobs.get_mut(id).expect("listed job exists");
                    let a = job.fetch_attempts.entry(file).or_insert(0);
                    *a += 1;
                    *a
                };
                if attempts > Self::MAX_FETCH_ATTEMPTS {
                    to_fail.push((id, file));
                    break;
                }
                self.request_update(key, version, actions);
            }
        }
        for (id, file) in to_fail {
            self.fail_job(
                id,
                &format!("required shadow file {file} cannot be retained in the cache"),
                now_ms,
                actions,
            );
        }
        self.fill_slots(now_ms, actions);
    }

    /// Terminates a job that can never run, delivering an error report.
    fn fail_job(&mut self, id: JobId, reason: &str, now_ms: u64, actions: &mut Vec<ServerAction>) {
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        job.phase = JobPhase::Failed;
        self.metrics.jobs_completed += 1;
        let job = self.jobs.get(id).expect("job exists");
        let stats = JobStats {
            queued_ms: 0,
            waiting_ms: now_ms.saturating_sub(job.submitted_at_ms),
            running_ms: 0,
            output_bytes: 0,
            exit_code: 1,
        };
        let target = if self.sessions.contains_key(&job.session) {
            Some(job.session)
        } else {
            self.hosts.get(&job.client_host).copied()
        };
        if let Some(session) = target {
            actions.push(ServerAction::Send {
                session,
                message: ServerMessage::JobComplete {
                    job: id,
                    output: OutputPayload::Full {
                        encoding: TransferEncoding::Identity,
                        data: Bytes::new(),
                    },
                    errors: Bytes::from(format!("job aborted: {reason}\n")),
                    stats,
                },
            });
        }
    }

    fn fill_slots(&mut self, now_ms: u64, actions: &mut Vec<ServerAction>) {
        while self.jobs.running_count() < self.config.max_running {
            let Some(id) = self.jobs.next_queued() else {
                break;
            };
            self.start_job(id, now_ms, actions);
        }
    }

    /// Runs the interpreter (deterministically) and schedules the
    /// completion timer for the simulated runtime.
    fn start_job(&mut self, id: JobId, now_ms: u64, actions: &mut Vec<ServerAction>) {
        let (domain, job_file) = {
            let job = self.jobs.get(id).expect("queued job exists");
            (job.domain, job.job_file.0)
        };
        let command_file = self
            .cache
            .peek(&FileKey::new(domain, job_file))
            .map(|e| e.content.clone())
            .unwrap_or_default();
        // Resolve names through the mapping directory, then the cache.
        let directory = &self.directory;
        let cache = &self.cache;
        let resolve = |name: &str| -> Option<Vec<u8>> {
            let file = directory.file_by_name(domain, name)?;
            cache
                .peek(&FileKey::new(domain, file))
                .map(|e| e.content.clone())
        };
        let outcome = run_job(&command_file, &resolve);
        let runtime_ms = self.config.exec.job_overhead_ms
            + outcome.cpu_bytes * 1_000 / self.config.exec.cpu_byte_rate.max(1);
        let job = self.jobs.get_mut(id).expect("queued job exists");
        job.started_at_ms = Some(now_ms);
        job.phase = JobPhase::Running { outcome };
        actions.push(ServerAction::SetTimer {
            delay_ms: runtime_ms,
            token: TimerToken::JobDone(id),
        });
    }

    fn on_timer(&mut self, token: TimerToken, now_ms: u64, actions: &mut Vec<ServerAction>) {
        match token {
            TimerToken::JobDone(id) => self.finish_job(id, now_ms, actions),
            TimerToken::FetchPulse => {
                self.pulse_armed = false;
                let postponed = std::mem::take(&mut self.postponed);
                for (key, version) in postponed {
                    self.consider_pull(key, version, actions);
                }
                if !self.postponed.is_empty() && !self.pulse_armed {
                    self.pulse_armed = true;
                    actions.push(ServerAction::SetTimer {
                        delay_ms: 1_000,
                        token: TimerToken::FetchPulse,
                    });
                }
            }
        }
    }

    fn finish_job(&mut self, id: JobId, now_ms: u64, actions: &mut Vec<ServerAction>) {
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        let JobPhase::Running { outcome } = std::mem::replace(
            &mut job.phase,
            JobPhase::Completed,
        ) else {
            return;
        };
        job.phase = if outcome.exit_code == 0 {
            JobPhase::Completed
        } else {
            JobPhase::Failed
        };
        self.metrics.jobs_completed += 1;

        // Index the output once; the reverse-shadow diff, the cache
        // record, the payload, and the digest all share this one buffer
        // (DocBuf clones are O(1)).
        let output_buf = DocBuf::from_bytes(outcome.output);

        let job = self.jobs.get(id).expect("job exists");
        let stats = JobStats {
            queued_ms: job
                .started_at_ms
                .unwrap_or(now_ms)
                .saturating_sub(job.files_ready_at_ms.unwrap_or(job.submitted_at_ms)),
            waiting_ms: job
                .files_ready_at_ms
                .unwrap_or(now_ms)
                .saturating_sub(job.submitted_at_ms),
            running_ms: now_ms.saturating_sub(job.started_at_ms.unwrap_or(now_ms)),
            output_bytes: output_buf.byte_len() as u64,
            exit_code: outcome.exit_code,
        };

        // Reverse shadow processing (§8.3): diff the pre-indexed cached
        // base against the fresh output, reusing the server's scratch.
        let domain = job.domain;
        let job_file = job.job_file.0;
        let shadow_output = job.options.shadow_output && outcome.exit_code == 0;
        let output_payload = if shadow_output {
            match self.outputs.base_for(domain, job_file) {
                Some((base_job, base_output)) => {
                    // The classifier picks the codec for outputs exactly
                    // as the client does for inputs: chunk deltas for
                    // binary or line-hostile output, ed scripts for text.
                    let (codec, delta_bytes) = if choose_chunk_codec(base_output, &output_buf) {
                        let mut out = Vec::new();
                        chunk_delta_into(
                            base_output.as_bytes(),
                            output_buf.as_bytes(),
                            &mut self.diff_scratch,
                            &mut out,
                        );
                        (DeltaCodec::Chunk, out)
                    } else {
                        let script = diff_docs(
                            DiffAlgorithm::HuntMcIlroy,
                            base_output,
                            &output_buf,
                            &mut self.diff_scratch,
                        );
                        (DeltaCodec::Line, script.to_text())
                    };
                    if delta_bytes.len() < output_buf.byte_len() {
                        self.metrics.output_deltas += 1;
                        OutputPayload::Delta {
                            base_job,
                            codec,
                            encoding: TransferEncoding::Identity,
                            data: Bytes::from(delta_bytes),
                            digest: ContentDigest::of(output_buf.as_bytes()),
                        }
                    } else {
                        OutputPayload::Full {
                            encoding: TransferEncoding::Identity,
                            data: Bytes::from(output_buf.as_bytes().to_vec()),
                        }
                    }
                }
                None => OutputPayload::Full {
                    encoding: TransferEncoding::Identity,
                    data: Bytes::from(output_buf.as_bytes().to_vec()),
                },
            }
        } else {
            OutputPayload::Full {
                encoding: TransferEncoding::Identity,
                data: Bytes::from(output_buf.as_bytes().to_vec()),
            }
        };
        if shadow_output {
            actions.push(ServerAction::Persist(PersistRecord::Output {
                domain,
                job_file,
                job: id,
                content: Bytes::from(output_buf.as_bytes().to_vec()),
            }));
            self.outputs.record(domain, job_file, id, output_buf);
        }

        // Output routing (§8.3): deliver to the requested host when it has
        // a live session, else to the submitter.
        let target = job
            .options
            .deliver_to
            .as_ref()
            .and_then(|h| self.hosts.get(h).copied())
            .or_else(|| {
                if self.sessions.contains_key(&job.session) {
                    Some(job.session)
                } else {
                    self.hosts.get(&job.client_host).copied()
                }
            });
        if let Some(session) = target {
            actions.push(ServerAction::Send {
                session,
                message: ServerMessage::JobComplete {
                    job: id,
                    output: output_payload,
                    errors: Bytes::from(outcome.errors),
                    stats,
                },
            });
        }
        // A slot freed up.
        self.fill_slots(now_ms, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_diff::{diff, Document};
    use crate::action::ServerEvent;

    const NOW: u64 = 1_000;

    fn hello(server: &mut ServerNode, session: u64, domain: u64, host: &str) -> Vec<ServerAction> {
        server.handle(ServerEvent::Message {
            session: SessionId::new(session),
            message: ClientMessage::Hello {
                domain: DomainId::new(domain),
                host: HostName::new(host),
                protocol: PROTOCOL_VERSION,
                epoch: 0,
                resume: Vec::new(),
            },
            now_ms: NOW,
        })
    }

    fn resume_hello(
        server: &mut ServerNode,
        session: u64,
        domain: u64,
        host: &str,
        epoch: u64,
        resume: Vec<shadow_proto::ResumeEntry>,
    ) -> Vec<ServerAction> {
        server.handle(ServerEvent::Message {
            session: SessionId::new(session),
            message: ClientMessage::Hello {
                domain: DomainId::new(domain),
                host: HostName::new(host),
                protocol: PROTOCOL_VERSION,
                epoch,
                resume,
            },
            now_ms: NOW,
        })
    }

    fn notify(
        server: &mut ServerNode,
        session: u64,
        file: u64,
        name: &str,
        version: u64,
        content: &[u8],
    ) -> Vec<ServerAction> {
        server.handle(ServerEvent::Message {
            session: SessionId::new(session),
            message: ClientMessage::NotifyVersion {
                file: FileId::new(file),
                name: name.to_string(),
                version: VersionNumber::new(version),
                size: content.len() as u64,
                digest: ContentDigest::of(content),
            },
            now_ms: NOW,
        })
    }

    fn full_update(
        server: &mut ServerNode,
        session: u64,
        file: u64,
        version: u64,
        content: &[u8],
    ) -> Vec<ServerAction> {
        server.handle(ServerEvent::Message {
            session: SessionId::new(session),
            message: ClientMessage::Update {
                file: FileId::new(file),
                version: VersionNumber::new(version),
                payload: UpdatePayload::Full {
                    encoding: TransferEncoding::Identity,
                    data: Bytes::from(content.to_vec()),
                    digest: ContentDigest::of(content),
                },
            },
            now_ms: NOW,
        })
    }

    fn sends(actions: &[ServerAction]) -> Vec<&ServerMessage> {
        actions
            .iter()
            .filter_map(|a| match a {
                ServerAction::Send { message, .. } => Some(message),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn hello_is_acknowledged() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        let actions = hello(&mut server, 1, 1, "ws1");
        assert!(matches!(
            sends(&actions)[..],
            [ServerMessage::HelloAck { .. }]
        ));
    }

    #[test]
    fn eager_flow_pulls_on_notify() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        let actions = notify(&mut server, 1, 7, "/f", 1, b"content");
        match sends(&actions)[..] {
            [ServerMessage::UpdateRequest { file, have }] => {
                assert_eq!(*file, FileId::new(7));
                assert_eq!(*have, None);
            }
            ref other => panic!("expected UpdateRequest, got {other:?}"),
        }
        // A second notify of the same version does not duplicate the pull.
        let actions = notify(&mut server, 1, 7, "/f", 1, b"content");
        assert!(sends(&actions).is_empty());
    }

    #[test]
    fn lazy_flow_pulls_only_on_submit() {
        let mut server =
            ServerNode::new(ServerConfig::new("sc").with_flow(FlowControl::DemandLazy));
        hello(&mut server, 1, 1, "ws1");
        let actions = notify(&mut server, 1, 7, "/f", 1, b"content");
        assert!(sends(&actions).is_empty());
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(1),
                job_file: FileId::new(7),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options: SubmitOptions::default(),
            },
            now_ms: NOW,
        });
        let msgs = sends(&actions);
        assert!(matches!(msgs[0], ServerMessage::SubmitAck { .. }));
        assert!(matches!(msgs[1], ServerMessage::UpdateRequest { .. }));
    }

    #[test]
    fn full_update_is_cached_and_acked() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 1, b"hello");
        let actions = full_update(&mut server, 1, 7, 1, b"hello");
        assert!(matches!(
            sends(&actions)[..],
            [ServerMessage::VersionAck { .. }]
        ));
        let key = FileKey::new(DomainId::new(1), FileId::new(7));
        assert_eq!(server.cached_version(key), Some(VersionNumber::FIRST));
        assert_eq!(server.report().counter("server", "full_updates"), 1);
    }

    #[test]
    fn delta_update_applies_against_cached_base() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 1, b"a\nb\nc\n");
        full_update(&mut server, 1, 7, 1, b"a\nb\nc\n");

        let new_content = b"a\nB\nc\n";
        let script = diff(
            DiffAlgorithm::HuntMcIlroy,
            &Document::from_bytes(b"a\nb\nc\n".to_vec()),
            &Document::from_bytes(new_content.to_vec()),
        );
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Update {
                file: FileId::new(7),
                version: VersionNumber::new(2),
                payload: UpdatePayload::Delta {
                    base: VersionNumber::new(1),
                    codec: DeltaCodec::Line,
                    encoding: TransferEncoding::Identity,
                    data: Bytes::from(script.to_text()),
                    digest: ContentDigest::of(new_content),
                },
            },
            now_ms: NOW,
        });
        assert!(matches!(
            sends(&actions)[..],
            [ServerMessage::VersionAck { .. }]
        ));
        let key = FileKey::new(DomainId::new(1), FileId::new(7));
        assert_eq!(server.cached_version(key), Some(VersionNumber::new(2)));
        assert_eq!(server.report().counter("server", "delta_updates"), 1);
    }

    #[test]
    fn corrupt_delta_triggers_full_fallback() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 1, b"a\nb\n");
        full_update(&mut server, 1, 7, 1, b"a\nb\n");
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Update {
                file: FileId::new(7),
                version: VersionNumber::new(2),
                payload: UpdatePayload::Delta {
                    base: VersionNumber::new(1),
                    codec: DeltaCodec::Line,
                    encoding: TransferEncoding::Identity,
                    data: Bytes::from_static(b"1c\nX\n.\nw\n"),
                    digest: ContentDigest::of(b"not what the script makes"),
                },
            },
            now_ms: NOW,
        });
        match sends(&actions)[..] {
            [ServerMessage::UpdateRequest { have, .. }] => assert_eq!(*have, None),
            ref other => panic!("expected full-transfer request, got {other:?}"),
        }
        assert_eq!(server.report().counter("server", "update_failures"), 1);
    }

    #[test]
    fn delta_against_missing_base_requests_full() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 2, b"x\n");
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Update {
                file: FileId::new(7),
                version: VersionNumber::new(2),
                payload: UpdatePayload::Delta {
                    base: VersionNumber::new(1),
                    codec: DeltaCodec::Line,
                    encoding: TransferEncoding::Identity,
                    data: Bytes::from_static(b"w\n"),
                    digest: ContentDigest::of(b"x\n"),
                },
            },
            now_ms: NOW,
        });
        match sends(&actions)[..] {
            [ServerMessage::UpdateRequest { have, .. }] => assert_eq!(*have, None),
            ref other => panic!("expected full-transfer request, got {other:?}"),
        }
    }

    /// Runs a complete submit → execute → complete conversation.
    fn run_echo_job(server: &mut ServerNode) -> Vec<ServerAction> {
        hello(server, 1, 1, "ws1");
        notify(server, 1, 1, "/job.cmd", 1, b"echo hi\n");
        full_update(server, 1, 1, 1, b"echo hi\n");
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(9),
                job_file: FileId::new(1),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options: SubmitOptions::default(),
            },
            now_ms: NOW,
        });
        // Submit ack + the completion timer.
        let timer = actions
            .iter()
            .find_map(|a| match a {
                ServerAction::SetTimer { delay_ms, token } => Some((*delay_ms, *token)),
                _ => None,
            })
            .expect("job completion timer");
        server.handle(ServerEvent::Timer {
            token: timer.1,
            now_ms: NOW + timer.0,
        })
    }

    #[test]
    fn job_lifecycle_delivers_output() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        let actions = run_echo_job(&mut server);
        match sends(&actions)[..] {
            [ServerMessage::JobComplete { output, stats, .. }] => {
                match output {
                    OutputPayload::Full { data, .. } => assert_eq!(&data[..], b"hi\n"),
                    other => panic!("expected full output, got {other:?}"),
                }
                assert_eq!(stats.exit_code, 0);
                assert!(stats.running_ms >= 500); // job overhead
            }
            ref other => panic!("expected JobComplete, got {other:?}"),
        }
        assert_eq!(server.report().counter("server", "jobs_completed"), 1);
    }

    #[test]
    fn status_query_reports_pending_jobs() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 1, "/job.cmd", 1, b"compute 100000000\n");
        full_update(&mut server, 1, 1, 1, b"compute 100000000\n");
        server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(1),
                job_file: FileId::new(1),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options: SubmitOptions::default(),
            },
            now_ms: NOW,
        });
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::StatusQuery {
                request: shadow_proto::RequestId::new(2),
                job: None,
            },
            now_ms: NOW + 1,
        });
        match sends(&actions)[..] {
            [ServerMessage::StatusReport { entries, .. }] => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].status, JobStatus::Running);
            }
            ref other => panic!("expected StatusReport, got {other:?}"),
        }
    }

    #[test]
    fn status_of_unknown_job_is_unknown() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::StatusQuery {
                request: shadow_proto::RequestId::new(2),
                job: Some(JobId::new(99)),
            },
            now_ms: NOW,
        });
        match sends(&actions)[..] {
            [ServerMessage::StatusReport { entries, .. }] => {
                assert_eq!(entries[0].status, JobStatus::Unknown);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn submit_without_hello_is_rejected() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(5),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(1),
                job_file: FileId::new(1),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options: SubmitOptions::default(),
            },
            now_ms: NOW,
        });
        assert!(matches!(
            sends(&actions)[..],
            [ServerMessage::SubmitError { .. }]
        ));
    }

    #[test]
    fn job_waits_for_missing_files_then_runs() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 1, "/job.cmd", 1, b"cat /data\n");
        notify(&mut server, 1, 2, "/data", 1, b"payload\n");
        // Answer only the job-file pull first.
        full_update(&mut server, 1, 1, 1, b"cat /data\n");
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(1),
                job_file: FileId::new(1),
                job_version: VersionNumber::FIRST,
                data_files: vec![(FileId::new(2), VersionNumber::FIRST)],
                options: SubmitOptions::default(),
            },
            now_ms: NOW,
        });
        // No completion timer yet: the data file is missing.
        assert!(!actions
            .iter()
            .any(|a| matches!(a, ServerAction::SetTimer { token: TimerToken::JobDone(_), .. })));
        // Deliver the data file; the job should start now.
        let actions = full_update(&mut server, 1, 2, 1, b"payload\n");
        let timer = actions
            .iter()
            .find_map(|a| match a {
                ServerAction::SetTimer { delay_ms, token: TimerToken::JobDone(j) } => {
                    Some((*delay_ms, *j))
                }
                _ => None,
            })
            .expect("job starts once files are present");
        let actions = server.handle(ServerEvent::Timer {
            token: TimerToken::JobDone(timer.1),
            now_ms: NOW + timer.0,
        });
        match sends(&actions)[..] {
            [ServerMessage::JobComplete { output, .. }] => match output {
                OutputPayload::Full { data, .. } => assert_eq!(&data[..], b"payload\n"),
                other => panic!("unexpected output {other:?}"),
            },
            ref other => panic!("expected JobComplete, got {other:?}"),
        }
    }

    #[test]
    fn reverse_shadow_sends_output_delta_on_second_run() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 1, "/job.cmd", 1, b"gen 200 row\n");
        full_update(&mut server, 1, 1, 1, b"gen 200 row\n");
        let options = SubmitOptions {
            shadow_output: true,
            ..SubmitOptions::default()
        };
        // First run: full output.
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(1),
                job_file: FileId::new(1),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options: options.clone(),
            },
            now_ms: NOW,
        });
        let (delay, token) = actions
            .iter()
            .find_map(|a| match a {
                ServerAction::SetTimer { delay_ms, token } => Some((*delay_ms, *token)),
                _ => None,
            })
            .unwrap();
        let actions = server.handle(ServerEvent::Timer {
            token,
            now_ms: NOW + delay,
        });
        let first_job = match sends(&actions)[..] {
            [ServerMessage::JobComplete { job, output, .. }] => {
                assert!(!output.is_delta());
                *job
            }
            ref other => panic!("unexpected {other:?}"),
        };
        // The client acknowledges holding the output.
        server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::OutputAck { job: first_job },
            now_ms: NOW + delay + 1,
        });
        // Second run of the same job: output identical, delta tiny.
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(2),
                job_file: FileId::new(1),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options,
            },
            now_ms: NOW + delay + 2,
        });
        let (delay2, token2) = actions
            .iter()
            .find_map(|a| match a {
                ServerAction::SetTimer { delay_ms, token } => Some((*delay_ms, *token)),
                _ => None,
            })
            .unwrap();
        let actions = server.handle(ServerEvent::Timer {
            token: token2,
            now_ms: NOW + delay + 2 + delay2,
        });
        match sends(&actions)[..] {
            [ServerMessage::JobComplete { output, .. }] => {
                assert!(output.is_delta(), "second run should send an output delta");
                assert!(output.data_len() < 100);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.report().counter("server", "output_deltas"), 1);
    }

    #[test]
    fn output_routing_prefers_deliver_to_host() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        hello(&mut server, 2, 1, "printer-host");
        notify(&mut server, 1, 1, "/job.cmd", 1, b"echo routed\n");
        full_update(&mut server, 1, 1, 1, b"echo routed\n");
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(1),
                job_file: FileId::new(1),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options: SubmitOptions {
                    deliver_to: Some(HostName::new("printer-host")),
                    ..SubmitOptions::default()
                },
            },
            now_ms: NOW,
        });
        let (delay, token) = actions
            .iter()
            .find_map(|a| match a {
                ServerAction::SetTimer { delay_ms, token } => Some((*delay_ms, *token)),
                _ => None,
            })
            .unwrap();
        let actions = server.handle(ServerEvent::Timer {
            token,
            now_ms: NOW + delay,
        });
        match actions
            .iter()
            .find_map(|a| match a {
                ServerAction::Send { session, message } => Some((session, message)),
                _ => None,
            })
            .expect("a delivery")
        {
            (session, ServerMessage::JobComplete { .. }) => {
                assert_eq!(*session, SessionId::new(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cache_drop_forces_full_retransfer_not_failure() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 1, b"v1\n");
        full_update(&mut server, 1, 7, 1, b"v1\n");
        server.drop_cache();
        // The next notify finds no cached base: the pull asks for a full
        // copy (have = None).
        let actions = notify(&mut server, 1, 7, "/f", 2, b"v2\n");
        match sends(&actions)[..] {
            [ServerMessage::UpdateRequest { have, .. }] => assert_eq!(*have, None),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn request_driven_mode_never_pulls() {
        let mut server =
            ServerNode::new(ServerConfig::new("sc").with_flow(FlowControl::RequestDriven));
        hello(&mut server, 1, 1, "ws1");
        let actions = notify(&mut server, 1, 7, "/f", 1, b"x");
        assert!(sends(&actions).is_empty());
        assert_eq!(server.report().counter("server", "update_requests"), 0);
    }

    #[test]
    fn adaptive_flow_postpones_under_load() {
        let mut server = ServerNode::new(
            ServerConfig::new("sc").with_flow(FlowControl::DemandAdaptive {
                eager_queue_limit: 0,
                cache_pressure_limit: 0.9,
            }),
        );
        hello(&mut server, 1, 1, "ws1");
        // Create a pending job to push the queue over the limit.
        notify(&mut server, 1, 1, "/job.cmd", 1, b"compute 100000000\n");
        full_update(&mut server, 1, 1, 1, b"compute 100000000\n");
        server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(1),
                job_file: FileId::new(1),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options: SubmitOptions::default(),
            },
            now_ms: NOW,
        });
        // Under load, a notify is postponed to the fetch pulse.
        let actions = notify(&mut server, 1, 9, "/data", 1, b"d");
        assert!(sends(&actions).is_empty());
        assert!(actions
            .iter()
            .any(|a| matches!(a, ServerAction::SetTimer { token: TimerToken::FetchPulse, .. })));
    }

    fn persists(actions: &[ServerAction]) -> Vec<PersistRecord> {
        actions
            .iter()
            .filter_map(|a| match a {
                ServerAction::Persist(r) => Some(r.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn full_update_persists_full_record_and_delta_persists_the_script() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 1, b"a\nb\nc\n");
        let records = persists(&full_update(&mut server, 1, 7, 1, b"a\nb\nc\n"));
        assert!(matches!(
            records[..],
            [PersistRecord::CacheFull { version, .. }] if version == VersionNumber::FIRST
        ));

        let new_content = b"a\nB\nc\n";
        let script = diff(
            DiffAlgorithm::HuntMcIlroy,
            &Document::from_bytes(b"a\nb\nc\n".to_vec()),
            &Document::from_bytes(new_content.to_vec()),
        );
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Update {
                file: FileId::new(7),
                version: VersionNumber::new(2),
                payload: UpdatePayload::Delta {
                    base: VersionNumber::new(1),
                    codec: DeltaCodec::Line,
                    encoding: TransferEncoding::Identity,
                    data: Bytes::from(script.to_text()),
                    digest: ContentDigest::of(new_content),
                },
            },
            now_ms: NOW,
        });
        match &persists(&actions)[..] {
            [PersistRecord::CacheDelta {
                version,
                base,
                digest,
                ..
            }] => {
                assert_eq!(*version, VersionNumber::new(2));
                assert_eq!(*base, VersionNumber::FIRST);
                assert_eq!(*digest, ContentDigest::of(new_content));
            }
            other => panic!("expected one CacheDelta record, got {other:?}"),
        }
    }

    #[test]
    fn failed_update_persists_the_removal() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 1, b"a\nb\n");
        full_update(&mut server, 1, 7, 1, b"a\nb\n");
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Update {
                file: FileId::new(7),
                version: VersionNumber::new(2),
                payload: UpdatePayload::Delta {
                    base: VersionNumber::new(1),
                    codec: DeltaCodec::Line,
                    encoding: TransferEncoding::Identity,
                    data: Bytes::from_static(b"1c\nX\n.\nw\n"),
                    digest: ContentDigest::of(b"not what the script makes"),
                },
            },
            now_ms: NOW,
        });
        let key = FileKey::new(DomainId::new(1), FileId::new(7));
        assert_eq!(persists(&actions), vec![PersistRecord::CacheRemove { key }]);
    }

    #[test]
    fn replaying_the_journal_rebuilds_the_cache() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        let mut journal = Vec::new();
        notify(&mut server, 1, 7, "/f", 1, b"a\nb\nc\n");
        journal.extend(persists(&full_update(&mut server, 1, 7, 1, b"a\nb\nc\n")));
        let new_content = b"a\nB\nc\n";
        let script = diff(
            DiffAlgorithm::HuntMcIlroy,
            &Document::from_bytes(b"a\nb\nc\n".to_vec()),
            &Document::from_bytes(new_content.to_vec()),
        );
        journal.extend(persists(&server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Update {
                file: FileId::new(7),
                version: VersionNumber::new(2),
                payload: UpdatePayload::Delta {
                    base: VersionNumber::new(1),
                    codec: DeltaCodec::Line,
                    encoding: TransferEncoding::Identity,
                    data: Bytes::from(script.to_text()),
                    digest: ContentDigest::of(new_content),
                },
            },
            now_ms: NOW,
        })));

        let mut restored = ServerNode::new(ServerConfig::new("sc"));
        let summary = restored.restore(&journal);
        assert_eq!(summary.applied, 2);
        assert_eq!(summary.skipped, 0);
        let key = FileKey::new(DomainId::new(1), FileId::new(7));
        assert_eq!(restored.cached_version(key), Some(VersionNumber::new(2)));
        assert_eq!(restored.cached_digest(key), server.cached_digest(key));
        assert_eq!(restored.report().counter("server", "restored_records"), 2);
    }

    #[test]
    fn broken_delta_chain_drops_the_key_instead_of_corrupting_it() {
        // A CacheDelta whose base record is missing (e.g. truncated away)
        // must not leave any version of the key behind.
        let key = FileKey::new(DomainId::new(1), FileId::new(7));
        let journal = vec![PersistRecord::CacheDelta {
            key,
            version: VersionNumber::new(2),
            base: VersionNumber::FIRST,
            codec: DeltaCodec::Line,
            script: Bytes::from_static(b"1c\nX\n.\nw\n"),
            digest: ContentDigest::of(b"X\n"),
        }];
        let mut restored = ServerNode::new(ServerConfig::new("sc"));
        let summary = restored.restore(&journal);
        assert_eq!(summary.applied, 0);
        assert_eq!(summary.skipped, 1);
        assert_eq!(restored.cached_version(key), None);
        assert_eq!(restored.report().counter("server", "restore_skipped"), 1);
    }

    #[test]
    fn restored_output_records_advance_the_job_counter() {
        let journal = vec![
            PersistRecord::Output {
                domain: DomainId::new(1),
                job_file: FileId::new(3),
                job: JobId::new(9),
                content: Bytes::from_static(b"out\n"),
            },
            PersistRecord::OutputAcked {
                domain: DomainId::new(1),
                job: JobId::new(9),
            },
        ];
        let mut restored = ServerNode::new(ServerConfig::new("sc"));
        restored.restore(&journal);
        hello(&mut restored, 1, 1, "ws1");
        notify(&mut restored, 1, 3, "/job.cmd", 1, b"noop\n");
        full_update(&mut restored, 1, 3, 1, b"noop\n");
        let actions = restored.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Submit {
                request: shadow_proto::RequestId::new(1),
                job_file: FileId::new(3),
                job_version: VersionNumber::FIRST,
                data_files: vec![],
                options: SubmitOptions::default(),
            },
            now_ms: NOW,
        });
        // The fresh job id must not collide with the restored base job 9.
        match sends(&actions)[..] {
            [ServerMessage::SubmitAck { job, .. }] => assert_eq!(*job, JobId::new(10)),
            ref other => panic!("expected SubmitAck, got {other:?}"),
        }
    }

    #[test]
    fn ping_is_answered_with_pong() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        let actions = server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Ping { nonce: 77 },
            now_ms: NOW,
        });
        match sends(&actions)[..] {
            [ServerMessage::Pong { nonce }] => assert_eq!(*nonce, 77),
            ref other => panic!("expected Pong, got {other:?}"),
        }
        assert_eq!(server.report().counter("server", "pings_answered"), 1);
    }

    #[test]
    fn resume_confirms_cached_entries_and_degrades_the_rest() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 1, b"kept\n");
        full_update(&mut server, 1, 7, 1, b"kept\n");
        server.handle(ServerEvent::Disconnected {
            session: SessionId::new(1),
            reason: CloseReason::Error,
            now_ms: NOW,
        });
        // The reconnecting client claims file 7 (correct) and file 8
        // (never cached here).
        let resume = vec![
            shadow_proto::ResumeEntry {
                file: FileId::new(7),
                version: VersionNumber::FIRST,
                digest: ContentDigest::of(b"kept\n"),
            },
            shadow_proto::ResumeEntry {
                file: FileId::new(8),
                version: VersionNumber::FIRST,
                digest: ContentDigest::of(b"lost\n"),
            },
        ];
        let actions = resume_hello(&mut server, 2, 1, "ws1", 1, resume);
        match sends(&actions)[..] {
            [ServerMessage::HelloAck {
                resumed, retained, ..
            }] => {
                assert!(*resumed);
                assert_eq!(retained[..], [(FileId::new(7), VersionNumber::FIRST)]);
            }
            ref other => panic!("expected HelloAck, got {other:?}"),
        }
        assert_eq!(server.report().counter("server", "sessions_resumed"), 1);
        assert_eq!(server.report().counter("server", "resume_hits"), 1);
        assert_eq!(server.report().counter("server", "resume_fallbacks"), 1);
        // The confirmed base keeps the delta path warm: a newer version
        // announced on the resumed session is pulled with have = v1.
        let actions = notify(&mut server, 2, 7, "/f", 2, b"kept more\n");
        match sends(&actions)[..] {
            [ServerMessage::UpdateRequest { have, .. }] => {
                assert_eq!(*have, Some(VersionNumber::FIRST));
            }
            ref other => panic!("expected UpdateRequest, got {other:?}"),
        }
    }

    #[test]
    fn resume_with_stale_digest_is_not_confirmed() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        notify(&mut server, 1, 7, "/f", 1, b"real\n");
        full_update(&mut server, 1, 7, 1, b"real\n");
        // Right version number, wrong digest: must not be trusted.
        let resume = vec![shadow_proto::ResumeEntry {
            file: FileId::new(7),
            version: VersionNumber::FIRST,
            digest: ContentDigest::of(b"tampered\n"),
        }];
        let actions = resume_hello(&mut server, 2, 1, "ws1", 1, resume);
        match sends(&actions)[..] {
            [ServerMessage::HelloAck { retained, .. }] => assert!(retained.is_empty()),
            ref other => panic!("expected HelloAck, got {other:?}"),
        }
        assert_eq!(server.report().counter("server", "resume_fallbacks"), 1);
    }

    #[test]
    fn disconnect_clears_in_flight_pulls_toward_the_dead_session() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        // The notify arms a pull that will never be answered.
        let actions = notify(&mut server, 1, 7, "/f", 1, b"x\n");
        assert!(matches!(
            sends(&actions)[..],
            [ServerMessage::UpdateRequest { .. }]
        ));
        server.handle(ServerEvent::Disconnected {
            session: SessionId::new(1),
            reason: CloseReason::Error,
            now_ms: NOW,
        });
        // After reconnecting, the same announcement must re-request
        // instead of being suppressed by the stale in-flight entry.
        hello(&mut server, 2, 1, "ws1");
        let actions = notify(&mut server, 2, 7, "/f", 1, b"x\n");
        assert!(matches!(
            sends(&actions)[..],
            [ServerMessage::UpdateRequest { .. }]
        ));
    }

    #[test]
    fn close_reasons_are_counted_once_per_session() {
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        hello(&mut server, 1, 1, "ws1");
        // Orderly Bye, then the transport reap that follows it: one
        // clean close, not two.
        server.handle(ServerEvent::Message {
            session: SessionId::new(1),
            message: ClientMessage::Bye,
            now_ms: NOW,
        });
        server.handle(ServerEvent::Disconnected {
            session: SessionId::new(1),
            reason: CloseReason::Clean,
            now_ms: NOW,
        });
        assert_eq!(server.report().counter("server", "closed_clean"), 1);
        // A failed session counts under its own reason.
        hello(&mut server, 2, 1, "ws2");
        server.handle(ServerEvent::Disconnected {
            session: SessionId::new(2),
            reason: CloseReason::Error,
            now_ms: NOW,
        });
        assert_eq!(server.report().counter("server", "closed_error"), 1);
        hello(&mut server, 3, 1, "ws3");
        server.handle(ServerEvent::Disconnected {
            session: SessionId::new(3),
            reason: CloseReason::Idle,
            now_ms: NOW,
        });
        assert_eq!(server.report().counter("server", "closed_idle"), 1);
    }
}
