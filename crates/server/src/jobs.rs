//! Job bookkeeping: the batch queue.

use std::collections::BTreeMap;

use shadow_proto::{DomainId, FileId, HostName, JobId, JobStatus, SubmitOptions, VersionNumber};

use crate::exec::ExecOutcome;
use crate::node::SessionId;

/// Lifecycle phase of a job inside the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting for file updates to be retrieved (§6.4: updates "may be
    /// obtained in the background even before a submit request is received
    /// and processed" — or after, if they are still missing).
    WaitingForFiles,
    /// All files present; waiting for a batch slot.
    Queued,
    /// Executing; carries the precomputed outcome revealed when the
    /// simulated runtime elapses.
    Running {
        /// The interpreter's result, delivered at completion time.
        outcome: ExecOutcome,
    },
    /// Finished successfully.
    Completed,
    /// Finished unsuccessfully.
    Failed,
}

/// One batch job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Server-assigned id.
    pub id: JobId,
    /// Session that submitted it.
    pub session: SessionId,
    /// Submitting client's naming domain.
    pub domain: DomainId,
    /// Submitting client's host (fallback output destination).
    pub client_host: HostName,
    /// The job command file and required version.
    pub job_file: (FileId, VersionNumber),
    /// Data files and required versions.
    pub data_files: Vec<(FileId, VersionNumber)>,
    /// Submission options.
    pub options: SubmitOptions,
    /// Current phase.
    pub phase: JobPhase,
    /// Update requests issued per missing file while waiting; bounds
    /// eviction ping-pong (a cache too small for the job's files).
    pub fetch_attempts: BTreeMap<FileId, u32>,
    /// Server clock at submission.
    pub submitted_at_ms: u64,
    /// Server clock when all files were present.
    pub files_ready_at_ms: Option<u64>,
    /// Server clock when execution started.
    pub started_at_ms: Option<u64>,
}

impl Job {
    /// Every file (command file first) the job needs, with versions.
    pub fn required_files(&self) -> impl Iterator<Item = (FileId, VersionNumber)> + '_ {
        std::iter::once(self.job_file).chain(self.data_files.iter().copied())
    }

    /// The protocol-level status for reports.
    pub fn status(&self) -> JobStatus {
        match self.phase {
            JobPhase::WaitingForFiles => JobStatus::WaitingForFiles,
            JobPhase::Queued => JobStatus::Queued,
            JobPhase::Running { .. } => JobStatus::Running,
            JobPhase::Completed => JobStatus::Completed,
            JobPhase::Failed => JobStatus::Failed,
        }
    }

    /// Whether the job still occupies server attention.
    pub fn is_pending(&self) -> bool {
        !matches!(self.phase, JobPhase::Completed | JobPhase::Failed)
    }
}

/// The server's table of jobs, in submission order.
#[derive(Debug, Clone, Default)]
pub(crate) struct JobTable {
    jobs: BTreeMap<JobId, Job>,
}

impl JobTable {
    pub(crate) fn insert(&mut self, job: Job) {
        self.jobs.insert(job.id, job);
    }

    pub(crate) fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    pub(crate) fn get_mut(&mut self, id: JobId) -> Option<&mut Job> {
        self.jobs.get_mut(&id)
    }

    /// Jobs currently executing.
    pub(crate) fn running_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| matches!(j.phase, JobPhase::Running { .. }))
            .count()
    }

    /// Jobs not yet in a terminal phase.
    pub(crate) fn pending_count(&self) -> usize {
        self.jobs.values().filter(|j| j.is_pending()).count()
    }

    /// The next queued job to run: highest priority, then oldest.
    pub(crate) fn next_queued(&self) -> Option<JobId> {
        self.jobs
            .values()
            .filter(|j| matches!(j.phase, JobPhase::Queued))
            .max_by_key(|j| (j.options.priority, std::cmp::Reverse(j.id)))
            .map(|j| j.id)
    }

    /// Ids of jobs waiting on files (checked when the cache gains data).
    pub(crate) fn waiting_ids(&self) -> Vec<JobId> {
        self.jobs
            .values()
            .filter(|j| matches!(j.phase, JobPhase::WaitingForFiles))
            .map(|j| j.id)
            .collect()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, phase: JobPhase, priority: u8) -> Job {
        Job {
            id: JobId::new(id),
            session: SessionId::new(1),
            domain: DomainId::new(1),
            client_host: HostName::new("ws"),
            job_file: (FileId::new(1), VersionNumber::FIRST),
            data_files: vec![(FileId::new(2), VersionNumber::FIRST)],
            options: SubmitOptions {
                priority,
                ..SubmitOptions::default()
            },
            phase,
            fetch_attempts: BTreeMap::new(),
            submitted_at_ms: 0,
            files_ready_at_ms: None,
            started_at_ms: None,
        }
    }

    #[test]
    fn required_files_includes_command_file_first() {
        let j = job(1, JobPhase::Queued, 0);
        let files: Vec<_> = j.required_files().collect();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].0, FileId::new(1));
    }

    #[test]
    fn status_mapping() {
        assert_eq!(
            job(1, JobPhase::WaitingForFiles, 0).status(),
            JobStatus::WaitingForFiles
        );
        assert_eq!(job(1, JobPhase::Queued, 0).status(), JobStatus::Queued);
        assert_eq!(job(1, JobPhase::Completed, 0).status(), JobStatus::Completed);
        assert!(!job(1, JobPhase::Failed, 0).is_pending());
        assert!(job(1, JobPhase::Queued, 0).is_pending());
    }

    #[test]
    fn next_queued_prefers_priority_then_age() {
        let mut t = JobTable::default();
        t.insert(job(1, JobPhase::Queued, 0));
        t.insert(job(2, JobPhase::Queued, 5));
        t.insert(job(3, JobPhase::Queued, 5));
        assert_eq!(t.next_queued(), Some(JobId::new(2)));
    }

    #[test]
    fn next_queued_skips_non_queued() {
        let mut t = JobTable::default();
        t.insert(job(1, JobPhase::WaitingForFiles, 9));
        t.insert(job(2, JobPhase::Completed, 9));
        t.insert(job(3, JobPhase::Queued, 0));
        assert_eq!(t.next_queued(), Some(JobId::new(3)));
    }

    #[test]
    fn counts() {
        let mut t = JobTable::default();
        t.insert(job(1, JobPhase::Running { outcome: ExecOutcome::default() }, 0));
        t.insert(job(2, JobPhase::Queued, 0));
        t.insert(job(3, JobPhase::Completed, 0));
        assert_eq!(t.running_count(), 1);
        assert_eq!(t.pending_count(), 2);
        assert_eq!(t.waiting_ids().len(), 0);
        assert_eq!(t.iter().count(), 3);
    }
}
