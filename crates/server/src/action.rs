//! Events consumed and actions emitted by the server state machine.

use shadow_proto::{ClientMessage, JobId, PersistRecord, ServerMessage};

use crate::node::SessionId;

/// Discriminator for timers the server asks its driver to set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerToken {
    /// A running job's simulated execution finishes.
    JobDone(JobId),
    /// Re-evaluate postponed update pulls (adaptive flow control).
    FetchPulse,
}

/// Why a session went away. Runtimes classify the transport-level
/// condition; the node keeps per-reason counters so reaped sessions
/// show up in reports instead of vanishing silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloseReason {
    /// The peer shut the transport down in an orderly way (or said
    /// `Bye`).
    Clean,
    /// The transport failed underneath the session.
    Error,
    /// An inbound frame failed to decode and the session was killed.
    Decode,
    /// The runtime evicted the session for prolonged inactivity.
    Idle,
    /// The runtime is shutting down and dropped the session.
    Shutdown,
}

impl CloseReason {
    /// A stable label for logs, driver events, and report keys.
    pub const fn label(self) -> &'static str {
        match self {
            CloseReason::Clean => "clean",
            CloseReason::Error => "error",
            CloseReason::Decode => "decode",
            CloseReason::Idle => "idle",
            CloseReason::Shutdown => "shutdown",
        }
    }
}

/// An input to [`ServerNode::handle`](crate::ServerNode::handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// A transport-level session opened (e.g. TCP accept).
    Connected {
        /// Driver-assigned session id.
        session: SessionId,
        /// Server clock, milliseconds.
        now_ms: u64,
    },
    /// A session closed.
    Disconnected {
        /// The session that went away.
        session: SessionId,
        /// Why the runtime considers it gone.
        reason: CloseReason,
        /// Server clock, milliseconds.
        now_ms: u64,
    },
    /// A decoded message arrived on a session.
    Message {
        /// Originating session.
        session: SessionId,
        /// The message.
        message: ClientMessage,
        /// Server clock, milliseconds.
        now_ms: u64,
    },
    /// A timer previously requested via [`ServerAction::SetTimer`] fired.
    Timer {
        /// The token given when the timer was set.
        token: TimerToken,
        /// Server clock, milliseconds.
        now_ms: u64,
    },
}

/// An output of the server state machine, to be performed by its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAction {
    /// Send a message on a session.
    Send {
        /// Destination session.
        session: SessionId,
        /// The message.
        message: ServerMessage,
    },
    /// Arrange for [`ServerEvent::Timer`] after a delay.
    SetTimer {
        /// Delay in milliseconds of server clock.
        delay_ms: u64,
        /// Token echoed back when the timer fires.
        token: TimerToken,
    },
    /// Append one record to the durable shadow store. The state machine
    /// stays sans-io: it only *describes* the mutation it just applied
    /// to its in-memory shadow state; a runtime-layer sink journals it
    /// (and a diskless deployment simply drops it).
    Persist(PersistRecord),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_distinguishable() {
        assert_ne!(
            TimerToken::JobDone(JobId::new(1)),
            TimerToken::JobDone(JobId::new(2))
        );
        assert_ne!(TimerToken::JobDone(JobId::new(1)), TimerToken::FetchPulse);
    }
}
