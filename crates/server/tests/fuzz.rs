//! Robustness: the server state machine must never panic, whatever
//! (well-typed but arbitrarily bogus) message sequence a client throws at
//! it — wrong versions, random deltas against absent bases, submissions
//! of unknown files, acks for unknown jobs, messages before hello.

use bytes::Bytes;
use proptest::prelude::*;
use shadow_proto::{
    ClientMessage, ContentDigest, DeltaCodec, DomainId, FileId, HostName, JobId, RequestId,
    ResumeEntry, SubmitOptions, TransferEncoding, UpdatePayload, VersionNumber, PROTOCOL_VERSION,
};
use shadow_server::{CloseReason, ServerConfig, ServerEvent, ServerNode, SessionId};

fn arb_encoding() -> impl Strategy<Value = TransferEncoding> {
    prop_oneof![
        Just(TransferEncoding::Identity),
        Just(TransferEncoding::Rle),
        Just(TransferEncoding::Lzss),
    ]
}

fn arb_payload() -> impl Strategy<Value = UpdatePayload> {
    prop_oneof![
        (arb_encoding(), prop::collection::vec(any::<u8>(), 0..128), any::<u64>()).prop_map(
            |(encoding, data, d)| UpdatePayload::Full {
                encoding,
                data: Bytes::from(data),
                digest: ContentDigest::from_raw(d),
            }
        ),
        (
            0u64..4,
            prop_oneof![Just(DeltaCodec::Line), Just(DeltaCodec::Chunk)],
            arb_encoding(),
            prop::collection::vec(any::<u8>(), 0..128),
            any::<u64>()
        )
            .prop_map(|(base, codec, encoding, data, d)| UpdatePayload::Delta {
                base: VersionNumber::new(base),
                codec,
                encoding,
                data: Bytes::from(data),
                digest: ContentDigest::from_raw(d),
            }),
    ]
}

fn arb_resume() -> impl Strategy<Value = Vec<ResumeEntry>> {
    prop::collection::vec(
        (0u64..6, 0u64..4, any::<u64>()).prop_map(|(f, v, d)| ResumeEntry {
            file: FileId::new(f),
            version: VersionNumber::new(v),
            digest: ContentDigest::from_raw(d),
        }),
        0..4,
    )
}

fn arb_message() -> impl Strategy<Value = ClientMessage> {
    prop_oneof![
        (0u64..3, "[a-z]{1,6}", 0u64..4, arb_resume()).prop_map(|(d, h, epoch, resume)| {
            ClientMessage::Hello {
                domain: DomainId::new(d),
                host: HostName::new(h),
                protocol: PROTOCOL_VERSION,
                epoch,
                resume,
            }
        }),
        any::<u64>().prop_map(|nonce| ClientMessage::Ping { nonce }),
        (0u64..6, "[ -~]{0,16}", 0u64..6, any::<u64>(), any::<u64>()).prop_map(
            |(f, name, v, size, dg)| ClientMessage::NotifyVersion {
                file: FileId::new(f),
                name,
                version: VersionNumber::new(v),
                size,
                digest: ContentDigest::from_raw(dg),
            }
        ),
        (0u64..6, 0u64..6, arb_payload()).prop_map(|(f, v, payload)| ClientMessage::Update {
            file: FileId::new(f),
            version: VersionNumber::new(v),
            payload,
        }),
        (
            any::<u64>(),
            0u64..6,
            0u64..4,
            prop::collection::vec((0u64..6, 0u64..4), 0..4),
            any::<u8>(),
            any::<bool>()
        )
            .prop_map(|(r, jf, jv, files, priority, shadow_output)| {
                ClientMessage::Submit {
                    request: RequestId::new(r),
                    job_file: FileId::new(jf),
                    job_version: VersionNumber::new(jv),
                    data_files: files
                        .into_iter()
                        .map(|(f, v)| (FileId::new(f), VersionNumber::new(v)))
                        .collect(),
                    options: SubmitOptions {
                        priority,
                        shadow_output,
                        ..SubmitOptions::default()
                    },
                }
            }),
        (any::<u64>(), prop::option::of(0u64..8)).prop_map(|(r, j)| ClientMessage::StatusQuery {
            request: RequestId::new(r),
            job: j.map(JobId::new),
        }),
        (0u64..8).prop_map(|j| ClientMessage::OutputAck { job: JobId::new(j) }),
        Just(ClientMessage::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn server_survives_arbitrary_message_sequences(
        messages in prop::collection::vec((0u64..3, arb_message()), 0..48),
        cache_budget in 1usize..10_000,
    ) {
        let mut server = ServerNode::new(
            ServerConfig::new("sc").with_cache_budget(cache_budget),
        );
        let mut pending_timers = Vec::new();
        let mut now_ms = 0u64;
        for (session, message) in messages {
            now_ms += 1;
            let actions = server.handle(ServerEvent::Message {
                session: SessionId::new(session),
                message,
                now_ms,
            });
            for a in actions {
                if let shadow_server::ServerAction::SetTimer { delay_ms, token } = a {
                    pending_timers.push((delay_ms, token));
                }
            }
            // Fire timers promptly so jobs progress mid-sequence.
            for (delay, token) in std::mem::take(&mut pending_timers) {
                now_ms += delay;
                let more = server.handle(ServerEvent::Timer { token, now_ms });
                for a in more {
                    if let shadow_server::ServerAction::SetTimer { delay_ms, token } = a {
                        pending_timers.push((delay_ms, token));
                    }
                }
            }
        }
        // Post-condition: counters are consistent.
        let m = server.report();
        let applied = m.counter("server", "full_updates") + m.counter("server", "delta_updates");
        let failures = m.counter("server", "update_failures");
        prop_assert!(applied >= failures.saturating_sub(failures));
    }

    #[test]
    fn server_survives_sessions_vanishing_at_any_point(
        script in prop::collection::vec((prop::option::of(0usize..5), arb_message()), 0..32),
    ) {
        let reasons = [
            CloseReason::Clean,
            CloseReason::Error,
            CloseReason::Decode,
            CloseReason::Idle,
            CloseReason::Shutdown,
        ];
        let mut server = ServerNode::new(ServerConfig::new("sc"));
        let session = SessionId::new(1);
        for (now_ms, (disconnect, message)) in script.into_iter().enumerate() {
            let now_ms = now_ms as u64;
            if let Some(r) = disconnect {
                server.handle(ServerEvent::Disconnected {
                    session,
                    reason: reasons[r],
                    now_ms,
                });
            }
            server.handle(ServerEvent::Message {
                session,
                message,
                now_ms,
            });
        }
    }
}
