//! Robustness: the batch executor must never panic, whatever job command
//! file a user submits — including non-UTF-8 garbage, absurd counts, and
//! deeply weird argument shapes.

use proptest::prelude::*;
use shadow_server::exec::run_job;
use std::collections::HashMap;

fn resolver(files: HashMap<String, Vec<u8>>) -> impl Fn(&str) -> Option<Vec<u8>> {
    move |name| files.get(name).cloned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn executor_never_panics_on_arbitrary_bytes(
        job in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let outcome = run_job(&job, &|_| None);
        // Exit code is always 0 or 1.
        prop_assert!(outcome.exit_code == 0 || outcome.exit_code == 1);
    }

    #[test]
    fn executor_never_panics_on_word_salad(
        lines in prop::collection::vec(
            prop::collection::vec("[a-z0-9/.]{1,8}", 0..5).prop_map(|w| w.join(" ")),
            0..12
        ),
        files in prop::collection::hash_map(
            "[a-z/]{1,6}",
            prop::collection::vec(any::<u8>(), 0..128),
            0..4
        ),
    ) {
        let job = lines.join("\n") + "\n";
        let resolve = resolver(files);
        let outcome = run_job(job.as_bytes(), &resolve);
        prop_assert!(outcome.exit_code == 0 || outcome.exit_code == 1);
        // Accounting: cpu_bytes at least covers the output produced.
        prop_assert!(outcome.cpu_bytes >= outcome.output.len() as u64);
    }

    #[test]
    fn executor_output_is_deterministic(
        job in prop::collection::vec(any::<u8>(), 0..256),
        content in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut files = HashMap::new();
        files.insert("/f".to_string(), content);
        let resolve = resolver(files);
        let a = run_job(&job, &resolve);
        let b = run_job(&job, &resolve);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn huge_counts_are_rejected_or_bounded(n in prop::num::u64::ANY) {
        // `gen` with absurd counts must not OOM: parse failure or the work
        // is genuinely requested (we cap the test to small n for that).
        let job = format!("gen {n} x\n");
        if n < 10_000 {
            let outcome = run_job(job.as_bytes(), &|_| None);
            prop_assert_eq!(outcome.exit_code, 0);
        } else {
            // Don't actually materialize huge outputs in the test; just
            // check the malformed variants.
            let job = format!("gen {n}x x\n");
            let outcome = run_job(job.as_bytes(), &|_| None);
            prop_assert_eq!(outcome.exit_code, 1);
        }
    }
}
