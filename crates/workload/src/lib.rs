//! Deterministic workload generation for the paper's experiments.
//!
//! The evaluation (§8.1) "used files of different sizes (ranging from 10K
//! to 500K bytes) … we edited the data file and resubmitted the same job.
//! We modified the data file by a different amount every time (the amount
//! of text modified varied from 1% of the text to 80% of the text)".
//!
//! This crate reproduces that workload: a seeded [`generate_file`] that
//! emits realistic line-structured scientific data, and an [`EditModel`]
//! that modifies a controlled *fraction of the text bytes* — scattered
//! across the file or clustered, replacing, inserting and deleting lines
//! the way an editing session does.
//!
//! Everything is deterministic given the seed, so experiments are exactly
//! reproducible.
//!
//! # Example
//!
//! ```
//! use shadow_workload::{generate_file, EditModel, FileSpec};
//!
//! let content = generate_file(&FileSpec::new(10_000, 42));
//! let edited = EditModel::fraction(0.05, 7).apply(&content);
//! assert_ne!(content, edited);
//! // Roughly 5% of the bytes changed (the diff will be proportionate).
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadow_diff::{diff, DiffAlgorithm, Document};

/// Parameters for generating one synthetic data file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSpec {
    /// Approximate size in bytes (within one line of the target).
    pub size_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FileSpec {
    /// Creates a spec.
    pub fn new(size_bytes: usize, seed: u64) -> Self {
        FileSpec { size_bytes, seed }
    }
}

/// The file sizes the paper's figures use, in bytes.
pub const PAPER_SIZES_FIG1: [usize; 3] = [100_000, 200_000, 500_000];
/// The file sizes of the speedup table (Figure 3).
pub const PAPER_SIZES_FIG3: [usize; 4] = [10_000, 50_000, 100_000, 500_000];
/// The modification percentages swept in Figures 1–2.
pub const PAPER_PERCENTS_FIG1: [f64; 7] = [0.01, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80];
/// The modification percentages of the speedup table (Figure 3).
pub const PAPER_PERCENTS_FIG3: [f64; 4] = [0.01, 0.05, 0.10, 0.20];

/// Generates a line-structured text file of roughly `spec.size_bytes`
/// bytes: numbered records with plausible-looking measurement fields,
/// the kind of program/data text the paper's scientists shipped.
pub fn generate_file(spec: &FileSpec) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.size_bytes + 80);
    let mut record = 0u64;
    while out.len() < spec.size_bytes {
        let line = format!(
            "{record:06} {:9.4} {:9.4} {:9.4} flag={} site={:03}\n",
            rng.gen_range(-999.0..999.0f64),
            rng.gen_range(-999.0..999.0f64),
            rng.gen_range(-999.0..999.0f64),
            if rng.gen_bool(0.5) { 'T' } else { 'F' },
            rng.gen_range(0..1000),
        );
        out.extend_from_slice(line.as_bytes());
        record += 1;
    }
    out.truncate(spec.size_bytes.max(1));
    // Keep the file newline-terminated (POSIX text) without changing size
    // materially.
    if *out.last().unwrap() != b'\n' {
        *out.last_mut().unwrap() = b'\n';
    }
    out
}

/// How an editing session distributes its changes through the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Changes land in `hunks` separate regions (the common case: a few
    /// parameters adjusted here and there).
    Scattered {
        /// Number of separate edit regions.
        hunks: usize,
    },
    /// One contiguous region is rewritten.
    Clustered,
}

/// A model of one editing session that modifies a controlled fraction of
/// the file's bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditModel {
    /// Fraction of the text bytes modified, `0.0..=1.0` (the paper's
    /// x-axis: "percentage (in bytes) of text that was modified").
    pub fraction: f64,
    /// Spatial distribution of the changes.
    pub locality: Locality,
    /// Of the modified bytes, the fraction that are pure insertions
    /// (growing the file) rather than replacements. The remainder splits
    /// evenly between replacement and deletion-plus-reinsertion.
    pub insert_bias: f64,
    /// RNG seed; vary per session for distinct edits.
    pub seed: u64,
}

impl EditModel {
    /// A scattered edit of `fraction` of the bytes with a size-appropriate
    /// number of hunks (≈ one hunk per 2% of file, at least 1, at most 64).
    pub fn fraction(fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let hunks = ((fraction * 50.0).ceil() as usize).clamp(1, 64);
        EditModel {
            fraction,
            locality: Locality::Scattered { hunks },
            insert_bias: 0.1,
            seed,
        }
    }

    /// Overrides the locality.
    #[must_use]
    pub fn with_locality(mut self, locality: Locality) -> Self {
        self.locality = locality;
        self
    }

    /// Applies the session to `content`, returning the edited text.
    ///
    /// The returned text differs from the input in approximately
    /// `fraction × len` bytes (measured as replaced/inserted line bytes).
    pub fn apply(&self, content: &[u8]) -> Vec<u8> {
        if self.fraction == 0.0 || content.is_empty() {
            return content.to_vec();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let doc = Document::from_bytes(content.to_vec());
        let mut lines: Vec<Vec<u8>> = doc
            .lines()
            .iter()
            .map(|l| l.as_bytes().to_vec())
            .collect();
        if lines.is_empty() {
            return content.to_vec();
        }
        let target_bytes = ((content.len() as f64) * self.fraction).round() as usize;
        let hunks = match self.locality {
            Locality::Scattered { hunks } => hunks.max(1),
            Locality::Clustered => 1,
        };
        let per_hunk = (target_bytes / hunks).max(1);

        // Pick hunk start lines spread through the file (deterministic
        // shuffle of candidate positions).
        let avg_line = (content.len() / lines.len().max(1)).max(1);
        for h in 0..hunks {
            if lines.is_empty() {
                break;
            }
            // Keep the hunk's expected extent inside the file so the
            // requested byte fraction is actually modified.
            let extent_lines = (per_hunk / avg_line + 1).min(lines.len());
            let start_max = lines.len() - extent_lines + 1;
            let start = rng.gen_range(0..start_max);
            let mut consumed = 0usize;
            let mut idx = start;
            let insert_here = rng.gen_bool(self.insert_bias.clamp(0.0, 1.0));
            while consumed < per_hunk && idx < lines.len() {
                let line_len = lines[idx].len() + 1;
                let fresh = Self::fresh_line(&mut rng, h, idx);
                if insert_here {
                    // Contiguous insertion block: one hunk in the diff.
                    lines.insert(idx, fresh);
                } else {
                    lines[idx] = fresh;
                }
                idx += 1;
                consumed += line_len;
            }
        }
        Document::from_lines(
            lines
                .into_iter()
                .map(shadow_diff::Line::new)
                .collect(),
        )
        .to_bytes()
    }

    fn fresh_line(rng: &mut StdRng, hunk: usize, idx: usize) -> Vec<u8> {
        format!(
            "edit-{hunk:02}-{idx:06} {:9.4} {:9.4} {:9.4} flag={} site={:03}",
            rng.gen_range(-999.0..999.0f64),
            rng.gen_range(-999.0..999.0f64),
            rng.gen_range(-999.0..999.0f64),
            if rng.gen_bool(0.5) { 'T' } else { 'F' },
            rng.gen_range(0..1000),
        )
        .into_bytes()
    }
}

/// Measures how many wire bytes an ed-script delta for this edit costs —
/// the quantity that replaces the full file size under shadow processing.
pub fn delta_cost(old: &[u8], new: &[u8]) -> usize {
    let script = diff(
        DiffAlgorithm::HuntMcIlroy,
        &Document::from_bytes(old.to_vec()),
        &Document::from_bytes(new.to_vec()),
    );
    script.wire_len()
}

/// Drives `sessions` successive editing sessions from `initial`, returning
/// every version (index 0 = initial).
pub fn edit_sequence(
    initial: &[u8],
    fraction: f64,
    sessions: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    let mut versions = vec![initial.to_vec()];
    for s in 0..sessions {
        let model = EditModel::fraction(fraction, seed.wrapping_add(s as u64 + 1));
        let next = model.apply(versions.last().expect("non-empty"));
        versions.push(next);
    }
    versions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_files_hit_target_size() {
        for &size in &[1_000usize, 10_000, 100_000] {
            let f = generate_file(&FileSpec::new(size, 1));
            assert_eq!(f.len(), size);
            assert_eq!(*f.last().unwrap(), b'\n');
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_file(&FileSpec::new(5_000, 7));
        let b = generate_file(&FileSpec::new(5_000, 7));
        let c = generate_file(&FileSpec::new(5_000, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_files_are_line_structured() {
        let f = generate_file(&FileSpec::new(10_000, 1));
        let lines = f.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count();
        // ~55 bytes per line.
        assert!((150..250).contains(&lines), "{lines} lines");
    }

    #[test]
    fn edit_fraction_controls_delta_size() {
        let base = generate_file(&FileSpec::new(100_000, 3));
        let mut last = 0usize;
        for &fraction in &[0.01, 0.05, 0.20, 0.50] {
            let edited = EditModel::fraction(fraction, 11).apply(&base);
            let cost = delta_cost(&base, &edited);
            assert!(cost > last, "delta cost must grow with fraction");
            last = cost;
            // The delta should be in the same ballpark as the requested
            // fraction (within 3x, including script framing).
            let expected = (base.len() as f64 * fraction) as usize;
            assert!(
                cost < expected * 3 + 400,
                "fraction {fraction}: cost {cost} vs expected ~{expected}"
            );
            assert!(
                cost > expected / 3,
                "fraction {fraction}: cost {cost} vs expected ~{expected}"
            );
        }
    }

    #[test]
    fn edits_are_deterministic_per_seed() {
        let base = generate_file(&FileSpec::new(20_000, 3));
        let a = EditModel::fraction(0.1, 5).apply(&base);
        let b = EditModel::fraction(0.1, 5).apply(&base);
        let c = EditModel::fraction(0.1, 6).apply(&base);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_fraction_changes_nothing() {
        let base = generate_file(&FileSpec::new(1_000, 3));
        let model = EditModel {
            fraction: 0.0,
            locality: Locality::Clustered,
            insert_bias: 0.0,
            seed: 1,
        };
        assert_eq!(model.apply(&base), base);
    }

    #[test]
    fn clustered_edits_make_fewer_hunks_than_scattered() {
        let base = generate_file(&FileSpec::new(50_000, 3));
        let scattered = EditModel::fraction(0.10, 9).apply(&base);
        let clustered = EditModel::fraction(0.10, 9)
            .with_locality(Locality::Clustered)
            .apply(&base);
        let hunk_count = |new: &[u8]| {
            diff(
                DiffAlgorithm::HuntMcIlroy,
                &Document::from_bytes(base.clone()),
                &Document::from_bytes(new.to_vec()),
            )
            .stats()
            .hunks
        };
        assert!(hunk_count(&clustered) <= hunk_count(&scattered));
    }

    #[test]
    fn edit_sequence_produces_distinct_versions() {
        let base = generate_file(&FileSpec::new(10_000, 3));
        let versions = edit_sequence(&base, 0.05, 4, 99);
        assert_eq!(versions.len(), 5);
        for w in versions.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn empty_content_is_preserved() {
        assert!(EditModel::fraction(0.5, 1).apply(b"").is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn out_of_range_fraction_rejected() {
        let _ = EditModel::fraction(1.5, 1);
    }
}
