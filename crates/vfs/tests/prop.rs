//! Property tests for name resolution: canonical identity is stable under
//! aliasing, and resolution is idempotent.

use proptest::prelude::*;
use shadow_proto::DomainId;
use shadow_vfs::{Vfs, VPath};

fn arb_segment() -> impl Strategy<Value = String> {
    "[a-d]{1,3}".prop_map(|s| s)
}

fn arb_abs_path() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_segment(), 1..4).prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vpath_parse_display_round_trips(path in arb_abs_path()) {
        let p = VPath::parse(&path).unwrap();
        let again = VPath::parse(&p.to_string()).unwrap();
        prop_assert_eq!(p, again);
    }

    #[test]
    fn vpath_normalization_is_idempotent(raw in "(/([a-c.]{1,3}))*/?") {
        let raw = if raw.starts_with('/') { raw } else { format!("/{raw}") };
        if let Ok(p) = VPath::parse(&raw) {
            prop_assert_eq!(VPath::parse(&p.to_string()).unwrap(), p);
        }
    }

    #[test]
    fn resolution_is_idempotent(
        path in arb_abs_path(),
        content in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut vfs = Vfs::new(DomainId::new(1));
        vfs.add_host("h").unwrap();
        if let Some(parent) = VPath::parse(&path).unwrap().parent() {
            vfs.mkdir_p("h", &parent.to_string()).unwrap();
        }
        // Creating the file may fail if a prefix got created as a file by
        // an earlier segment name collision — skip those cases.
        if vfs.write_file("h", &path, content.clone()).is_ok() {
            let first = vfs.resolve("h", &path).unwrap();
            // Resolving the canonical name again yields itself.
            let again = vfs.resolve(first.host.as_str(), &first.path.to_string()).unwrap();
            prop_assert_eq!(first, again);
            prop_assert_eq!(vfs.read_file("h", &path).unwrap(), content);
        }
    }

    #[test]
    fn mounted_and_direct_views_always_agree(
        rel in arb_segment(),
        content in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut vfs = Vfs::new(DomainId::new(1));
        vfs.add_host("server").unwrap();
        vfs.add_host("ws1").unwrap();
        vfs.add_host("ws2").unwrap();
        vfs.mkdir_p("server", "/export").unwrap();
        vfs.mount("ws1", "/n1", "server", "/export").unwrap();
        vfs.mount("ws2", "/deeply/nested/n2", "server", "/export").unwrap();

        let direct = format!("/export/{rel}");
        let via1 = format!("/n1/{rel}");
        let via2 = format!("/deeply/nested/n2/{rel}");
        vfs.write_file("ws1", &via1, content.clone()).unwrap();

        let a = vfs.resolve("server", &direct).unwrap();
        let b = vfs.resolve("ws1", &via1).unwrap();
        let c = vfs.resolve("ws2", &via2).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(vfs.read_file("ws2", &via2).unwrap(), content);
    }

    #[test]
    fn symlink_alias_never_changes_identity(
        target_name in arb_segment(),
        link_name in arb_segment(),
        content in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assume!(target_name != link_name);
        let mut vfs = Vfs::new(DomainId::new(1));
        vfs.add_host("h").unwrap();
        let target = format!("/{target_name}");
        let link = format!("/{link_name}");
        vfs.write_file("h", &target, content).unwrap();
        vfs.symlink("h", &link, &target).unwrap();
        prop_assert_eq!(
            vfs.resolve("h", &link).unwrap(),
            vfs.resolve("h", &target).unwrap()
        );
    }
}
