//! The multi-host cluster: mounts and the name-resolution algorithm.

use std::collections::{BTreeMap, VecDeque};

use shadow_proto::{ContentDigest, DomainId, FileId, FileKey, HostName};

use crate::hostfs::{HostFs, NodeId, NodeKind};
use crate::{VPath, VfsError};

/// Budget for symlink expansions during one resolution (cycle guard).
const SYMLINK_BUDGET: usize = 64;
/// Budget for mount crossings during one resolution (cycle guard; NFS
/// forbids circular mounts, but misconfiguration must not hang us).
const MOUNT_BUDGET: usize = 32;

/// An NFS-style mount: a local directory backed by a directory exported by
/// another host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MountEntry {
    /// The exporting host.
    pub remote_host: HostName,
    /// The exported directory on that host.
    pub remote_path: VPath,
}

/// What kind of node a path names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeType {
    /// A regular file.
    File,
    /// A directory.
    Directory,
    /// A symbolic link (only reported by [`Vfs::stat_no_follow`]).
    Symlink,
}

/// Metadata for a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStat {
    /// The node's type.
    pub node_type: NodeType,
    /// Content size in bytes (0 for directories).
    pub size: u64,
    /// Number of hard links.
    pub nlink: usize,
}

/// The result of name resolution (§6.5): the globally unique identity of a
/// file, independent of which alias or mount the user named it through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalName {
    /// The naming domain of the cluster.
    pub domain: DomainId,
    /// The host that physically owns the node.
    pub host: HostName,
    /// The node's basic (primary) path on that host.
    pub path: VPath,
    /// The derived domain-unique file identifier.
    pub file_id: FileId,
}

impl CanonicalName {
    /// The `(domain id, file id)` pair presented to shadow servers.
    pub fn key(&self) -> FileKey {
        FileKey::new(self.domain, self.file_id)
    }
}

/// A cluster of hosts forming one naming domain (e.g. one NFS site).
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Vfs {
    domain: DomainId,
    hosts: BTreeMap<String, HostFs>,
    /// Per host: mount point → mount entry. Longest-prefix semantics arise
    /// naturally because resolution checks each walked prefix.
    mounts: BTreeMap<String, BTreeMap<VPath, MountEntry>>,
}

impl Vfs {
    /// Creates an empty cluster belonging to `domain`.
    pub fn new(domain: DomainId) -> Self {
        Vfs {
            domain,
            hosts: BTreeMap::new(),
            mounts: BTreeMap::new(),
        }
    }

    /// The cluster's naming domain.
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Adds a host with an empty root directory.
    ///
    /// # Errors
    ///
    /// [`VfsError::HostExists`] if the name is taken.
    pub fn add_host(&mut self, name: &str) -> Result<(), VfsError> {
        if self.hosts.contains_key(name) {
            return Err(VfsError::HostExists {
                host: name.to_string(),
            });
        }
        self.hosts.insert(name.to_string(), HostFs::new(name));
        self.mounts.insert(name.to_string(), BTreeMap::new());
        Ok(())
    }

    /// The hosts in this cluster, sorted by name.
    pub fn host_names(&self) -> Vec<&str> {
        self.hosts.keys().map(String::as_str).collect()
    }

    fn host(&self, name: &str) -> Result<&HostFs, VfsError> {
        self.hosts.get(name).ok_or_else(|| VfsError::UnknownHost {
            host: name.to_string(),
        })
    }

    fn host_mut(&mut self, name: &str) -> Result<&mut HostFs, VfsError> {
        self.hosts
            .get_mut(name)
            .ok_or_else(|| VfsError::UnknownHost {
                host: name.to_string(),
            })
    }

    /// Mounts `remote_host:remote_path` (which must be an existing
    /// directory) at `host:mount_point`. The mount point directory is
    /// created locally if missing, exactly like a real mount stub.
    ///
    /// # Errors
    ///
    /// Fails when either host is unknown, the remote path is not a
    /// directory, or the mount point is the root.
    pub fn mount(
        &mut self,
        host: &str,
        mount_point: &str,
        remote_host: &str,
        remote_path: &str,
    ) -> Result<(), VfsError> {
        let mount_point = VPath::parse(mount_point)?;
        let remote_path = VPath::parse(remote_path)?;
        if mount_point.is_root() {
            return Err(VfsError::InvalidPath {
                path: "/".into(),
                reason: "cannot mount over the root directory",
            });
        }
        self.host(host)?;
        // The exported directory must exist and be a directory.
        let (owner, node, _) = self.resolve_node(remote_host, &remote_path)?;
        let owner_fs = self.host(&owner)?;
        if !matches!(owner_fs.node(node).kind, NodeKind::Dir(_)) {
            return Err(VfsError::NotADirectory {
                host: owner,
                path: remote_path.to_string(),
            });
        }
        self.host_mut(host)?.mkdir_p(&mount_point)?;
        self.mounts.get_mut(host).expect("host verified").insert(
            mount_point,
            MountEntry {
                remote_host: HostName::new(remote_host),
                remote_path,
            },
        );
        Ok(())
    }

    /// The mount table of a host.
    ///
    /// # Errors
    ///
    /// [`VfsError::UnknownHost`] for unknown hosts.
    pub fn mount_table(&self, host: &str) -> Result<Vec<(VPath, MountEntry)>, VfsError> {
        self.host(host)?;
        Ok(self.mounts[host]
            .iter()
            .map(|(p, m)| (p.clone(), m.clone()))
            .collect())
    }

    /// Core walk: follows directories, symbolic links and mounts, returning
    /// `(owning host, node, physical path on that host)`.
    fn resolve_node(
        &self,
        start_host: &str,
        path: &VPath,
    ) -> Result<(String, NodeId, VPath), VfsError> {
        let mut host = self.host(start_host)?.name.clone();
        let mut remaining: VecDeque<String> = path.segments().to_vec().into();
        let mut cur = self.host(&host)?.root();
        let mut cur_path = VPath::root();
        let mut sym_budget = SYMLINK_BUDGET;
        let mut mount_budget = MOUNT_BUDGET;

        while let Some(seg) = remaining.pop_front() {
            let candidate = cur_path.child(&seg);
            // A mount shadows local content at its mount point; the paper's
            // algorithm: "if any prefix of the path name belongs to a
            // mounted file system, consult the NFS mount table to resolve
            // that prefix further on the host that exported it".
            if let Some(entry) = self.mounts[&host].get(&candidate) {
                if mount_budget == 0 {
                    return Err(VfsError::MountLoop {
                        path: path.to_string(),
                    });
                }
                mount_budget -= 1;
                for seg in entry.remote_path.segments().iter().rev() {
                    remaining.push_front(seg.clone());
                }
                host = self.host(entry.remote_host.as_str())?.name.clone();
                cur = self.host(&host)?.root();
                cur_path = VPath::root();
                continue;
            }

            let fs = self.host(&host)?;
            let next = match &fs.node(cur).kind {
                NodeKind::Dir(_) => {
                    fs.lookup(cur, &seg).ok_or_else(|| VfsError::NotFound {
                        host: host.clone(),
                        path: candidate.to_string(),
                    })?
                }
                _ => {
                    return Err(VfsError::NotADirectory {
                        host: host.clone(),
                        path: cur_path.to_string(),
                    })
                }
            };
            match &fs.node(next).kind {
                NodeKind::Symlink(target) => {
                    if sym_budget == 0 {
                        return Err(VfsError::SymlinkLoop {
                            path: path.to_string(),
                        });
                    }
                    sym_budget -= 1;
                    let target = VPath::parse(target)?;
                    for seg in target.segments().iter().rev() {
                        remaining.push_front(seg.clone());
                    }
                    cur = fs.root();
                    cur_path = VPath::root();
                }
                _ => {
                    cur = next;
                    cur_path = candidate;
                }
            }
        }
        Ok((host, cur, cur_path))
    }

    /// Resolves a user-visible name to its unique [`CanonicalName`]
    /// (§6.5): aliases collapse via the file's primary path, symlinks are
    /// followed, and mounted prefixes are resolved on the exporting host.
    ///
    /// # Errors
    ///
    /// Any walk failure: unknown host, missing entries, loops.
    pub fn resolve(&self, host: &str, path: &str) -> Result<CanonicalName, VfsError> {
        let path = VPath::parse(path)?;
        let (owner, node, physical) = self.resolve_node(host, &path)?;
        let fs = self.host(&owner)?;
        let canonical_path = match &fs.node(node).kind {
            NodeKind::File(f) => f.primary_path.clone(),
            _ => physical,
        };
        let digest =
            ContentDigest::of(format!("{owner}\u{0}{canonical_path}").as_bytes());
        Ok(CanonicalName {
            domain: self.domain,
            host: HostName::new(owner),
            path: canonical_path,
            file_id: FileId::new(digest.as_u64()),
        })
    }

    /// Creates every missing directory along `path`, crossing mounts.
    ///
    /// # Errors
    ///
    /// Fails when a non-directory blocks the way or the host is unknown.
    pub fn mkdir_p(&mut self, host: &str, path: &str) -> Result<(), VfsError> {
        let path = VPath::parse(path)?;
        // Fast path: the whole path exists.
        if self.resolve_node(host, &path).is_ok() {
            let (owner, node, physical) = self.resolve_node(host, &path)?;
            return match self.host(&owner)?.node(node).kind {
                NodeKind::Dir(_) => Ok(()),
                _ => Err(VfsError::NotADirectory {
                    host: owner,
                    path: physical.to_string(),
                }),
            };
        }
        // Walk down, creating from the deepest existing ancestor. Resolving
        // the parent handles mounts/symlinks; creation is then local to the
        // owning host.
        for depth in 0..path.depth() {
            let prefix = VPath::from_segments(path.segments()[..=depth].to_vec());
            if self.resolve_node(host, &prefix).is_ok() {
                continue;
            }
            let parent = prefix.parent().unwrap_or_else(VPath::root);
            let (owner, parent_node, parent_physical) = self.resolve_node(host, &parent)?;
            let name = prefix.file_name().expect("non-root prefix");
            let fs = self.host_mut(&owner)?;
            let dir = fs.mkdir_p(&parent_physical.child(name))?;
            let _ = (parent_node, dir);
        }
        Ok(())
    }

    /// Writes (creates or replaces) a regular file's content.
    ///
    /// Follows symlinks on the final component like POSIX `open(O_CREAT)`.
    ///
    /// # Errors
    ///
    /// Fails when the parent directory is missing, the path names a
    /// directory, or the host is unknown.
    pub fn write_file(
        &mut self,
        host: &str,
        path: &str,
        content: Vec<u8>,
    ) -> Result<CanonicalName, VfsError> {
        self.write_file_depth(host, &VPath::parse(path)?, content, 16)
    }

    fn write_file_depth(
        &mut self,
        host: &str,
        path: &VPath,
        content: Vec<u8>,
        depth: usize,
    ) -> Result<CanonicalName, VfsError> {
        if depth == 0 {
            return Err(VfsError::SymlinkLoop {
                path: path.to_string(),
            });
        }
        match self.resolve_node(host, path) {
            Ok((owner, node, physical)) => {
                let fs = self.host_mut(&owner)?;
                match &mut fs.node_mut(node).kind {
                    NodeKind::File(f) => {
                        f.content = content;
                        self.resolve(host, &path.to_string())
                    }
                    _ => Err(VfsError::IsADirectory {
                        host: owner,
                        path: physical.to_string(),
                    }),
                }
            }
            Err(VfsError::NotFound { .. }) => {
                let parent = path.parent().ok_or(VfsError::IsADirectory {
                    host: host.to_string(),
                    path: "/".into(),
                })?;
                let name = path.file_name().expect("non-root").to_string();
                let (owner, dir_node, dir_physical) = self.resolve_node(host, &parent)?;
                // The final component may be a dangling symlink: follow it.
                let fs = self.host(&owner)?;
                if let Some(existing) = fs.lookup(dir_node, &name) {
                    if let NodeKind::Symlink(target) = &fs.node(existing).kind {
                        let target = VPath::parse(target)?;
                        let owner = owner.clone();
                        return self.write_file_depth(&owner, &target, content, depth - 1);
                    }
                }
                let full_physical = dir_physical.child(&name);
                if self.mounts[&owner].contains_key(&full_physical) {
                    return Err(VfsError::IsADirectory {
                        host: owner,
                        path: full_physical.to_string(),
                    });
                }
                let fs = self.host_mut(&owner)?;
                let file = fs.create_file(full_physical, content);
                fs.link_into(dir_node, &name, file)?;
                self.resolve(host, &path.to_string())
            }
            Err(e) => Err(e),
        }
    }

    /// Reads a regular file's content.
    ///
    /// # Errors
    ///
    /// Fails when the path is missing or names a directory.
    pub fn read_file(&self, host: &str, path: &str) -> Result<Vec<u8>, VfsError> {
        let vpath = VPath::parse(path)?;
        let (owner, node, physical) = self.resolve_node(host, &vpath)?;
        match &self.host(&owner)?.node(node).kind {
            NodeKind::File(f) => Ok(f.content.clone()),
            _ => Err(VfsError::IsADirectory {
                host: owner,
                path: physical.to_string(),
            }),
        }
    }

    /// Creates a symbolic link at `link_path` pointing to the **absolute**
    /// path `target` (relative targets are not supported by this model).
    ///
    /// # Errors
    ///
    /// Fails when the link's parent is missing, the name is taken, or
    /// `target` is not absolute.
    pub fn symlink(&mut self, host: &str, link_path: &str, target: &str) -> Result<(), VfsError> {
        if !target.starts_with('/') {
            return Err(VfsError::InvalidPath {
                path: target.to_string(),
                reason: "symlink targets must be absolute",
            });
        }
        let link = VPath::parse(link_path)?;
        let parent = link.parent().ok_or(VfsError::AlreadyExists {
            host: host.to_string(),
            path: "/".into(),
        })?;
        let name = link.file_name().expect("non-root").to_string();
        let (owner, dir_node, _) = self.resolve_node(host, &parent)?;
        let fs = self.host_mut(&owner)?;
        let node = fs.create_symlink(target.to_string());
        fs.link_into(dir_node, &name, node)
    }

    /// Creates a hard link `new_path` to the existing file `existing_path`.
    /// Both must resolve to the same physical host (no cross-device links).
    ///
    /// # Errors
    ///
    /// Fails with [`VfsError::CrossDevice`] when the link would span hosts,
    /// and with the usual walk errors otherwise.
    pub fn hard_link(
        &mut self,
        host: &str,
        existing_path: &str,
        new_path: &str,
    ) -> Result<(), VfsError> {
        let existing = VPath::parse(existing_path)?;
        let new = VPath::parse(new_path)?;
        let (owner, file_node, physical) = self.resolve_node(host, &existing)?;
        if !matches!(self.host(&owner)?.node(file_node).kind, NodeKind::File(_)) {
            return Err(VfsError::IsADirectory {
                host: owner,
                path: physical.to_string(),
            });
        }
        let parent = new.parent().ok_or(VfsError::AlreadyExists {
            host: host.to_string(),
            path: "/".into(),
        })?;
        let name = new.file_name().expect("non-root").to_string();
        let (new_owner, dir_node, _) = self.resolve_node(host, &parent)?;
        if new_owner != owner {
            return Err(VfsError::CrossDevice {
                operation: "hard link across hosts",
            });
        }
        self.host_mut(&owner)?.link_into(dir_node, &name, file_node)
    }

    /// Removes the directory entry at `path` (without following a final
    /// symlink). The file node survives while other hard links exist.
    ///
    /// # Errors
    ///
    /// Fails when the entry or its parent is missing.
    pub fn unlink(&mut self, host: &str, path: &str) -> Result<(), VfsError> {
        let vpath = VPath::parse(path)?;
        let parent = vpath.parent().ok_or(VfsError::NotFound {
            host: host.to_string(),
            path: "/".into(),
        })?;
        let name = vpath.file_name().expect("non-root").to_string();
        let (owner, dir_node, _) = self.resolve_node(host, &parent)?;
        self.host_mut(&owner)?.unlink_from(dir_node, &name)?;
        Ok(())
    }


    /// Renames (moves) an entry within the cluster. Both paths resolve
    /// through mounts; source and destination must land on the same host
    /// (no cross-device rename, like POSIX `rename(2)`). The final
    /// component of `from` is not followed if it is a symlink (the link
    /// itself moves).
    ///
    /// A rename changes the name but **not** the node: a renamed file's
    /// canonical identity follows its primary path only if the primary
    /// name itself was the one renamed — mirroring the editor-with-
    /// rename-over caveat real systems have. The primary path is updated
    /// when the renamed name was the primary.
    ///
    /// # Errors
    ///
    /// The usual walk errors, plus [`VfsError::CrossDevice`] and
    /// [`VfsError::AlreadyExists`].
    pub fn rename(&mut self, host: &str, from: &str, to: &str) -> Result<(), VfsError> {
        let from = VPath::parse(from)?;
        let to = VPath::parse(to)?;
        let from_parent = from.parent().ok_or(VfsError::NotFound {
            host: host.to_string(),
            path: "/".into(),
        })?;
        let to_parent = to.parent().ok_or(VfsError::AlreadyExists {
            host: host.to_string(),
            path: "/".into(),
        })?;
        let from_name = from.file_name().expect("non-root").to_string();
        let to_name = to.file_name().expect("non-root").to_string();
        let (from_owner, from_dir, from_dir_physical) = self.resolve_node(host, &from_parent)?;
        let (to_owner, to_dir, to_dir_physical) = self.resolve_node(host, &to_parent)?;
        if from_owner != to_owner {
            return Err(VfsError::CrossDevice {
                operation: "rename across hosts",
            });
        }
        // Destination must be free.
        let fs = self.host(&from_owner)?;
        if fs.lookup(to_dir, &to_name).is_some() {
            return Err(VfsError::AlreadyExists {
                host: to_owner,
                path: to_dir_physical.child(&to_name).to_string(),
            });
        }
        let fs = self.host_mut(&from_owner)?;
        let node = fs.unlink_from(from_dir, &from_name)?;
        fs.link_into(to_dir, &to_name, node)?;
        // Keep canonical identity coherent when the primary name moved.
        let old_primary = from_dir_physical.child(&from_name);
        if let NodeKind::File(f) = &mut fs.node_mut(node).kind {
            if f.primary_path == old_primary {
                f.primary_path = to_dir_physical.child(&to_name);
            }
        }
        Ok(())
    }

    /// Stats a node, following symlinks.
    ///
    /// # Errors
    ///
    /// The usual walk errors.
    pub fn stat(&self, host: &str, path: &str) -> Result<NodeStat, VfsError> {
        let vpath = VPath::parse(path)?;
        let (owner, node, _) = self.resolve_node(host, &vpath)?;
        let n = self.host(&owner)?.node(node);
        Ok(match &n.kind {
            NodeKind::File(f) => NodeStat {
                node_type: NodeType::File,
                size: f.content.len() as u64,
                nlink: n.nlink,
            },
            NodeKind::Dir(_) => NodeStat {
                node_type: NodeType::Directory,
                size: 0,
                nlink: n.nlink,
            },
            NodeKind::Symlink(_) => unreachable!("resolve_node follows symlinks"),
        })
    }

    /// Stats the entry itself (a final symlink is reported as a symlink).
    ///
    /// # Errors
    ///
    /// The usual walk errors.
    pub fn stat_no_follow(&self, host: &str, path: &str) -> Result<NodeStat, VfsError> {
        let vpath = VPath::parse(path)?;
        let Some(parent) = vpath.parent() else {
            return self.stat(host, path);
        };
        let name = vpath.file_name().expect("non-root");
        let (owner, dir_node, _) = self.resolve_node(host, &parent)?;
        let fs = self.host(&owner)?;
        let node_id = fs.lookup(dir_node, name).ok_or_else(|| VfsError::NotFound {
            host: owner.clone(),
            path: vpath.to_string(),
        })?;
        let n = fs.node(node_id);
        Ok(match &n.kind {
            NodeKind::File(f) => NodeStat {
                node_type: NodeType::File,
                size: f.content.len() as u64,
                nlink: n.nlink,
            },
            NodeKind::Dir(_) => NodeStat {
                node_type: NodeType::Directory,
                size: 0,
                nlink: n.nlink,
            },
            NodeKind::Symlink(t) => NodeStat {
                node_type: NodeType::Symlink,
                size: t.len() as u64,
                nlink: n.nlink,
            },
        })
    }

    /// Lists a directory's entry names, sorted.
    ///
    /// # Errors
    ///
    /// Fails when the path is not a directory.
    pub fn list_dir(&self, host: &str, path: &str) -> Result<Vec<String>, VfsError> {
        let vpath = VPath::parse(path)?;
        let (owner, node, physical) = self.resolve_node(host, &vpath)?;
        match &self.host(&owner)?.node(node).kind {
            NodeKind::Dir(entries) => Ok(entries.keys().cloned().collect()),
            _ => Err(VfsError::NotADirectory {
                host: owner,
                path: physical.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vfs {
        let mut vfs = Vfs::new(DomainId::new(7));
        for h in ["a", "b", "c"] {
            vfs.add_host(h).unwrap();
        }
        vfs
    }

    #[test]
    fn basic_write_read() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/home/user").unwrap();
        vfs.write_file("a", "/home/user/f.txt", b"hello".to_vec())
            .unwrap();
        assert_eq!(vfs.read_file("a", "/home/user/f.txt").unwrap(), b"hello");
        let stat = vfs.stat("a", "/home/user/f.txt").unwrap();
        assert_eq!(stat.node_type, NodeType::File);
        assert_eq!(stat.size, 5);
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut vfs = cluster();
        vfs.write_file("a", "/f", b"one".to_vec()).unwrap();
        vfs.write_file("a", "/f", b"two".to_vec()).unwrap();
        assert_eq!(vfs.read_file("a", "/f").unwrap(), b"two");
    }

    #[test]
    fn paper_nfs_example_single_cached_identity() {
        // §5.3: machine C exports /usr; A mounts it as /projl, B as
        // /others; /projl/foo on A and /others/foo on B are the same file.
        let mut vfs = cluster();
        vfs.mkdir_p("c", "/usr").unwrap();
        vfs.write_file("c", "/usr/foo", b"fortran".to_vec()).unwrap();
        vfs.mount("a", "/projl", "c", "/usr").unwrap();
        vfs.mount("b", "/others", "c", "/usr").unwrap();

        let on_a = vfs.resolve("a", "/projl/foo").unwrap();
        let on_b = vfs.resolve("b", "/others/foo").unwrap();
        let on_c = vfs.resolve("c", "/usr/foo").unwrap();
        assert_eq!(on_a, on_b);
        assert_eq!(on_a, on_c);
        assert_eq!(on_a.host, HostName::new("c"));
        assert_eq!(on_a.path.to_string(), "/usr/foo");

        // Writes through one view are visible through the other.
        vfs.write_file("a", "/projl/foo", b"edited".to_vec()).unwrap();
        assert_eq!(vfs.read_file("b", "/others/foo").unwrap(), b"edited");
    }

    #[test]
    fn nested_mounts_resolve_iteratively() {
        // a mounts b:/mid at /m1; b mounts c:/deep at /mid/inner.
        let mut vfs = cluster();
        vfs.mkdir_p("c", "/deep").unwrap();
        vfs.write_file("c", "/deep/file", b"x".to_vec()).unwrap();
        vfs.mkdir_p("b", "/mid").unwrap();
        vfs.mount("b", "/mid/inner", "c", "/deep").unwrap();
        vfs.mount("a", "/m1", "b", "/mid").unwrap();

        let resolved = vfs.resolve("a", "/m1/inner/file").unwrap();
        assert_eq!(resolved.host, HostName::new("c"));
        assert_eq!(resolved.path.to_string(), "/deep/file");
        assert_eq!(vfs.read_file("a", "/m1/inner/file").unwrap(), b"x");
    }

    #[test]
    fn symlinks_resolve_to_target_identity() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/data").unwrap();
        vfs.write_file("a", "/data/real.txt", b"r".to_vec()).unwrap();
        vfs.symlink("a", "/alias", "/data/real.txt").unwrap();
        assert_eq!(
            vfs.resolve("a", "/alias").unwrap(),
            vfs.resolve("a", "/data/real.txt").unwrap()
        );
        assert_eq!(vfs.read_file("a", "/alias").unwrap(), b"r");
        assert_eq!(
            vfs.stat_no_follow("a", "/alias").unwrap().node_type,
            NodeType::Symlink
        );
    }

    #[test]
    fn symlink_chains_and_directory_symlinks() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/x/y").unwrap();
        vfs.write_file("a", "/x/y/f", b"f".to_vec()).unwrap();
        vfs.symlink("a", "/link1", "/link2").unwrap();
        vfs.symlink("a", "/link2", "/x").unwrap();
        assert_eq!(vfs.read_file("a", "/link1/y/f").unwrap(), b"f");
    }

    #[test]
    fn symlink_loops_are_detected() {
        let mut vfs = cluster();
        vfs.symlink("a", "/p", "/q").unwrap();
        vfs.symlink("a", "/q", "/p").unwrap();
        assert!(matches!(
            vfs.resolve("a", "/p"),
            Err(VfsError::SymlinkLoop { .. })
        ));
    }

    #[test]
    fn hard_links_share_canonical_identity() {
        let mut vfs = cluster();
        vfs.write_file("a", "/orig", b"1".to_vec()).unwrap();
        vfs.hard_link("a", "/orig", "/alias").unwrap();
        let orig = vfs.resolve("a", "/orig").unwrap();
        let alias = vfs.resolve("a", "/alias").unwrap();
        assert_eq!(orig.file_id, alias.file_id);
        assert_eq!(alias.path.to_string(), "/orig"); // the basic name
        vfs.write_file("a", "/alias", b"2".to_vec()).unwrap();
        assert_eq!(vfs.read_file("a", "/orig").unwrap(), b"2");
    }

    #[test]
    fn hard_link_survives_unlink_of_primary() {
        let mut vfs = cluster();
        vfs.write_file("a", "/orig", b"1".to_vec()).unwrap();
        vfs.hard_link("a", "/orig", "/alias").unwrap();
        vfs.unlink("a", "/orig").unwrap();
        assert!(vfs.read_file("a", "/orig").is_err());
        assert_eq!(vfs.read_file("a", "/alias").unwrap(), b"1");
    }

    #[test]
    fn cross_host_hard_link_rejected() {
        let mut vfs = cluster();
        vfs.mkdir_p("c", "/usr").unwrap();
        vfs.write_file("c", "/usr/f", b"x".to_vec()).unwrap();
        vfs.mount("a", "/mnt", "c", "/usr").unwrap();
        // Link target resolves to host c; link parent is local to a.
        assert!(matches!(
            vfs.hard_link("a", "/mnt/f", "/local-link"),
            Err(VfsError::CrossDevice { .. })
        ));
        // Within the mount, both sides live on c — allowed.
        vfs.hard_link("a", "/mnt/f", "/mnt/g").unwrap();
        assert_eq!(vfs.read_file("c", "/usr/g").unwrap(), b"x");
    }

    #[test]
    fn writes_create_through_mounts() {
        let mut vfs = cluster();
        vfs.mkdir_p("c", "/export").unwrap();
        vfs.mount("a", "/remote", "c", "/export").unwrap();
        vfs.write_file("a", "/remote/new.txt", b"n".to_vec()).unwrap();
        assert_eq!(vfs.read_file("c", "/export/new.txt").unwrap(), b"n");
        // Canonical identity names the exporting host.
        let r = vfs.resolve("a", "/remote/new.txt").unwrap();
        assert_eq!(r.host, HostName::new("c"));
        assert_eq!(r.path.to_string(), "/export/new.txt");
    }

    #[test]
    fn mkdir_p_through_mounts() {
        let mut vfs = cluster();
        vfs.mkdir_p("c", "/export").unwrap();
        vfs.mount("a", "/remote", "c", "/export").unwrap();
        vfs.mkdir_p("a", "/remote/a/b/c").unwrap();
        assert_eq!(
            vfs.stat("c", "/export/a/b/c").unwrap().node_type,
            NodeType::Directory
        );
    }

    #[test]
    fn mount_shadows_local_content() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/mnt").unwrap();
        vfs.write_file("a", "/mnt/local", b"local".to_vec()).unwrap();
        vfs.mkdir_p("c", "/exp").unwrap();
        vfs.write_file("c", "/exp/remote", b"remote".to_vec()).unwrap();
        vfs.mount("a", "/mnt", "c", "/exp").unwrap();
        assert!(vfs.read_file("a", "/mnt/local").is_err());
        assert_eq!(vfs.read_file("a", "/mnt/remote").unwrap(), b"remote");
    }

    #[test]
    fn mount_cycles_bounded() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/xa").unwrap();
        vfs.mkdir_p("b", "/xb").unwrap();
        vfs.mount("a", "/xa/m", "b", "/xb").unwrap();
        vfs.mount("b", "/xb/m", "a", "/xa").unwrap();
        let deep = "/xa/m".to_string() + &"/m".repeat(64) + "/f";
        assert!(matches!(
            vfs.resolve("a", &deep),
            Err(VfsError::MountLoop { .. })
        ));
    }

    #[test]
    fn unknown_host_and_missing_paths_error() {
        let vfs = cluster();
        assert!(matches!(
            vfs.resolve("nope", "/f"),
            Err(VfsError::UnknownHost { .. })
        ));
        assert!(matches!(
            vfs.resolve("a", "/missing"),
            Err(VfsError::NotFound { .. })
        ));
    }

    #[test]
    fn write_over_directory_rejected() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/d").unwrap();
        assert!(matches!(
            vfs.write_file("a", "/d", b"x".to_vec()),
            Err(VfsError::IsADirectory { .. })
        ));
    }

    #[test]
    fn read_of_directory_rejected() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/d").unwrap();
        assert!(matches!(
            vfs.read_file("a", "/d"),
            Err(VfsError::IsADirectory { .. })
        ));
    }

    #[test]
    fn write_through_dangling_symlink_creates_target() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/real").unwrap();
        vfs.symlink("a", "/ln", "/real/file").unwrap();
        vfs.write_file("a", "/ln", b"created".to_vec()).unwrap();
        assert_eq!(vfs.read_file("a", "/real/file").unwrap(), b"created");
    }

    #[test]
    fn list_dir_sorted() {
        let mut vfs = cluster();
        vfs.write_file("a", "/zeta", vec![]).unwrap();
        vfs.write_file("a", "/alpha", vec![]).unwrap();
        assert_eq!(vfs.list_dir("a", "/").unwrap(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn dotdot_is_normalized_lexically() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/u/proj").unwrap();
        vfs.write_file("a", "/u/proj/f", b"x".to_vec()).unwrap();
        assert_eq!(vfs.read_file("a", "/u/other/../proj/f").unwrap(), b"x");
    }

    #[test]
    fn distinct_files_get_distinct_ids() {
        let mut vfs = cluster();
        let f1 = vfs.write_file("a", "/f1", b"".to_vec()).unwrap();
        let f2 = vfs.write_file("a", "/f2", b"".to_vec()).unwrap();
        let f1_on_b = {
            vfs.mkdir_p("b", "/").unwrap();
            vfs.write_file("b", "/f1", b"".to_vec()).unwrap()
        };
        assert_ne!(f1.file_id, f2.file_id);
        // Same path on a *different* host is a different file.
        assert_ne!(f1.file_id, f1_on_b.file_id);
        assert_eq!(f1.key().domain, DomainId::new(7));
    }


    #[test]
    fn rename_moves_files_and_updates_identity() {
        let mut vfs = cluster();
        vfs.mkdir_p("a", "/dir").unwrap();
        vfs.write_file("a", "/old", b"content".to_vec()).unwrap();
        vfs.rename("a", "/old", "/dir/new").unwrap();
        assert!(vfs.read_file("a", "/old").is_err());
        assert_eq!(vfs.read_file("a", "/dir/new").unwrap(), b"content");
        // Identity follows the (renamed) primary name.
        let r = vfs.resolve("a", "/dir/new").unwrap();
        assert_eq!(r.path.to_string(), "/dir/new");
    }

    #[test]
    fn rename_through_mounts_stays_on_exporting_host() {
        let mut vfs = cluster();
        vfs.mkdir_p("c", "/exp").unwrap();
        vfs.write_file("c", "/exp/f", b"x".to_vec()).unwrap();
        vfs.mount("a", "/m", "c", "/exp").unwrap();
        vfs.rename("a", "/m/f", "/m/g").unwrap();
        assert_eq!(vfs.read_file("c", "/exp/g").unwrap(), b"x");
        // Cross-host rename is refused.
        vfs.write_file("a", "/local", b"y".to_vec()).unwrap();
        assert!(matches!(
            vfs.rename("a", "/local", "/m/elsewhere"),
            Err(VfsError::CrossDevice { .. })
        ));
    }

    #[test]
    fn rename_refuses_to_clobber() {
        let mut vfs = cluster();
        vfs.write_file("a", "/one", b"1".to_vec()).unwrap();
        vfs.write_file("a", "/two", b"2".to_vec()).unwrap();
        assert!(matches!(
            vfs.rename("a", "/one", "/two"),
            Err(VfsError::AlreadyExists { .. })
        ));
        assert_eq!(vfs.read_file("a", "/two").unwrap(), b"2");
    }

    #[test]
    fn rename_preserves_hard_link_siblings() {
        let mut vfs = cluster();
        vfs.write_file("a", "/orig", b"shared".to_vec()).unwrap();
        vfs.hard_link("a", "/orig", "/alias").unwrap();
        vfs.rename("a", "/orig", "/moved").unwrap();
        // The alias still reads the same node; the primary moved with the
        // primary name.
        assert_eq!(vfs.read_file("a", "/alias").unwrap(), b"shared");
        assert_eq!(vfs.read_file("a", "/moved").unwrap(), b"shared");
        assert_eq!(
            vfs.resolve("a", "/alias").unwrap().path.to_string(),
            "/moved"
        );
    }

    #[test]
    fn mount_requires_existing_remote_directory() {
        let mut vfs = cluster();
        assert!(vfs.mount("a", "/m", "c", "/no-such").is_err());
        vfs.write_file("c", "/afile", b"x".to_vec()).unwrap();
        assert!(matches!(
            vfs.mount("a", "/m", "c", "/afile"),
            Err(VfsError::NotADirectory { .. })
        ));
        assert!(vfs.mount("a", "/", "c", "/").is_err());
    }
}
