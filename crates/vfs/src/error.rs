//! File-system errors.

use std::error::Error;
use std::fmt;

/// Error from a virtual file-system operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// A path string was malformed.
    InvalidPath {
        /// The offending path.
        path: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The named host is not part of this cluster.
    UnknownHost {
        /// The offending host name.
        host: String,
    },
    /// A host with that name already exists.
    HostExists {
        /// The duplicate name.
        host: String,
    },
    /// No entry at the path.
    NotFound {
        /// Host on which resolution failed.
        host: String,
        /// The path that failed.
        path: String,
    },
    /// A non-directory appeared where a directory was needed.
    NotADirectory {
        /// Host of the offending entry.
        host: String,
        /// Path of the offending entry.
        path: String,
    },
    /// A directory appeared where a file was needed.
    IsADirectory {
        /// Host of the offending entry.
        host: String,
        /// Path of the offending entry.
        path: String,
    },
    /// An entry already exists at the target path.
    AlreadyExists {
        /// Host of the offending entry.
        host: String,
        /// Path of the offending entry.
        path: String,
    },
    /// Symbolic-link expansion exceeded its budget (a cycle, most likely).
    SymlinkLoop {
        /// The original path being resolved.
        path: String,
    },
    /// Crossing mounts exceeded its budget (a mount cycle; NFS forbids
    /// these, but the resolver must not hang on misconfiguration).
    MountLoop {
        /// The original path being resolved.
        path: String,
    },
    /// A directory that is a mount point (or target) was required locally.
    CrossDevice {
        /// Description of the rejected operation.
        operation: &'static str,
    },
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::InvalidPath { path, reason } => {
                write!(f, "invalid path {path:?}: {reason}")
            }
            VfsError::UnknownHost { host } => write!(f, "unknown host {host:?}"),
            VfsError::HostExists { host } => write!(f, "host {host:?} already exists"),
            VfsError::NotFound { host, path } => {
                write!(f, "no such file or directory: {host}:{path}")
            }
            VfsError::NotADirectory { host, path } => {
                write!(f, "not a directory: {host}:{path}")
            }
            VfsError::IsADirectory { host, path } => {
                write!(f, "is a directory: {host}:{path}")
            }
            VfsError::AlreadyExists { host, path } => {
                write!(f, "file exists: {host}:{path}")
            }
            VfsError::SymlinkLoop { path } => {
                write!(f, "too many levels of symbolic links resolving {path:?}")
            }
            VfsError::MountLoop { path } => {
                write!(f, "too many mount crossings resolving {path:?}")
            }
            VfsError::CrossDevice { operation } => {
                write!(f, "operation crosses file systems: {operation}")
            }
        }
    }
}

impl Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = VfsError::NotFound {
            host: "a".into(),
            path: "/x".into(),
        };
        assert_eq!(e.to_string(), "no such file or directory: a:/x");
        assert!(VfsError::SymlinkLoop { path: "/l".into() }
            .to_string()
            .contains("symbolic links"));
    }
}
