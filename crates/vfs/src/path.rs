//! Normalized absolute paths.

use std::fmt;

use crate::VfsError;

/// A normalized absolute path: `/` followed by non-empty segments with no
/// `.` or `..` components (those are normalized away lexically on parse).
///
/// # Example
///
/// ```
/// use shadow_vfs::VPath;
///
/// # fn main() -> Result<(), shadow_vfs::VfsError> {
/// let p = VPath::parse("/usr/./local/../proj/sim.f")?;
/// assert_eq!(p.to_string(), "/usr/proj/sim.f");
/// assert_eq!(p.file_name(), Some("sim.f"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VPath {
    segments: Vec<String>,
}

impl VPath {
    /// The root path `/`.
    pub fn root() -> Self {
        VPath::default()
    }

    /// Parses and normalizes an absolute path.
    ///
    /// `.` segments are dropped; `..` segments pop (and are clamped at the
    /// root, as in POSIX resolution of `/..`). Repeated slashes collapse.
    ///
    /// # Errors
    ///
    /// Returns [`VfsError::InvalidPath`] if `raw` is empty or relative.
    pub fn parse(raw: &str) -> Result<Self, VfsError> {
        if !raw.starts_with('/') {
            return Err(VfsError::InvalidPath {
                path: raw.to_string(),
                reason: "path must be absolute",
            });
        }
        let mut segments = Vec::new();
        for seg in raw.split('/') {
            match seg {
                "" | "." => {}
                ".." => {
                    segments.pop();
                }
                s => segments.push(s.to_string()),
            }
        }
        Ok(VPath { segments })
    }

    /// Builds a path directly from normalized segments.
    ///
    /// # Panics
    ///
    /// Debug-asserts that no segment is empty, `.` or `..`.
    pub fn from_segments(segments: Vec<String>) -> Self {
        debug_assert!(segments
            .iter()
            .all(|s| !s.is_empty() && s != "." && s != ".."));
        VPath { segments }
    }

    /// The path's segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of segments.
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// The final segment, if any.
    pub fn file_name(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }

    /// The path without its final segment; `None` for the root.
    pub fn parent(&self) -> Option<VPath> {
        if self.segments.is_empty() {
            None
        } else {
            Some(VPath {
                segments: self.segments[..self.segments.len() - 1].to_vec(),
            })
        }
    }

    /// This path extended by one segment.
    ///
    /// # Panics
    ///
    /// Debug-asserts the segment is a plain name.
    #[must_use]
    pub fn child(&self, segment: &str) -> VPath {
        debug_assert!(!segment.is_empty() && segment != "." && segment != "..");
        let mut segments = self.segments.clone();
        segments.push(segment.to_string());
        VPath { segments }
    }

    /// This path extended by all of `rest`'s segments.
    #[must_use]
    pub fn join(&self, rest: &VPath) -> VPath {
        let mut segments = self.segments.clone();
        segments.extend(rest.segments.iter().cloned());
        VPath { segments }
    }

    /// Whether `prefix` is a (non-strict) prefix of this path.
    pub fn starts_with(&self, prefix: &VPath) -> bool {
        self.segments.len() >= prefix.segments.len()
            && self.segments[..prefix.segments.len()] == prefix.segments[..]
    }

    /// The remainder after removing `prefix`, if it is a prefix.
    pub fn strip_prefix(&self, prefix: &VPath) -> Option<VPath> {
        if self.starts_with(prefix) {
            Some(VPath {
                segments: self.segments[prefix.segments.len()..].to_vec(),
            })
        } else {
            None
        }
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            write!(f, "/")
        } else {
            for seg in &self.segments {
                write!(f, "/{seg}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        assert_eq!(VPath::parse("/").unwrap().to_string(), "/");
        assert_eq!(VPath::parse("/a/b").unwrap().to_string(), "/a/b");
        assert_eq!(VPath::parse("//a///b/").unwrap().to_string(), "/a/b");
        assert_eq!(VPath::parse("/a/./b").unwrap().to_string(), "/a/b");
        assert_eq!(VPath::parse("/a/../b").unwrap().to_string(), "/b");
        assert_eq!(VPath::parse("/../..").unwrap().to_string(), "/");
    }

    #[test]
    fn relative_paths_rejected() {
        assert!(VPath::parse("a/b").is_err());
        assert!(VPath::parse("").is_err());
    }

    #[test]
    fn parent_and_child() {
        let p = VPath::parse("/a/b/c").unwrap();
        assert_eq!(p.parent().unwrap().to_string(), "/a/b");
        assert_eq!(p.child("d").to_string(), "/a/b/c/d");
        assert_eq!(p.file_name(), Some("c"));
        assert!(VPath::root().parent().is_none());
        assert!(VPath::root().file_name().is_none());
    }

    #[test]
    fn prefix_operations() {
        let p = VPath::parse("/usr/proj/foo").unwrap();
        let usr = VPath::parse("/usr").unwrap();
        let other = VPath::parse("/us").unwrap();
        assert!(p.starts_with(&usr));
        assert!(!p.starts_with(&other));
        assert_eq!(p.strip_prefix(&usr).unwrap().to_string(), "/proj/foo");
        assert!(p.strip_prefix(&other).is_none());
        assert!(p.starts_with(&VPath::root()));
        assert_eq!(p.strip_prefix(&p).unwrap(), VPath::root());
    }

    #[test]
    fn join_concatenates() {
        let a = VPath::parse("/x").unwrap();
        let b = VPath::parse("/y/z").unwrap();
        assert_eq!(a.join(&b).to_string(), "/x/y/z");
        assert_eq!(VPath::root().join(&b), b);
    }

    #[test]
    fn ordering_is_lexicographic_by_segments() {
        let a = VPath::parse("/a").unwrap();
        let ab = VPath::parse("/a/b").unwrap();
        let b = VPath::parse("/b").unwrap();
        assert!(a < ab);
        assert!(ab < b);
    }
}
