//! In-memory multi-host virtual file system for the shadow editing service.
//!
//! The paper's name-resolution design (§5.3/§6.5) must cope with UNIX/NFS
//! realities: symbolic links, hard links (aliases), and file systems that
//! cross machine boundaries via NFS exports and mounts — where the same
//! file is reachable under *different* names from different hosts. This
//! crate models exactly that environment in memory:
//!
//! * each host owns a tree of directories, regular files, and symlinks
//!   (with hard links as multiple names for one file node);
//! * hosts can **mount** directories exported by other hosts at arbitrary
//!   mount points ([`Vfs::mount`]);
//! * [`Vfs::resolve`] implements the paper's iterative algorithm: resolve
//!   aliases and symbolic links on the local host, and whenever a prefix of
//!   the path belongs to a mounted file system, continue resolution on the
//!   exporting host — until the name reduces to a unique `(host, path)`
//!   pair, from which the `(domain id, file id)` pair is derived.
//!
//! # Example
//!
//! ```
//! use shadow_vfs::Vfs;
//! use shadow_proto::DomainId;
//!
//! # fn main() -> Result<(), shadow_vfs::VfsError> {
//! let mut vfs = Vfs::new(DomainId::new(1));
//! vfs.add_host("c")?;
//! vfs.add_host("a")?;
//! vfs.mkdir_p("c", "/usr")?;
//! vfs.write_file("c", "/usr/foo", b"data".to_vec())?;
//! vfs.mkdir_p("a", "/projl")?;
//! vfs.mount("a", "/projl", "c", "/usr")?;
//!
//! // The same file under two names resolves to one canonical identity.
//! let via_a = vfs.resolve("a", "/projl/foo")?;
//! let via_c = vfs.resolve("c", "/usr/foo")?;
//! assert_eq!(via_a.file_id, via_c.file_id);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod error;
mod hostfs;
mod path;

pub use cluster::{CanonicalName, MountEntry, NodeStat, NodeType, Vfs};
pub use error::VfsError;
pub use path::VPath;
