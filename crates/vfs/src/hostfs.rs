//! The per-host file tree: directories, files, symlinks, hard links.

use std::collections::BTreeMap;

use crate::{VPath, VfsError};

/// Index of a node within a host's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct NodeId(pub(crate) usize);

/// A node in a host's tree.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    /// Number of directory entries referencing this node (hard links).
    pub(crate) nlink: usize,
}

#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    Dir(BTreeMap<String, NodeId>),
    File(FileNode),
    Symlink(String),
}

#[derive(Debug, Clone)]
pub(crate) struct FileNode {
    pub(crate) content: Vec<u8>,
    /// The first name this file was created under — its "basic name" in the
    /// paper's terms, used as the canonical identity for aliased files.
    pub(crate) primary_path: VPath,
}

/// One host's local file system.
#[derive(Debug, Clone)]
pub(crate) struct HostFs {
    pub(crate) name: String,
    nodes: Vec<Node>,
    root: NodeId,
}

impl HostFs {
    pub(crate) fn new(name: &str) -> Self {
        let root = Node {
            kind: NodeKind::Dir(BTreeMap::new()),
            nlink: 1,
        };
        HostFs {
            name: name.to_string(),
            nodes: vec![root],
            root: NodeId(0),
        }
    }

    pub(crate) fn root(&self) -> NodeId {
        self.root
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        self.nodes.push(Node { kind, nlink: 0 });
        NodeId(self.nodes.len() - 1)
    }

    /// Looks up one entry in a directory node.
    pub(crate) fn lookup(&self, dir: NodeId, name: &str) -> Option<NodeId> {
        match &self.node(dir).kind {
            NodeKind::Dir(entries) => entries.get(name).copied(),
            _ => None,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests; kept for tooling
    /// Walks `path` purely within this host, **without** following
    /// symlinks or mounts; used for structural operations where the caller
    /// has already resolved indirections.
    pub(crate) fn walk_plain(&self, path: &VPath) -> Result<NodeId, VfsError> {
        let mut cur = self.root;
        for seg in path.segments() {
            match &self.node(cur).kind {
                NodeKind::Dir(entries) => {
                    cur = *entries.get(seg).ok_or_else(|| VfsError::NotFound {
                        host: self.name.clone(),
                        path: path.to_string(),
                    })?;
                }
                _ => {
                    return Err(VfsError::NotADirectory {
                        host: self.name.clone(),
                        path: path.to_string(),
                    })
                }
            }
        }
        Ok(cur)
    }

    /// Creates every missing directory along `path`.
    pub(crate) fn mkdir_p(&mut self, path: &VPath) -> Result<NodeId, VfsError> {
        let mut cur = self.root;
        let mut walked = VPath::root();
        for seg in path.segments() {
            walked = walked.child(seg);
            let existing = self.lookup(cur, seg);
            match existing {
                Some(next) => match self.node(next).kind {
                    NodeKind::Dir(_) => cur = next,
                    _ => {
                        return Err(VfsError::NotADirectory {
                            host: self.name.clone(),
                            path: walked.to_string(),
                        })
                    }
                },
                None => {
                    let new = self.alloc(NodeKind::Dir(BTreeMap::new()));
                    self.link_into(cur, seg, new)?;
                    cur = new;
                }
            }
        }
        Ok(cur)
    }

    /// Adds a directory entry pointing at `target`, bumping its link count.
    pub(crate) fn link_into(
        &mut self,
        dir: NodeId,
        name: &str,
        target: NodeId,
    ) -> Result<(), VfsError> {
        let host = self.name.clone();
        match &mut self.node_mut(dir).kind {
            NodeKind::Dir(entries) => {
                if entries.contains_key(name) {
                    return Err(VfsError::AlreadyExists {
                        host,
                        path: name.to_string(),
                    });
                }
                entries.insert(name.to_string(), target);
            }
            _ => {
                return Err(VfsError::NotADirectory {
                    host,
                    path: name.to_string(),
                })
            }
        }
        self.node_mut(target).nlink += 1;
        Ok(())
    }

    /// Removes a directory entry, decrementing the target's link count.
    /// The node itself is kept while other links reference it.
    pub(crate) fn unlink_from(&mut self, dir: NodeId, name: &str) -> Result<NodeId, VfsError> {
        let host = self.name.clone();
        let target = match &mut self.node_mut(dir).kind {
            NodeKind::Dir(entries) => entries.remove(name).ok_or(VfsError::NotFound {
                host,
                path: name.to_string(),
            })?,
            _ => {
                return Err(VfsError::NotADirectory {
                    host,
                    path: name.to_string(),
                })
            }
        };
        self.node_mut(target).nlink = self.node(target).nlink.saturating_sub(1);
        Ok(target)
    }

    /// Creates a fresh regular file node (not yet linked anywhere).
    pub(crate) fn create_file(&mut self, primary_path: VPath, content: Vec<u8>) -> NodeId {
        self.alloc(NodeKind::File(FileNode {
            content,
            primary_path,
        }))
    }

    /// Creates a fresh symlink node (not yet linked anywhere).
    pub(crate) fn create_symlink(&mut self, target: String) -> NodeId {
        self.alloc(NodeKind::Symlink(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let mut fs = HostFs::new("h");
        let d1 = fs.mkdir_p(&p("/a/b/c")).unwrap();
        let d2 = fs.mkdir_p(&p("/a/b/c")).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn mkdir_p_through_file_fails() {
        let mut fs = HostFs::new("h");
        let dir = fs.mkdir_p(&p("/a")).unwrap();
        let file = fs.create_file(p("/a/f"), b"x".to_vec());
        fs.link_into(dir, "f", file).unwrap();
        assert!(matches!(
            fs.mkdir_p(&p("/a/f/g")),
            Err(VfsError::NotADirectory { .. })
        ));
    }

    #[test]
    fn walk_plain_finds_nested() {
        let mut fs = HostFs::new("h");
        let dir = fs.mkdir_p(&p("/x/y")).unwrap();
        let file = fs.create_file(p("/x/y/z"), b"z".to_vec());
        fs.link_into(dir, "z", file).unwrap();
        assert_eq!(fs.walk_plain(&p("/x/y/z")).unwrap(), file);
        assert!(fs.walk_plain(&p("/x/q")).is_err());
    }

    #[test]
    fn hard_links_share_node_and_count() {
        let mut fs = HostFs::new("h");
        let root = fs.root();
        let file = fs.create_file(p("/one"), b"data".to_vec());
        fs.link_into(root, "one", file).unwrap();
        fs.link_into(root, "two", file).unwrap();
        assert_eq!(fs.node(file).nlink, 2);
        fs.unlink_from(root, "one").unwrap();
        assert_eq!(fs.node(file).nlink, 1);
        assert_eq!(fs.walk_plain(&p("/two")).unwrap(), file);
        assert!(fs.walk_plain(&p("/one")).is_err());
    }

    #[test]
    fn duplicate_link_rejected() {
        let mut fs = HostFs::new("h");
        let root = fs.root();
        let f = fs.create_file(p("/f"), Vec::new());
        fs.link_into(root, "f", f).unwrap();
        assert!(matches!(
            fs.link_into(root, "f", f),
            Err(VfsError::AlreadyExists { .. })
        ));
    }
}
