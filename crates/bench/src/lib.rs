//! Shared helpers for the benchmark harnesses.
//!
//! Each `[[bench]]` target under `benches/` regenerates one table or
//! figure of the paper's evaluation (or one ablation of a design choice
//! from DESIGN.md), prints the rows to stdout, and exports the same rows
//! machine-readably as `BENCH_<name>.json` in the workspace root (see
//! [`export_json`]); `cargo bench` runs them all. The micro-benchmarks
//! (`micro`, `ablation_diff_algos`) additionally use Criterion for real
//! CPU-time measurements.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use shadow_obs::Json;

/// Prints a banner so `cargo bench` output separates cleanly per figure.
pub fn banner(title: &str, context: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("{context}");
    println!("==============================================================");
}

/// True when the harness should run a reduced sweep (CI smoke mode),
/// controlled by `SHADOW_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("SHADOW_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Directory benchmark JSON lands in: `SHADOW_BENCH_DIR` when set,
/// otherwise the workspace root. Cargo runs bench binaries with the
/// *crate* directory as CWD, so the root is found by walking up to the
/// first directory holding a `Cargo.lock`; if none is found the CWD
/// itself is used.
pub fn bench_output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("SHADOW_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

/// Wraps benchmark rows in the common export envelope:
/// `{"bench": <name>, "quick": <bool>, "rows": [...]}`.
pub fn bench_doc(name: &str, rows: Vec<Json>) -> Json {
    Json::object()
        .with("bench", name)
        .with("quick", quick_mode())
        .with("rows", Json::Arr(rows))
}

/// Writes `doc` to `BENCH_<name>.json` in [`bench_output_dir`] and
/// reports where it went. Export failure is reported, not fatal: the
/// stdout table is the primary artifact and must still appear.
pub fn export_json(name: &str, doc: &Json) {
    let path = bench_output_dir().join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, doc.render_pretty()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// One-call export for the common case: wrap `rows` in the envelope and
/// write `BENCH_<name>.json`.
pub fn export_rows(name: &str, rows: Vec<Json>) {
    export_json(name, &bench_doc(name, rows));
}
