//! Shared helpers for the benchmark harnesses.
//!
//! Each `[[bench]]` target under `benches/` regenerates one table or
//! figure of the paper's evaluation (or one ablation of a design choice
//! from DESIGN.md), prints the rows to stdout, and exports the same rows
//! machine-readably as `BENCH_<name>.json` in the workspace root (see
//! [`export_json`]); `cargo bench` runs them all. The micro-benchmarks
//! (`micro`, `ablation_diff_algos`) additionally use Criterion for real
//! CPU-time measurements.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use shadow_obs::Json;

/// Prints a banner so `cargo bench` output separates cleanly per figure.
pub fn banner(title: &str, context: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("{context}");
    println!("==============================================================");
}

/// True when the harness should run a reduced sweep (CI smoke mode),
/// controlled by `SHADOW_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("SHADOW_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Directory benchmark JSON lands in: `SHADOW_BENCH_DIR` when set,
/// otherwise the workspace root. Cargo runs bench binaries with the
/// *crate* directory as CWD, so the root is found by walking up to the
/// first directory holding a `Cargo.lock`; if none is found the CWD
/// itself is used.
pub fn bench_output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("SHADOW_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

/// Deterministic blob pair for the chunk-codec benches: a `len`-byte
/// file plus a copy with a 1 KB splice in the middle. `binary` selects
/// NUL-bearing bytes; otherwise the blob is printable with no newlines
/// at all (one giant "line" — the shape that defeats the line differ).
pub fn blob_pair(len: usize, binary: bool, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut state = seed | 1;
    let mut base = Vec::with_capacity(len);
    for _ in 0..len {
        // xorshift64*: cheap, deterministic, no deps.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let b = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8;
        base.push(if binary { b } else { b' ' + b % 94 });
    }
    let mut edited = base.clone();
    let mid = len / 2;
    let splice = 1024.min(len / 2);
    for (i, slot) in edited[mid..mid + splice].iter_mut().enumerate() {
        *slot = if binary { i as u8 } else { b'A' + (i % 26) as u8 };
    }
    (base, edited)
}

/// Wraps benchmark rows in the common export envelope:
/// `{"bench": <name>, "quick": <bool>, "rows": [...]}`.
pub fn bench_doc(name: &str, rows: Vec<Json>) -> Json {
    Json::object()
        .with("bench", name)
        .with("quick", quick_mode())
        .with("rows", Json::Arr(rows))
}

/// Writes `doc` to `BENCH_<name>.json` in [`bench_output_dir`] and
/// reports where it went. Export failure is reported, not fatal: the
/// stdout table is the primary artifact and must still appear.
pub fn export_json(name: &str, doc: &Json) {
    let path = bench_output_dir().join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, doc.render_pretty()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// One-call export for the common case: wrap `rows` in the envelope and
/// write `BENCH_<name>.json`.
pub fn export_rows(name: &str, rows: Vec<Json>) {
    export_json(name, &bench_doc(name, rows));
}

/// Extracts `(op, ns_per_op)` pairs from a `BENCH_*.json` document as
/// produced by [`export_rows`]. This is a scanner for our own export
/// format, not a general JSON parser: it pairs each `"op"` string with
/// the first `"ns_per_op"` number that follows it. Rows without both
/// fields are skipped.
pub fn parse_ns_rows(doc: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let mut rest = doc;
    while let Some(at) = rest.find("\"op\":") {
        rest = &rest[at + "\"op\":".len()..];
        let Some(open) = rest.find('"') else { break };
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let op = rest[..close].to_string();
        rest = &rest[close + 1..];
        // The value runs to the next comma or closing brace; both are
        // structural in our export (numbers are never quoted).
        let Some(ns_at) = rest.find("\"ns_per_op\":") else {
            continue;
        };
        // Only accept the ns field of *this* row: it must appear before
        // the next row's "op" key.
        if rest.find("\"op\":").is_some_and(|next_op| next_op < ns_at) {
            continue;
        }
        let val = &rest[ns_at + "\"ns_per_op\":".len()..];
        let end = val
            .find([',', '}', '\n'])
            .unwrap_or(val.len());
        if let Ok(ns) = val[..end].trim().parse::<f64>() {
            rows.push((op, ns));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ns_rows_reads_own_export_format() {
        let doc = bench_doc(
            "micro",
            vec![
                Json::object()
                    .with("op", "alpha")
                    .with("bytes", 10usize)
                    .with("ns_per_op", 12.5)
                    .with("mb_per_sec", 1.0),
                Json::object().with("op", "no_ns_field").with("bytes", 1usize),
                Json::object().with("op", "beta").with("ns_per_op", 3000usize),
            ],
        )
        .render_pretty();
        let rows = parse_ns_rows(&doc);
        assert_eq!(
            rows,
            vec![("alpha".to_string(), 12.5), ("beta".to_string(), 3000.0)]
        );
    }

    #[test]
    fn parse_ns_rows_tolerates_garbage() {
        assert!(parse_ns_rows("").is_empty());
        assert!(parse_ns_rows("{\"op\": \"x\"").is_empty());
        assert!(parse_ns_rows("not json at all").is_empty());
    }
}
