//! Shared helpers for the benchmark harnesses.
//!
//! Each `[[bench]]` target under `benches/` regenerates one table or
//! figure of the paper's evaluation (or one ablation of a design choice
//! from DESIGN.md) and prints the rows to stdout; `cargo bench` runs them
//! all. The micro-benchmarks (`micro`, `ablation_diff_algos`) additionally
//! use Criterion for real CPU-time measurements.

#![forbid(unsafe_code)]

/// Prints a banner so `cargo bench` output separates cleanly per figure.
pub fn banner(title: &str, context: &str) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!("{context}");
    println!("==============================================================");
}

/// True when the harness should run a reduced sweep (CI smoke mode),
/// controlled by `SHADOW_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("SHADOW_BENCH_QUICK").is_ok_and(|v| v == "1")
}
