//! Chaos-suite regression guard.
//!
//! Compares a freshly exported `BENCH_chaos.json` against the committed
//! `BENCH_baseline_chaos.json` and exits non-zero when the
//! fault-tolerance story regresses. Two kinds of gate:
//!
//! * **Behavior** (exact): every outage recovered, zero resume
//!   fallbacks, and a recovered-as-delta ratio no worse than the
//!   baseline's — a reconnecting session that silently degrades to
//!   full transfers is a correctness bug (§5.1), not a slowdown.
//! * **Latency** (5x): mean recovery time per row. The threshold is
//!   looser than the diff/recovery guards' because recoveries are
//!   millisecond-scale wall-clock measurements over real sockets and
//!   pipes, where scheduler noise is proportionally large — but the
//!   failure this exists for (a redial path that spins through extra
//!   round trips or waits out a stray timeout) costs well over 5x.
//!
//! Usage: `cargo run -p shadow-bench --bin chaos_guard` after the
//! `chaos` bench has written `BENCH_chaos.json` (see `just chaos`).

use std::fs;
use std::process::ExitCode;

/// Maximum tolerated recovery-latency slowdown per row.
const MAX_REGRESSION: f64 = 5.0;

/// One exported row: its `op` name and every numeric field.
struct Row {
    op: String,
    fields: Vec<(String, f64)>,
}

impl Row {
    fn get(&self, name: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Splits an exported document into rows at each `"op"` key and scans
/// every `"name": number` field of the chunk. A scanner for our own
/// export format (numbers are never quoted, keys never contain
/// escapes), not a general JSON parser.
fn parse_rows(doc: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut rest = doc;
    while let Some(at) = rest.find("\"op\":") {
        rest = &rest[at + "\"op\":".len()..];
        let Some(open) = rest.find('"') else { break };
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let op = rest[..close].to_string();
        rest = &rest[close + 1..];
        let chunk_end = rest.find("\"op\":").unwrap_or(rest.len());
        let chunk = &rest[..chunk_end];
        let mut fields = Vec::new();
        let mut scan = chunk;
        while let Some(key_open) = scan.find('"') {
            scan = &scan[key_open + 1..];
            let Some(key_close) = scan.find('"') else { break };
            let key = scan[..key_close].to_string();
            scan = &scan[key_close + 1..];
            let Some(colon) = scan.find(':') else { break };
            let val = scan[colon + 1..].trim_start();
            let end = val.find([',', '}', '\n', ']']).unwrap_or(val.len());
            if let Ok(num) = val[..end].trim().parse::<f64>() {
                fields.push((key, num));
            }
        }
        rows.push(Row { op, fields });
    }
    rows
}

fn main() -> ExitCode {
    let root = shadow_bench::bench_output_dir();
    let current_path = root.join("BENCH_chaos.json");
    let baseline_path = root.join("BENCH_baseline_chaos.json");
    let current = match fs::read_to_string(&current_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "chaos_guard: cannot read {} ({e}); run the chaos bench first \
                 (just chaos)",
                current_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "chaos_guard: cannot read {} ({e}); the baseline must be \
                 committed at the workspace root",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let current_rows = parse_rows(&current);
    let baseline_rows = parse_rows(&baseline);
    if baseline_rows.is_empty() {
        eprintln!("chaos_guard: no rows in the baseline; nothing to guard");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut checked = 0usize;
    for base in &baseline_rows {
        let op = &base.op;
        let Some(cur) = current_rows.iter().find(|r| &r.op == op) else {
            eprintln!("chaos_guard: FAIL {op}: row missing from BENCH_chaos.json");
            failed = true;
            continue;
        };
        checked += 1;
        let mut errors: Vec<String> = Vec::new();

        // Behavior gates: exact, because the suite is seeded.
        let outages = cur.get("outages").unwrap_or(0.0);
        let recovered = cur.get("recovered").unwrap_or(-1.0);
        if outages < 1.0 || (recovered - outages).abs() > f64::EPSILON {
            errors.push(format!("{recovered} of {outages} outages recovered"));
        }
        let fallbacks = cur.get("resume_fallbacks").unwrap_or(-1.0);
        if fallbacks != 0.0 {
            errors.push(format!(
                "{fallbacks} resume fallbacks — a reconnect degraded to a full transfer"
            ));
        }
        let base_ratio = base.get("delta_ratio").unwrap_or(1.0);
        let ratio = cur.get("delta_ratio").unwrap_or(0.0);
        if ratio + 1e-9 < base_ratio {
            errors.push(format!(
                "recovered-as-delta ratio {ratio:.3} below baseline {base_ratio:.3}"
            ));
        }

        // Latency gate: loose, the measurements are wall-clock.
        let mut factor = 0.0;
        let mut cur_ms = 0.0;
        match (base.get("ns_per_op"), cur.get("ns_per_op")) {
            (Some(base_ns), Some(cur_ns)) => {
                factor = cur_ns / base_ns.max(1.0);
                cur_ms = cur_ns / 1e6;
                if factor > MAX_REGRESSION {
                    errors.push(format!(
                        "recovery {cur_ms:.2} ms vs baseline {:.2} ms \
                         ({factor:.2}x > {MAX_REGRESSION}x)",
                        base_ns / 1e6
                    ));
                }
            }
            _ => errors.push("ns_per_op missing".to_string()),
        }

        if errors.is_empty() {
            println!(
                "chaos_guard: ok   {op}: ratio {ratio:.2}, {recovered}/{outages} recovered, \
                 recovery {cur_ms:.2} ms ({factor:.2}x of baseline)"
            );
        } else {
            failed = true;
            for msg in errors {
                eprintln!("chaos_guard: FAIL {op}: {msg}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("chaos_guard: {checked} rows within behavior and {MAX_REGRESSION}x latency gates");
        ExitCode::SUCCESS
    }
}
