//! Diff performance regression guard.
//!
//! Compares the diff/apply rows of a freshly exported `BENCH_micro.json`
//! against the committed `BENCH_baseline_diff.json` and exits non-zero
//! when any row's `ns_per_op` regresses more than 2x. The 2x threshold is
//! deliberately loose: CI machines vary, but an accidental return to the
//! per-line allocating pipeline costs well over an order of magnitude on
//! the zero-copy rows, which this catches while tolerating noisy
//! neighbours.
//!
//! Usage: `cargo run -p shadow-bench --bin diff_guard` after the `micro`
//! bench has written `BENCH_micro.json` (see `just bench-diff`).

use std::fs;
use std::process::ExitCode;

/// Maximum tolerated slowdown factor per row before the guard fails.
const MAX_REGRESSION: f64 = 2.0;

fn main() -> ExitCode {
    let root = shadow_bench::bench_output_dir();
    let current_path = root.join("BENCH_micro.json");
    let baseline_path = root.join("BENCH_baseline_diff.json");
    let current = match fs::read_to_string(&current_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "diff_guard: cannot read {} ({e}); run the micro bench first \
                 (just bench-diff)",
                current_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "diff_guard: cannot read {} ({e}); the baseline must be \
                 committed at the workspace root",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let current_rows = shadow_bench::parse_ns_rows(&current);
    let baseline_rows = shadow_bench::parse_ns_rows(&baseline);
    if baseline_rows.is_empty() {
        eprintln!("diff_guard: no ns_per_op rows in the baseline; nothing to guard");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut checked = 0usize;
    for (op, base_ns) in &baseline_rows {
        let Some((_, cur_ns)) = current_rows.iter().find(|(o, _)| o == op) else {
            eprintln!("diff_guard: FAIL {op}: row missing from BENCH_micro.json");
            failed = true;
            continue;
        };
        checked += 1;
        let factor = cur_ns / base_ns.max(1.0);
        if factor > MAX_REGRESSION {
            eprintln!(
                "diff_guard: FAIL {op}: {cur_ns:.0} ns vs baseline {base_ns:.0} ns \
                 ({factor:.2}x > {MAX_REGRESSION}x)"
            );
            failed = true;
        } else {
            println!(
                "diff_guard: ok   {op}: {cur_ns:.0} ns vs baseline {base_ns:.0} ns \
                 ({factor:.2}x)"
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("diff_guard: {checked} rows within {MAX_REGRESSION}x of baseline");
        ExitCode::SUCCESS
    }
}
