//! Recovery performance regression guard.
//!
//! Compares the rows of a freshly exported `BENCH_recovery.json`
//! against the committed `BENCH_baseline_recovery.json` and exits
//! non-zero when any row's `ns_per_op` regresses more than 3x. The
//! threshold is looser than the diff guard's: every row here touches
//! the filesystem, so CI noise is larger — but the failure modes this
//! exists for (an accidental per-record fsync on the append path, or
//! replay losing its bounded-by-live-state property to compaction
//! breakage) cost well over an order of magnitude.
//!
//! Usage: `cargo run -p shadow-bench --bin recovery_guard` after the
//! `recovery` bench has written `BENCH_recovery.json` (see
//! `just bench-recovery`).

use std::fs;
use std::process::ExitCode;

/// Maximum tolerated slowdown factor per row before the guard fails.
const MAX_REGRESSION: f64 = 3.0;

fn main() -> ExitCode {
    let root = shadow_bench::bench_output_dir();
    let current_path = root.join("BENCH_recovery.json");
    let baseline_path = root.join("BENCH_baseline_recovery.json");
    let current = match fs::read_to_string(&current_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "recovery_guard: cannot read {} ({e}); run the recovery bench \
                 first (just bench-recovery)",
                current_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "recovery_guard: cannot read {} ({e}); the baseline must be \
                 committed at the workspace root",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let current_rows = shadow_bench::parse_ns_rows(&current);
    let baseline_rows = shadow_bench::parse_ns_rows(&baseline);
    if baseline_rows.is_empty() {
        eprintln!("recovery_guard: no ns_per_op rows in the baseline; nothing to guard");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut checked = 0usize;
    for (op, base_ns) in &baseline_rows {
        let Some((_, cur_ns)) = current_rows.iter().find(|(o, _)| o == op) else {
            eprintln!("recovery_guard: FAIL {op}: row missing from BENCH_recovery.json");
            failed = true;
            continue;
        };
        checked += 1;
        let factor = cur_ns / base_ns.max(1.0);
        if factor > MAX_REGRESSION {
            eprintln!(
                "recovery_guard: FAIL {op}: {cur_ns:.0} ns vs baseline {base_ns:.0} ns \
                 ({factor:.2}x > {MAX_REGRESSION}x)"
            );
            failed = true;
        } else {
            println!(
                "recovery_guard: ok   {op}: {cur_ns:.0} ns vs baseline {base_ns:.0} ns \
                 ({factor:.2}x)"
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("recovery_guard: {checked} rows within {MAX_REGRESSION}x of baseline");
        ExitCode::SUCCESS
    }
}
