//! **Sharded runtime contention** — throughput and latency of the live
//! (threads-and-pipes) server under many concurrent sessions, single
//! runtime vs. domain-affine shards.
//!
//! The paper's server is one process per supercomputer; a busy site
//! "is likely to be swamped with several such … sessions" (§2.1). This
//! harness measures the scale-out answer: N worker shards behind the
//! Hello-peeking router, each owning the sessions of the domains hashed
//! to it. Jobs are tiny `echo`s whose cost is the per-job scheduling
//! overhead, so the bottleneck under load is the per-node execution
//! slots (`max_running` × `job_overhead_ms`) — exactly the resource
//! sharding multiplies. Every session is its own naming domain, so
//! domains spread across shards and the aggregate job-completion rate
//! scales with the shard count even on a single CPU.
//!
//! Exports `BENCH_contention.json`; the acceptance row is 1k sessions,
//! where 4 shards must clear ≥2× the single-shard throughput.

use std::time::{Duration, Instant};

use shadow::{
    ClientConfig, Deployment, ExecProfile, FileId, FileRef, LiveClient, Notification,
    PipeDeployment, ServerConfig, SubmitOptions,
};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;

/// Execution slots per shard node. With `JOB_OVERHEAD_MS` this caps a
/// single node's completion rate at `SLOTS / overhead` jobs per second;
/// shards multiply the slot pool.
const SLOTS: usize = 8;
/// Fixed per-job scheduling overhead (ms) — small enough to keep the
/// sweep fast, large enough to dominate the ~µs of actual echo work.
const JOB_OVERHEAD_MS: u64 = 20;

struct Row {
    sessions: usize,
    shards: usize,
    makespan: Duration,
    mean_latency_ms: f64,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.sessions as f64 / self.makespan.as_secs_f64().max(1e-9)
    }
}

fn config() -> ServerConfig {
    ServerConfig::new("superc")
        .with_max_running(SLOTS)
        .with_exec(ExecProfile {
            cpu_byte_rate: 2_000_000,
            job_overhead_ms: JOB_OVERHEAD_MS,
        })
}

/// One sweep point: `sessions` clients (each its own domain) connect,
/// submit one tiny job each, and the driver thread pumps them all
/// round-robin until every job has finished. Returns makespan (first
/// submit → last completion) and mean per-job latency.
fn run(sessions: usize, shards: usize) -> Row {
    let system: PipeDeployment = Deployment::new(config())
        .shards(shards)
        .pipes()
        .expect("deploy");

    let mut clients: Vec<LiveClient> = (0..sessions)
        .map(|i| {
            system.connect_client(ClientConfig::new(format!("ws{i}"), i as u64 + 1))
        })
        .collect();
    for c in &mut clients {
        c.wait_ready(Duration::from_secs(30)).expect("handshake");
    }

    let job = FileRef::new(FileId::new(1), "ws:/tiny.job");
    let start = Instant::now();
    let mut submitted_at = Vec::with_capacity(sessions);
    for c in &mut clients {
        c.edit_finished(&job, b"echo ok\n".to_vec());
        c.submit(&job, &[], SubmitOptions::default()).expect("submit");
        submitted_at.push(Instant::now());
    }

    let mut done = vec![false; sessions];
    let mut latency_total = Duration::ZERO;
    let mut finished = 0usize;
    while finished < sessions {
        let mut progressed = false;
        for (i, c) in clients.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            if c.pump().expect("server alive") > 0 {
                progressed = true;
            }
            if c.take_notifications()
                .iter()
                .any(|n| matches!(n, Notification::JobFinished { .. }))
            {
                done[i] = true;
                latency_total += submitted_at[i].elapsed();
                finished += 1;
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let makespan = start.elapsed();

    drop(clients);
    let nodes = system.shutdown();
    let completed: u64 = nodes
        .iter()
        .map(|n| n.report().counter("server", "jobs_completed"))
        .sum();
    assert_eq!(completed as usize, sessions, "every job must complete");

    Row {
        sessions,
        shards,
        makespan,
        mean_latency_ms: latency_total.as_secs_f64() * 1000.0 / sessions as f64,
    }
}

fn main() {
    banner(
        "Sharded runtime contention: sessions x shards over in-process pipes",
        "tiny echo jobs; bottleneck = exec slots per node (max_running x overhead)",
    );
    let (session_counts, shard_counts): (&[usize], &[usize]) = if quick_mode() {
        (&[100, 1_000], &[1, 4])
    } else {
        (&[100, 1_000, 10_000], &[1, 4, 8])
    };

    println!(
        "{:>10} {:>8} {:>14} {:>16} {:>18}",
        "sessions", "shards", "makespan(s)", "jobs/sec", "mean latency(ms)"
    );
    let mut rows = Vec::new();
    let mut baselines: Vec<(usize, f64)> = Vec::new();
    for &sessions in session_counts {
        for &shards in shard_counts {
            let row = run(sessions, shards);
            let throughput = row.throughput();
            if shards == 1 {
                baselines.push((sessions, throughput));
            }
            let speedup = baselines
                .iter()
                .find(|(s, _)| *s == sessions)
                .map_or(1.0, |(_, base)| throughput / base.max(1e-9));
            println!(
                "{:>10} {:>8} {:>14.2} {:>16.0} {:>18.1}   ({speedup:.2}x vs 1 shard)",
                row.sessions,
                row.shards,
                row.makespan.as_secs_f64(),
                throughput,
                row.mean_latency_ms,
            );
            rows.push(
                Json::object()
                    .with("sessions", row.sessions)
                    .with("shards", row.shards)
                    .with("makespan_secs", row.makespan.as_secs_f64())
                    .with("throughput_jobs_per_sec", throughput)
                    .with("mean_latency_ms", row.mean_latency_ms)
                    .with("speedup_vs_one_shard", speedup),
            );
        }
    }
    export_rows("contention", rows);
    println!();
    println!("expected shape: each shard contributes {SLOTS} execution slots of");
    println!("{JOB_OVERHEAD_MS} ms jobs, so aggregate throughput rises near-linearly with");
    println!("the shard count until the single routing/driving thread saturates.");
}
