//! Micro-benchmarks (Criterion, real CPU time): the hot paths a production
//! deployment cares about — wire codec, compressors, content digest, and
//! the end-to-end in-memory protocol round trip.

use criterion::{criterion_group, Criterion, Throughput};
use shadow::{
    Codec, ContentDigest, DomainId, FileId, FileSpec, Frame, HostName, Lzss, Rle,
    ClientMessage, TransferEncoding, UpdatePayload, VersionNumber,
};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let payload = shadow::generate_file(&FileSpec::new(100_000, 1));
    let digest = ContentDigest::of(&payload);
    let msg = ClientMessage::Update {
        file: FileId::new(7),
        version: VersionNumber::new(3),
        payload: UpdatePayload::Full {
            encoding: TransferEncoding::Identity,
            data: bytes::Bytes::from(payload.clone()),
            digest,
        },
    };
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("encode_update_100k", |b| b.iter(|| Frame::encode(&msg)));
    let frame = Frame::encode(&msg);
    group.bench_function("decode_update_100k", |b| {
        b.iter(|| Frame::decode::<ClientMessage>(&frame).unwrap().unwrap())
    });
    let hello = ClientMessage::Hello {
        domain: DomainId::new(1),
        host: HostName::new("ws1"),
        protocol: 1,
    };
    group.bench_function("encode_hello", |b| b.iter(|| Frame::encode(&hello)));
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    let text = shadow::generate_file(&FileSpec::new(100_000, 2));
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("lzss_compress_100k", |b| {
        b.iter(|| Lzss::default().compress(&text))
    });
    let packed = Lzss::default().compress(&text);
    group.bench_function("lzss_decompress_100k", |b| {
        b.iter(|| Lzss::default().decompress(&packed).unwrap())
    });
    group.bench_function("rle_compress_100k", |b| b.iter(|| Rle.compress(&text)));
    group.finish();
}

fn bench_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest");
    let data = shadow::generate_file(&FileSpec::new(500_000, 3));
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("fnv_500k", |b| b.iter(|| ContentDigest::of(&data)));
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    use shadow::{profiles, ClientConfig, CpuModel, ServerConfig, Simulation, SubmitOptions};
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("sim_cycle_20k_lan", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1).with_cpu(CpuModel::instant());
            let server = sim.add_server("sc", ServerConfig::new("sc"));
            let client = sim.add_client("ws", ClientConfig::new("ws", 1));
            let conn = sim.connect(client, server, profiles::lan()).unwrap();
            let content = shadow::generate_file(&FileSpec::new(20_000, 4));
            sim.edit_file(client, "/d", move |_| content.clone()).unwrap();
            let name = sim.canonical_name(client, "/d").unwrap();
            sim.edit_file(client, "/j", move |_| format!("wc {name}\n").into_bytes())
                .unwrap();
            sim.submit(client, conn, "/j", &["/d"], SubmitOptions::default())
                .unwrap();
            sim.run_until_quiet();
            assert_eq!(sim.finished_jobs(client).len(), 1);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_compress, bench_digest, bench_end_to_end);

/// Times `f` over `iters` calls, returning mean nanoseconds per call.
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
}

fn main() {
    benches();
    // Re-measure the headline operations with a plain timer and export
    // them machine-readably alongside the Criterion report.
    let iters = if shadow_bench::quick_mode() { 20 } else { 200 };
    let payload = shadow::generate_file(&FileSpec::new(100_000, 1));
    let digest = ContentDigest::of(&payload);
    let msg = ClientMessage::Update {
        file: FileId::new(7),
        version: VersionNumber::new(3),
        payload: UpdatePayload::Full {
            encoding: TransferEncoding::Identity,
            data: bytes::Bytes::from(payload.clone()),
            digest,
        },
    };
    let frame = Frame::encode(&msg);
    let big = shadow::generate_file(&FileSpec::new(500_000, 3));
    let row = |name: &str, bytes: usize, ns: f64| {
        shadow_obs::Json::object()
            .with("op", name)
            .with("bytes", bytes)
            .with("ns_per_op", ns)
            .with("mb_per_sec", bytes as f64 * 1000.0 / ns.max(1.0))
    };
    let rows = vec![
        row(
            "encode_update_100k",
            payload.len(),
            time_ns(iters, || {
                let _ = Frame::encode(&msg);
            }),
        ),
        row(
            "decode_update_100k",
            payload.len(),
            time_ns(iters, || {
                let _ = Frame::decode::<ClientMessage>(&frame);
            }),
        ),
        row(
            "fnv_digest_500k",
            big.len(),
            time_ns(iters, || {
                let _ = ContentDigest::of(&big);
            }),
        ),
    ];
    shadow_bench::export_rows("micro", rows);
}
