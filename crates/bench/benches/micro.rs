//! Micro-benchmarks (Criterion, real CPU time): the hot paths a production
//! deployment cares about — wire codec, compressors, content digest, the
//! diff pipelines, and the end-to-end in-memory protocol round trip.
//!
//! The JSON export re-times the headline operations with a plain timer
//! **and a counting global allocator**, so every row carries
//! `allocs_per_op` next to `ns_per_op` — the zero-copy diff rows exist to
//! be compared against the legacy rows on both axes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, Criterion, Throughput};
use shadow::{
    apply_chunk_delta, apply_delta, chunk_delta_into, diff_docs, diff_legacy, Codec,
    ClientMessage, ContentDigest, DiffAlgorithm, DiffScratch, DocBuf, Document, DomainId,
    EdScript, EditModel, FileId, FileSpec, Frame, HostName, Lzss, Rle, TransferEncoding,
    UpdatePayload, VersionNumber,
};

/// Pass-through allocator that counts every allocation (and growth
/// realloc), so the exported rows can report `allocs_per_op` — the number
/// the zero-copy pipeline is designed to drive to zero in steady state.
#[derive(Debug)]
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let payload = shadow::generate_file(&FileSpec::new(100_000, 1));
    let digest = ContentDigest::of(&payload);
    let msg = ClientMessage::Update {
        file: FileId::new(7),
        version: VersionNumber::new(3),
        payload: UpdatePayload::Full {
            encoding: TransferEncoding::Identity,
            data: bytes::Bytes::from(payload.clone()),
            digest,
        },
    };
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("encode_update_100k", |b| b.iter(|| Frame::encode(&msg)));
    let frame = Frame::encode(&msg);
    group.bench_function("decode_update_100k", |b| {
        b.iter(|| Frame::decode::<ClientMessage>(&frame).unwrap().unwrap())
    });
    let hello = ClientMessage::Hello {
        domain: DomainId::new(1),
        host: HostName::new("ws1"),
        protocol: 1,
        epoch: 0,
        resume: Vec::new(),
    };
    group.bench_function("encode_hello", |b| b.iter(|| Frame::encode(&hello)));
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    let text = shadow::generate_file(&FileSpec::new(100_000, 2));
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("lzss_compress_100k", |b| {
        b.iter(|| Lzss::default().compress(&text))
    });
    let packed = Lzss::default().compress(&text);
    group.bench_function("lzss_decompress_100k", |b| {
        b.iter(|| Lzss::default().decompress(&packed).unwrap())
    });
    group.bench_function("rle_compress_100k", |b| b.iter(|| Rle.compress(&text)));
    group.finish();
}

fn bench_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest");
    let data = shadow::generate_file(&FileSpec::new(500_000, 3));
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("fnv_500k", |b| b.iter(|| ContentDigest::of(&data)));
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    use shadow::{profiles, ClientConfig, CpuModel, ServerConfig, Simulation, SubmitOptions};
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("sim_cycle_20k_lan", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1).with_cpu(CpuModel::instant());
            let server = sim.add_server("sc", ServerConfig::new("sc"));
            let client = sim.add_client("ws", ClientConfig::new("ws", 1));
            let conn = sim.connect(client, server, profiles::lan()).unwrap();
            let content = shadow::generate_file(&FileSpec::new(20_000, 4));
            sim.edit_file(client, "/d", move |_| content.clone()).unwrap();
            let name = sim.canonical_name(client, "/d").unwrap();
            sim.edit_file(client, "/j", move |_| format!("wc {name}\n").into_bytes())
                .unwrap();
            sim.submit(client, conn, "/j", &["/d"], SubmitOptions::default())
                .unwrap();
            sim.run_until_quiet();
            assert_eq!(sim.finished_jobs(client).len(), 1);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_compress, bench_digest, bench_end_to_end);

/// Times `f` over `iters` calls, returning mean nanoseconds per call and
/// mean heap allocations per call. Every result must flow through
/// [`black_box`] inside `f`, or the optimizer deletes the work and the
/// row reports constant-fold time (as the digest row once famously did).
fn measure(iters: u32, mut f: impl FnMut()) -> (f64, f64) {
    let alloc_start = ALLOCS.load(Ordering::Relaxed);
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters.max(1));
    let allocs = ALLOCS.load(Ordering::Relaxed) - alloc_start;
    (ns, allocs as f64 / f64::from(iters.max(1)))
}

/// A 100 KB file with one small edit in the middle: the steady-state
/// resubmission shape the zero-copy pipeline optimizes for.
fn small_edit_pair() -> (Vec<u8>, Vec<u8>) {
    let base = shadow::generate_file(&FileSpec::new(100_000, 7));
    let edited = EditModel::fraction(0.001, 8).apply(&base);
    assert_ne!(base, edited, "edit model produced no change");
    (base, edited)
}

/// A 10 MB blob with a 1 KB splice in the middle — the shape that defeats
/// the line differ (one giant line, or binary data) and that the chunk
/// codec exists for. See [`shadow_bench::blob_pair`].
fn big_blob_pair(binary: bool, seed: u64) -> (Vec<u8>, Vec<u8>) {
    shadow_bench::blob_pair(10 * 1024 * 1024, binary, seed)
}

fn main() {
    benches();
    // Re-measure the headline operations with a plain timer and export
    // them machine-readably alongside the Criterion report.
    let iters = if shadow_bench::quick_mode() { 20 } else { 200 };
    let payload = shadow::generate_file(&FileSpec::new(100_000, 1));
    let digest = ContentDigest::of(&payload);
    let msg = ClientMessage::Update {
        file: FileId::new(7),
        version: VersionNumber::new(3),
        payload: UpdatePayload::Full {
            encoding: TransferEncoding::Identity,
            data: bytes::Bytes::from(payload.clone()),
            digest,
        },
    };
    let frame = Frame::encode(&msg);
    let big = shadow::generate_file(&FileSpec::new(500_000, 3));
    let row = |name: &str, bytes: usize, (ns, allocs): (f64, f64)| {
        shadow_obs::Json::object()
            .with("op", name)
            .with("bytes", bytes)
            .with("ns_per_op", ns)
            .with("allocs_per_op", allocs)
            .with("mb_per_sec", bytes as f64 * 1000.0 / ns.max(1.0))
    };
    let mut rows = vec![
        row(
            "encode_update_100k",
            payload.len(),
            measure(iters, || {
                black_box(Frame::encode(black_box(&msg)));
            }),
        ),
        row(
            "decode_update_100k",
            payload.len(),
            measure(iters, || {
                black_box(Frame::decode::<ClientMessage>(black_box(&frame)).unwrap());
            }),
        ),
        row(
            "fnv_digest_500k",
            big.len(),
            measure(iters, || {
                black_box(ContentDigest::of(black_box(&big)));
            }),
        ),
    ];

    // The diff pipelines over the same workload: legacy (per-line
    // allocating) vs zero-copy with a fresh scratch vs zero-copy reusing
    // one scratch across calls (the steady-state resubmission path).
    let (base, edited) = small_edit_pair();
    let old_doc = Document::from_bytes(base.clone());
    let new_doc = Document::from_bytes(edited.clone());
    let old_buf = DocBuf::from_bytes(base.clone());
    let new_buf = DocBuf::from_bytes(edited.clone());
    rows.push(row(
        "diff_legacy_small_edit_100k",
        base.len(),
        measure(iters, || {
            black_box(diff_legacy(
                DiffAlgorithm::HuntMcIlroy,
                black_box(&old_doc),
                black_box(&new_doc),
            ));
        }),
    ));
    rows.push(row(
        "diff_zerocopy_small_edit_100k",
        base.len(),
        measure(iters, || {
            let mut scratch = DiffScratch::new();
            black_box(diff_docs(
                DiffAlgorithm::HuntMcIlroy,
                black_box(&old_buf),
                black_box(&new_buf),
                &mut scratch,
            ));
        }),
    ));
    let mut scratch = DiffScratch::new();
    diff_docs(DiffAlgorithm::HuntMcIlroy, &old_buf, &new_buf, &mut scratch); // warm
    rows.push(row(
        "diff_zerocopy_reuse_100k",
        base.len(),
        measure(iters, || {
            black_box(diff_docs(
                DiffAlgorithm::HuntMcIlroy,
                black_box(&old_buf),
                black_box(&new_buf),
                &mut scratch,
            ));
        }),
    ));

    // The two delta-apply engines over the same script.
    let script_text = diff_docs(
        DiffAlgorithm::HuntMcIlroy,
        &old_buf,
        &new_buf,
        &mut scratch,
    )
    .to_text();
    rows.push(row(
        "apply_legacy_small_edit_100k",
        base.len(),
        // The full reconstruction exactly as the server performed it
        // before the zero-copy pipeline: split the base into lines,
        // parse the script, apply, reassemble bytes.
        measure(iters, || {
            let base_doc = Document::from_bytes(black_box(&base).clone());
            let script = EdScript::parse(black_box(&script_text)).unwrap();
            black_box(script.apply(&base_doc).unwrap().to_bytes());
        }),
    ));
    rows.push(row(
        "apply_delta_small_edit_100k",
        base.len(),
        measure(iters, || {
            black_box(apply_delta(black_box(&base), black_box(&script_text)).unwrap());
        }),
    ));

    // Frame encode with a caller-held scratch buffer: once the buffer has
    // grown to frame size, re-encoding must not touch the heap at all.
    let mut encode_buf = Vec::new();
    Frame::encode_into(&msg, &mut encode_buf); // warm to full frame size
    let encode_reuse = measure(iters, || {
        encode_buf.clear();
        Frame::encode_into(black_box(&msg), &mut encode_buf);
        black_box(encode_buf.as_slice());
    });
    assert_eq!(
        encode_reuse.1, 0.0,
        "warmed Frame::encode_into must be allocation-free"
    );
    rows.push(row("encode_update_reuse_100k", payload.len(), encode_reuse));

    // The chunk codec over the inputs the line differ cannot handle: a
    // 10 MB single-line file and a 10 MB binary blob, each with a 1 KB
    // splice. The reuse rows are the steady-state path and must be
    // allocation-free; wire size must stay proportional to the edit.
    let chunk_iters = if shadow_bench::quick_mode() { 5 } else { 40 };
    for (label, binary) in [("single_line", false), ("binary", true)] {
        let (cbase, cedit) = big_blob_pair(binary, if binary { 11 } else { 9 });
        let mut delta = Vec::new();
        rows.push(row(
            &format!("chunk_diff_10m_{label}"),
            cbase.len(),
            measure(chunk_iters, || {
                let mut scratch = DiffScratch::new();
                let mut out = Vec::new();
                black_box(chunk_delta_into(
                    black_box(&cbase),
                    black_box(&cedit),
                    &mut scratch,
                    &mut out,
                ));
                black_box(out.as_slice());
            }),
        ));
        let mut cscratch = DiffScratch::new();
        chunk_delta_into(&cbase, &cedit, &mut cscratch, &mut delta); // warm
        let reuse = measure(chunk_iters, || {
            black_box(chunk_delta_into(
                black_box(&cbase),
                black_box(&cedit),
                &mut cscratch,
                &mut delta,
            ));
            black_box(delta.as_slice());
        });
        assert_eq!(
            reuse.1, 0.0,
            "warmed chunk_delta_into must be allocation-free ({label})"
        );
        rows.push(row(
            &format!("chunk_diff_reuse_10m_{label}"),
            cbase.len(),
            reuse,
        ));
        assert!(
            delta.len() <= 10 * 1024,
            "10 MB {label} with a 1 KB edit must ship <= 10x the edit ({} bytes)",
            delta.len()
        );
        rows.push(row(
            &format!("chunk_apply_10m_{label}"),
            cbase.len(),
            measure(chunk_iters, || {
                black_box(apply_chunk_delta(black_box(&cbase), black_box(&delta)).unwrap());
            }),
        ));
    }

    shadow_bench::export_rows("micro", rows);
}
