//! **Ablation B (§8.3)** — differential-comparison algorithm choice.
//!
//! "There are different algorithms proposed to compute the differences
//! between two files [MM85, Tic84]. We will study these algorithms and
//! adopt the one that offers better performance." This Criterion bench
//! measures real CPU time and delta size for:
//!
//! * Hunt–McIlroy (the prototype's `diff`(1) algorithm),
//! * Myers O(ND) linear-space (Miller–Myers [MM85] family),
//! * Tichy block-move ([Tic84], byte-level).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use shadow::{
    apply_chunk_delta, chunk_delta_into, diff, diff_docs, DiffAlgorithm, DiffScratch, DocBuf,
    Document, EditModel, FileSpec,
};
use shadow::block_diff;

fn bench_diff_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_algorithms");
    for &size in &[10_000usize, 100_000] {
        for &fraction in &[0.01f64, 0.20] {
            let base = shadow::generate_file(&FileSpec::new(size, 42));
            let edited = EditModel::fraction(fraction, 43).apply(&base);
            let old_doc = Document::from_bytes(base.clone());
            let new_doc = Document::from_bytes(edited.clone());
            let old_buf = DocBuf::from_bytes(base.clone());
            let new_buf = DocBuf::from_bytes(edited.clone());
            group.throughput(Throughput::Bytes(size as u64));
            let label = format!("{}b_{}pct", size, (fraction * 100.0) as u32);

            group.bench_with_input(
                BenchmarkId::new("hunt_mcilroy", &label),
                &(&old_doc, &new_doc),
                |b, (o, n)| b.iter(|| diff(DiffAlgorithm::HuntMcIlroy, o, n)),
            );
            group.bench_with_input(
                BenchmarkId::new("myers", &label),
                &(&old_doc, &new_doc),
                |b, (o, n)| b.iter(|| diff(DiffAlgorithm::Myers, o, n)),
            );
            // The same two LCS algorithms through the zero-copy pipeline
            // with a reused scratch — the steady-state production path.
            let mut hm_scratch = DiffScratch::new();
            group.bench_with_input(
                BenchmarkId::new("hunt_mcilroy_zerocopy", &label),
                &(&old_buf, &new_buf),
                |b, (o, n)| {
                    b.iter(|| diff_docs(DiffAlgorithm::HuntMcIlroy, o, n, &mut hm_scratch))
                },
            );
            let mut my_scratch = DiffScratch::new();
            group.bench_with_input(
                BenchmarkId::new("myers_zerocopy", &label),
                &(&old_buf, &new_buf),
                |b, (o, n)| b.iter(|| diff_docs(DiffAlgorithm::Myers, o, n, &mut my_scratch)),
            );
            group.bench_with_input(
                BenchmarkId::new("tichy_blockmove", &label),
                &(&base, &edited),
                |b, (o, n)| b.iter(|| block_diff(o, n)),
            );

            // Report delta sizes once per configuration (the wire cost the
            // service actually pays).
            let hm = diff(DiffAlgorithm::HuntMcIlroy, &old_doc, &new_doc).wire_len();
            let my = diff(DiffAlgorithm::Myers, &old_doc, &new_doc).wire_len();
            let bm = block_diff(&base, &edited).wire_len();
            println!(
                "delta sizes {label}: hunt-mcilroy={hm}B myers={my}B tichy={bm}B (file {size}B)"
            );
        }
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_delta");
    let base = shadow::generate_file(&FileSpec::new(100_000, 42));
    let edited = EditModel::fraction(0.05, 43).apply(&base);
    let old_doc = Document::from_bytes(base.clone());
    let script = diff(DiffAlgorithm::HuntMcIlroy, &old_doc, &Document::from_bytes(edited));
    group.throughput(Throughput::Bytes(base.len() as u64));
    group.bench_function("ed_script_100k_5pct", |b| {
        b.iter(|| script.apply(&old_doc).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_diff_algorithms, bench_apply);

fn main() {
    benches();
    // Export the deterministic wire-cost comparison (the figure the
    // service actually pays per algorithm) machine-readably. The
    // zero-copy column must equal the legacy column byte for byte — the
    // pipelines emit identical scripts; any divergence here is a bug.
    let mut rows = Vec::new();
    let mut scratch = DiffScratch::new();
    for &size in &[10_000usize, 100_000] {
        for &fraction in &[0.01f64, 0.20] {
            let base = shadow::generate_file(&FileSpec::new(size, 42));
            let edited = EditModel::fraction(fraction, 43).apply(&base);
            let old_doc = Document::from_bytes(base.clone());
            let new_doc = Document::from_bytes(edited.clone());
            let old_buf = DocBuf::from_bytes(base.clone());
            let new_buf = DocBuf::from_bytes(edited.clone());
            let hm = diff(DiffAlgorithm::HuntMcIlroy, &old_doc, &new_doc).wire_len();
            let hm_zero =
                diff_docs(DiffAlgorithm::HuntMcIlroy, &old_buf, &new_buf, &mut scratch)
                    .wire_len();
            assert_eq!(hm, hm_zero, "pipelines disagree on wire cost");
            rows.push(
                shadow_obs::Json::object()
                    .with("file_bytes", size)
                    .with("fraction", fraction)
                    .with("hunt_mcilroy_bytes", hm)
                    .with("hunt_mcilroy_zerocopy_bytes", hm_zero)
                    .with(
                        "myers_bytes",
                        diff(DiffAlgorithm::Myers, &old_doc, &new_doc).wire_len(),
                    )
                    .with("tichy_bytes", block_diff(&base, &edited).wire_len()),
            );
        }
    }
    // Large and binary files (§8.3 extension): on a 10 MB single-line
    // file the line differ's wire cost collapses to a full transfer,
    // while the chunk codec ships bytes proportional to the 1 KB edit.
    // Random binary data happens to contain accidental newlines, so the
    // line differ's *wire* cost can stay small there — the classifier
    // still routes NUL-bearing files to the chunk codec because nothing
    // guarantees that structure (a blob with few/no newlines degenerates
    // exactly like the single-line row). One row per shape, with the
    // three candidate transfer strategies side by side against the edit.
    let big_len = if shadow_bench::quick_mode() {
        2 * 1024 * 1024
    } else {
        10 * 1024 * 1024
    };
    for (shape, binary) in [("single_line", false), ("binary", true)] {
        let (base, edited) = shadow_bench::blob_pair(big_len, binary, if binary { 11 } else { 9 });
        let old_buf = DocBuf::from_bytes(base.clone());
        let new_buf = DocBuf::from_bytes(edited.clone());
        let line_bytes = diff_docs(DiffAlgorithm::HuntMcIlroy, &old_buf, &new_buf, &mut scratch)
            .to_text()
            .len();
        let mut delta = Vec::new();
        let stats = chunk_delta_into(&base, &edited, &mut scratch, &mut delta);
        assert_eq!(
            apply_chunk_delta(&base, &delta).unwrap(),
            edited,
            "chunk delta must reproduce the edited {shape} blob"
        );
        let edit_bytes = 1024usize;
        println!(
            "large-file wire cost {shape} ({big_len}B, {edit_bytes}B edit): \
             line={line_bytes}B chunk={}B full={}B ({} chunk ops)",
            delta.len(),
            edited.len(),
            stats.ops
        );
        rows.push(
            shadow_obs::Json::object()
                .with("file_bytes", big_len)
                .with("shape", shape)
                .with("edit_bytes", edit_bytes)
                .with("line_bytes", line_bytes)
                .with("chunk_bytes", delta.len())
                .with("full_transfer_bytes", edited.len()),
        );
    }
    shadow_bench::export_rows("ablation_diff_algos", rows);
}
