//! **Figure 2** — ARPANET transfer times (Purdue → Univ. of Illinois).
//!
//! Same experiment as Figure 1 over the 56 Kbps ARPANET, whose effective
//! per-user throughput the paper found far below line rate due to sharing
//! and congestion [Nag84]. Paper anchor: F-time(500k) ≈ 600 s even on the
//! "fast" network — which is why shadow processing matters beyond slow
//! lines.

use shadow::experiment::{figure_rows, render_figure};
use shadow::{profiles, CpuModel, PAPER_PERCENTS_FIG1, PAPER_SIZES_FIG1};
use shadow_bench::{banner, export_rows, quick_mode};

fn main() {
    banner(
        "Figure 2: ARPANET transfer times to Univ. of Illinois (56 Kbps)",
        "S-time = shadow resubmission, F-time = conventional full transfer",
    );
    let sizes: &[usize] = if quick_mode() {
        &[100_000]
    } else {
        &PAPER_SIZES_FIG1
    };
    let fractions: &[f64] = if quick_mode() {
        &[0.01, 0.20]
    } else {
        &PAPER_PERCENTS_FIG1
    };
    let points = figure_rows(&profiles::arpanet(), sizes, fractions, CpuModel::default());
    print!("{}", render_figure("ARPANET, sizes 100k/200k/500k", &points));
    export_rows("fig2_arpanet", points.iter().map(|p| p.to_json()).collect());
}
