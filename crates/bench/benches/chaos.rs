//! **Chaos suite** — the seeded fault matrix over the reconnect/resume
//! machinery: does a session survive link churn with its delta path
//! warm, and how long does a recovery take?
//!
//! Three row families, each a full client/server deployment under a
//! different fault regime:
//!
//! * `chaos_reset_storm` — a [`FaultTransport`] hard-resets the link on
//!   a schedule, over and over; every outage must end in a resumed
//!   session whose next submission travels as a delta.
//! * `chaos_lossy_link` — the client roams onto a link that drops,
//!   duplicates, and reorders frames. The resume handshake retries
//!   until a `Hello` survives, heartbeats count their losses, and the
//!   fail-over back to a clean link must still find the cache warm.
//! * `chaos_partition` — a TCP [`ChaosProxy`] partitions the network
//!   mid-session; the [`Supervisor`] redials with capped backoff into
//!   the refusing proxy until the partition heals.
//!
//! Every fault decision comes from a seeded generator, so a row is the
//! same run-to-run: the matrix is chaos *testing*, not flakiness.
//! Exports `BENCH_chaos.json`; `chaos_guard` gates the recovered-as-
//! delta ratio and the recovery latency against the committed
//! `BENCH_baseline_chaos.json`.

use std::time::{Duration, Instant};

use shadow::tcp::TcpFramed;
use shadow::{
    ChaosProxy, ClientConfig, Deployment, FaultPlan, FaultTransport, FileRef, FrameTransport,
    LiveClient, LiveError, Notification, ServerConfig, SubmitOptions, Supervisor, SupervisorConfig,
    SupervisorEvent,
};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;
use shadow_proto::FileId;

const WAIT: Duration = Duration::from_secs(10);

/// Idle window for TCP deployments: long enough that an outage plus the
/// whole redial dance never looks like a drained server.
const SERVER_IDLE: Duration = Duration::from_secs(2);

/// Scheduled reset point: comfortably past the handshake plus one
/// cycle's workload, so every reset lands in the heartbeat phase.
const RESET_AFTER: u64 = 64;

fn data_ref(tag: &str) -> FileRef {
    FileRef::new(FileId::new(2), format!("{tag}:/data"))
}

fn job_ref(tag: &str) -> FileRef {
    FileRef::new(FileId::new(1), format!("{tag}:/run.job"))
}

/// What one trial observed; rows aggregate these across seeds.
#[derive(Default)]
struct Trial {
    /// Link losses that required a resumption to recover from.
    outages: u64,
    /// Resumptions the server confirmed (`SessionReady { resumed }`).
    recovered: u64,
    /// Post-recovery submissions (each must travel as a delta).
    resubmits: u64,
    /// Resume handshakes retried because the lossy link ate the Hello.
    handshake_retries: u64,
    /// Heartbeats that never saw their pong.
    pings_missed: u64,
    /// Redial attempts refused while the network was partitioned.
    refused_dials: u64,
    /// Wall-clock nanoseconds per recovery (loss observed → resumed).
    recovery_ns: Vec<f64>,
    /// Client counters after the trial.
    deltas_sent: u64,
    resume_hits: u64,
    resume_fallbacks: u64,
    reconnects: u64,
}

/// The warm-up half of every trial: a data file large enough that the
/// adaptive policy always prefers a delta for a small edit, a job over
/// it, and the first full transfer + execution.
fn warm<T: FrameTransport>(client: &mut LiveClient<T>, tag: &str) -> Vec<u8> {
    client.wait_ready(WAIT).expect("handshake");
    let content: Vec<u8> = (0..2000)
        .flat_map(|i| format!("row {i} of {tag}\n").into_bytes())
        .collect();
    client.edit_finished(&data_ref(tag), content.clone());
    client.edit_finished(&job_ref(tag), format!("wc {tag}:/data\n").into_bytes());
    client
        .submit(
            &job_ref(tag),
            std::slice::from_ref(&data_ref(tag)),
            SubmitOptions::default(),
        )
        .expect("first submit");
    client.wait_job(WAIT).expect("first job");
    content
}

/// One post-recovery submission: append a line and resubmit. The edit
/// is small against a warm base, so it must travel as a delta — the
/// guard checks `deltas_sent` against `resubmits`.
fn resubmit<T: FrameTransport>(client: &mut LiveClient<T>, tag: &str, content: &mut Vec<u8>) {
    content.extend_from_slice(format!("appended after an outage in {tag}\n").as_bytes());
    client.edit_finished(&data_ref(tag), content.clone());
    client
        .submit(
            &job_ref(tag),
            std::slice::from_ref(&data_ref(tag)),
            SubmitOptions::default(),
        )
        .expect("resubmit");
    client.wait_job(WAIT).expect("job after recovery");
}

/// Heartbeats with strictly increasing nonces until the dead link
/// surfaces as a transport close. Exact-nonce matching keeps stale
/// pongs (duplicated by an earlier lossy window) from satisfying a
/// later wait.
fn ping_until_closed<T: FrameTransport>(client: &mut LiveClient<T>, nonce: &mut u64) {
    let deadline = Instant::now() + WAIT;
    loop {
        assert!(Instant::now() < deadline, "link loss was never observed");
        *nonce += 1;
        let n = *nonce;
        let outcome = client.ping(n).and_then(|()| {
            client
                .wait_for(Duration::from_millis(50), move |x| {
                    matches!(x, Notification::Pong { nonce, .. } if *nonce == n)
                })
            .map(|_| ())
        });
        match outcome {
            Ok(()) | Err(LiveError::Timeout) => {}
            Err(e) if e.closed().is_some() => return,
            Err(e) => panic!("expected a transport close, got: {e}"),
        }
    }
}

/// Proves a freshly resumed link end-to-end (one pong with the exact
/// nonce), then drains any `SessionReady` a duplicated `HelloAck` left
/// queued — later waits must only ever see notifications of their own
/// handshake.
fn settle_link<T: FrameTransport>(client: &mut LiveClient<T>, nonce: &mut u64) {
    for _ in 0..64 {
        *nonce += 1;
        let n = *nonce;
        client.ping(n).expect("ping on a resumed link");
        let pong = client.wait_for(Duration::from_millis(100), move |x| {
            matches!(x, Notification::Pong { nonce, .. } if *nonce == n)
        });
        if pong.is_ok() {
            while client
                .wait_for(Duration::from_millis(1), |x| {
                    matches!(x, Notification::SessionReady { .. })
                })
                .is_ok()
            {}
            return;
        }
    }
    panic!("a resumed link never answered a heartbeat");
}

fn is_resumed(ready: &Notification) -> bool {
    matches!(ready, Notification::SessionReady { resumed: true, .. })
}

/// Folds the client's report counters into the trial.
fn harvest<T: FrameTransport>(trial: &mut Trial, client: &LiveClient<T>) {
    let report = client.report();
    trial.deltas_sent = report.counter("client", "deltas_sent");
    trial.resume_hits = report.counter("client", "resume_hits");
    trial.resume_fallbacks = report.counter("client", "resume_fallbacks");
    trial.reconnects = report.counter("client", "reconnects");
}

/// `chaos_reset_storm`: every transport carries a scheduled hard reset;
/// each cycle walks into it, resumes over the next doomed transport,
/// and resubmits as a delta.
fn reset_storm_trial(seed: u64, cycles: usize) -> Trial {
    let system = Deployment::new(ServerConfig::new("sc")).pipes().unwrap();
    let plan = |s: u64| FaultPlan {
        reset_after_sends: Some(RESET_AFTER),
        ..FaultPlan::none(s)
    };
    let tag = format!("ws{seed}");
    let transport = FaultTransport::new(system.connect_transport(), plan(seed));
    let mut client =
        LiveClient::over_transport(ClientConfig::new(tag.clone(), seed), transport).unwrap();
    let mut content = warm(&mut client, &tag);

    let mut trial = Trial::default();
    let mut nonce = 0u64;
    for cycle in 0..cycles {
        ping_until_closed(&mut client, &mut nonce);
        trial.outages += 1;
        let started = Instant::now();
        client.link_down();
        let fresh = FaultTransport::new(
            system.connect_transport(),
            plan(seed.wrapping_mul(31).wrapping_add(cycle as u64 + 1)),
        );
        client.resume_over(fresh).expect("resume handshake");
        let ready = client
            .wait_for(WAIT, |n| matches!(n, Notification::SessionReady { .. }))
            .expect("resumed session");
        assert!(is_resumed(&ready), "seed {seed}: resumption must be confirmed");
        trial.recovered += 1;
        trial.recovery_ns.push(started.elapsed().as_nanos() as f64);
        resubmit(&mut client, &tag, &mut content);
        trial.resubmits += 1;
    }
    harvest(&mut trial, &client);
    drop(client);
    system.shutdown();
    trial
}

/// `chaos_lossy_link`: each cycle roams onto a link that drops (15%),
/// duplicates (10%), and reorders (10%) frames — the resume handshake
/// retries until a Hello survives, heartbeats tally their losses, and
/// the fail-over back to a clean link must still resubmit as a delta.
fn lossy_link_trial(seed: u64, cycles: usize, pings: usize) -> Trial {
    let system = Deployment::new(ServerConfig::new("sc")).pipes().unwrap();
    let tag = format!("ws{seed}");
    let clean = |s: u64| FaultPlan::none(s);
    let lossy = |s: u64| FaultPlan {
        drop_per_mille: 150,
        dup_per_mille: 100,
        delay_per_mille: 100,
        ..FaultPlan::none(s)
    };
    let transport = FaultTransport::new(system.connect_transport(), clean(seed));
    let mut client =
        LiveClient::over_transport(ClientConfig::new(tag.clone(), seed), transport).unwrap();
    let mut content = warm(&mut client, &tag);

    let mut trial = Trial::default();
    let mut nonce = 0u64;
    for cycle in 0..cycles {
        // Roam onto the lossy link: retry the resume handshake until a
        // Hello makes it through the drops.
        client.link_down();
        trial.outages += 1;
        let started = Instant::now();
        let mut attempt = 0u64;
        loop {
            attempt += 1;
            assert!(attempt <= 32, "seed {seed}: resume never survived the loss");
            let mix = seed
                .wrapping_mul(1_000)
                .wrapping_add(cycle as u64 * 37)
                .wrapping_add(attempt);
            let flaky = FaultTransport::new(system.connect_transport(), lossy(mix));
            if client.resume_over(flaky).is_err() {
                client.link_down();
                continue;
            }
            match client.wait_for(Duration::from_millis(300), |n| {
                matches!(n, Notification::SessionReady { .. })
            }) {
                Ok(ready) => {
                    assert!(is_resumed(&ready));
                    break;
                }
                Err(_) => client.link_down(),
            }
        }
        trial.handshake_retries += attempt - 1;
        trial.recovered += 1;
        trial.recovery_ns.push(started.elapsed().as_nanos() as f64);
        settle_link(&mut client, &mut nonce);

        // Heartbeat through the loss window; a dropped ping is a miss,
        // never a failure.
        for _ in 0..pings {
            nonce += 1;
            let n = nonce;
            client.ping(n).expect("ping on the lossy link");
            let pong = client.wait_for(Duration::from_millis(30), move |x| {
                matches!(x, Notification::Pong { nonce, .. } if *nonce == n)
            });
            if pong.is_err() {
                trial.pings_missed += 1;
            }
        }

        // Enough misses: declare the flaky link dead and fail over to a
        // clean one. The cache knowledge must have survived the chaos.
        client.link_down();
        trial.outages += 1;
        let started = Instant::now();
        let fresh = FaultTransport::new(
            system.connect_transport(),
            clean(seed.wrapping_add(0xabc + cycle as u64)),
        );
        client.resume_over(fresh).expect("fail-over handshake");
        let ready = client
            .wait_for(WAIT, |n| matches!(n, Notification::SessionReady { .. }))
            .expect("failed-over session");
        assert!(is_resumed(&ready));
        trial.recovered += 1;
        trial.recovery_ns.push(started.elapsed().as_nanos() as f64);
        settle_link(&mut client, &mut nonce);
        resubmit(&mut client, &tag, &mut content);
        trial.resubmits += 1;
    }
    harvest(&mut trial, &client);
    drop(client);
    system.shutdown();
    trial
}

/// Drives the supervisor's policy clock (virtual time — TCP dials are
/// instant on loopback) until a dial succeeds.
fn redial<N: shadow::Connector>(sup: &mut Supervisor<N>, mut now_ms: u64) -> (N::Transport, u64) {
    for _ in 0..64 {
        match sup.poll(now_ms) {
            Some(SupervisorEvent::Connected { .. }) => {
                return (sup.take_transport().expect("fresh dial"), now_ms);
            }
            Some(SupervisorEvent::DialFailed { retry_at_ms }) => now_ms = retry_at_ms,
            Some(_) => {}
            None => now_ms = sup.next_deadline_ms(),
        }
    }
    panic!("supervisor never reconnected");
}

/// `chaos_partition`: a TCP proxy partitions the network mid-session —
/// live connections are cut and fresh dials are accepted only to be
/// dropped — so redials connect and immediately die until the partition
/// heals. The supervisor's backoff paces the attempts; the session then
/// resumes and resubmits as a delta.
fn partition_trial(seed: u64) -> Trial {
    let runtime = Deployment::new(ServerConfig::new("sc"))
        .tcp("127.0.0.1:0")
        .unwrap();
    let addr = runtime.local_addr().unwrap();
    let server = std::thread::spawn(move || runtime.run_until_idle_for(SERVER_IDLE));
    let proxy = ChaosProxy::start(addr).unwrap();
    let proxy_addr = proxy.addr();

    let mut sup = Supervisor::new(
        move || TcpFramed::connect(proxy_addr),
        SupervisorConfig {
            base_backoff_ms: 10,
            max_backoff_ms: 200,
            seed,
            ..SupervisorConfig::default()
        },
    );
    let (transport, mut now_ms) = redial(&mut sup, 0);
    let tag = format!("ws{seed}");
    let mut client =
        LiveClient::over_transport(ClientConfig::new(tag.clone(), seed), transport).unwrap();
    let mut content = warm(&mut client, &tag);

    let mut trial = Trial::default();
    let mut nonce = 0u64;
    proxy.partition(true);
    ping_until_closed(&mut client, &mut nonce);
    trial.outages += 1;
    let started = Instant::now();
    client.link_down();
    now_ms = sup.link_failed(now_ms + 1);
    loop {
        let (fresh, at) = redial(&mut sup, now_ms);
        now_ms = at;
        let outcome = client
            .resume_over(fresh)
            .and_then(|()| client.wait_for(Duration::from_secs(2), |n| {
                matches!(n, Notification::SessionReady { .. })
            }));
        match outcome {
            Ok(ready) => {
                assert!(is_resumed(&ready), "seed {seed}: partition recovery must resume");
                break;
            }
            Err(_) => {
                // The partitioned proxy accepted the dial only to drop
                // it; after two refusals the network heals.
                trial.refused_dials += 1;
                assert!(trial.refused_dials <= 32, "partition recovery never converged");
                if trial.refused_dials == 2 {
                    proxy.partition(false);
                }
                client.link_down();
                now_ms = sup.link_failed(now_ms + 1);
            }
        }
    }
    trial.recovered += 1;
    trial.recovery_ns.push(started.elapsed().as_nanos() as f64);
    resubmit(&mut client, &tag, &mut content);
    trial.resubmits += 1;
    harvest(&mut trial, &client);
    drop(client);
    server.join().unwrap().unwrap();
    trial
}

/// Aggregates trials into one exported row.
fn row(op: &str, trials: &[Trial]) -> Json {
    let sum = |f: fn(&Trial) -> u64| trials.iter().map(f).sum::<u64>();
    let outages = sum(|t| t.outages);
    let resubmits = sum(|t| t.resubmits);
    let deltas = sum(|t| t.deltas_sent);
    let all_ns: Vec<f64> = trials.iter().flat_map(|t| t.recovery_ns.clone()).collect();
    let mean_ns = all_ns.iter().sum::<f64>() / all_ns.len().max(1) as f64;
    let max_ns = all_ns.iter().fold(0.0f64, |a, &b| a.max(b));
    let ratio = deltas as f64 / resubmits.max(1) as f64;
    println!(
        "{op:<20} {:>2} sessions {outages:>3} outages {:>3} recovered   delta ratio {ratio:>5.2}   recovery {:>8.2} ms mean / {:>8.2} ms max",
        trials.len(),
        sum(|t| t.recovered),
        mean_ns / 1e6,
        max_ns / 1e6,
    );
    Json::object()
        .with("op", op)
        .with("sessions", trials.len())
        .with("outages", outages)
        .with("recovered", sum(|t| t.recovered))
        .with("resubmits", resubmits)
        .with("deltas_sent", deltas)
        .with("delta_ratio", ratio)
        .with("resume_hits", sum(|t| t.resume_hits))
        .with("resume_fallbacks", sum(|t| t.resume_fallbacks))
        .with("reconnects", sum(|t| t.reconnects))
        .with("handshake_retries", sum(|t| t.handshake_retries))
        .with("pings_missed", sum(|t| t.pings_missed))
        .with("refused_dials", sum(|t| t.refused_dials))
        .with("recovery_ms_mean", mean_ns / 1e6)
        .with("recovery_ms_max", max_ns / 1e6)
        .with("ns_per_op", mean_ns)
}

fn main() {
    banner(
        "Chaos suite: reconnect/resume under a seeded fault matrix",
        "scheduled resets, a lossy link, a healed partition (DESIGN.md \u{a7}15)",
    );
    let (seeds, cycles, pings) = if quick_mode() {
        (2u64, 2usize, 12usize)
    } else {
        (3, 3, 25)
    };
    let seed_range = || (1..=seeds).map(|s| s * 7 + 1);

    let rows = vec![
        row(
            "chaos_reset_storm",
            &seed_range()
                .map(|s| reset_storm_trial(s, cycles))
                .collect::<Vec<_>>(),
        ),
        row(
            "chaos_lossy_link",
            &seed_range()
                .map(|s| lossy_link_trial(s, cycles, pings))
                .collect::<Vec<_>>(),
        ),
        row(
            "chaos_partition",
            &seed_range().map(partition_trial).collect::<Vec<_>>(),
        ),
    ];

    export_rows("chaos", rows);
    println!();
    println!("expected shape: recovered == outages everywhere; every post-recovery");
    println!("submission is a delta (ratio 1.0, zero resume fallbacks); recovery is");
    println!("milliseconds, dominated by loss detection, not by the handshake.");
}
