//! **Durable store recovery** — what durability costs on the write path
//! and what it buys back at restart.
//!
//! Three questions, three row families:
//!
//! * `journal_append_submit` — the per-submission write-path overhead:
//!   one submit journals roughly three records (job file, data file,
//!   output), so this is the price `durable(..)` adds to every job.
//! * `replay_1k` / `replay_10k` — cold-start time with a journal of N
//!   records and compaction effectively off: the worst-case tail a
//!   crash immediately after N appends must replay.
//! * `replay_compacted_10k` — the same 10k-record history journaled
//!   with the default compaction interval: snapshots collapse each
//!   domain to its live state, so replay reads a bounded prefix instead
//!   of the whole history.
//!
//! Exports `BENCH_recovery.json`; `recovery_guard` compares the rows
//! against the committed `BENCH_baseline_recovery.json`.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use bytes::Bytes;
use shadow::{DurableStore, ServerConfig, ServerNode};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;
use shadow_proto::{DomainId, FileId, FileKey, JobId, PersistRecord, VersionNumber};
use shadow_runtime::PersistSink;

/// Domains the synthetic history is spread over — enough to give
/// compaction per-domain work without drowning the run in directories.
const DOMAINS: u64 = 16;
/// Payload bytes per cached version (a small source file).
const CONTENT_LEN: usize = 1024;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shadow-bench-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn content(seed: usize) -> Bytes {
    let line = format!("line of shadowed content {seed}\n");
    let mut buf = Vec::with_capacity(CONTENT_LEN + line.len());
    while buf.len() < CONTENT_LEN {
        buf.extend_from_slice(line.as_bytes());
    }
    Bytes::from(buf)
}

/// The i-th record of the synthetic history: rotating domains, a few
/// files per domain, versions climbing as edits arrive.
fn record(i: usize) -> PersistRecord {
    let domain = DomainId::new(1 + (i as u64 % DOMAINS));
    let file = FileId::new(1 + (i as u64 / DOMAINS) % 4);
    let version = VersionNumber::new(1 + (i as u64 / (DOMAINS * 4)));
    PersistRecord::CacheFull {
        key: FileKey::new(domain, file),
        version,
        content: content(i),
    }
}

/// One submission's worth of journal traffic: the job file, a data
/// file, and the job's output.
fn submit_records(i: usize) -> [PersistRecord; 3] {
    let domain = DomainId::new(1 + (i as u64 % DOMAINS));
    let version = VersionNumber::new(1 + i as u64);
    [
        PersistRecord::CacheFull {
            key: FileKey::new(domain, FileId::new(1)),
            version,
            content: Bytes::from_static(b"wc ws:/galaxy.dat\n"),
        },
        PersistRecord::CacheFull {
            key: FileKey::new(domain, FileId::new(2)),
            version,
            content: content(i),
        },
        PersistRecord::Output {
            domain,
            job_file: FileId::new(1),
            job: JobId::new(1 + i as u64),
            content: content(i + 1),
        },
    ]
}

/// Appends `n` records journaled `compact_every` apart, returning the
/// store root and the on-disk footprint in bytes.
fn build_journal(tag: &str, n: usize, compact_every: usize) -> (PathBuf, u64) {
    let root = scratch_dir(tag);
    let mut store = DurableStore::open(&root)
        .expect("open store")
        .with_compact_every(compact_every);
    for i in 0..n {
        store.persist(&record(i));
    }
    drop(store);
    let mut bytes = 0;
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("scan store") {
            let entry = entry.expect("entry");
            let meta = entry.metadata().expect("metadata");
            if meta.is_dir() {
                stack.push(entry.path());
            } else {
                bytes += meta.len();
            }
        }
    }
    (root, bytes)
}

/// Times a cold start over `root`: open (which replays segments), then
/// materialize and restore into a fresh server node. Returns
/// `(millis, records_restored)`.
fn time_replay(root: &PathBuf) -> (f64, usize) {
    let start = Instant::now();
    let store = DurableStore::open(root).expect("reopen store");
    let recovered = store.recovered();
    let mut node = ServerNode::new(ServerConfig::new("superc"));
    let summary = node.restore(&recovered);
    let elapsed = start.elapsed();
    assert!(summary.applied > 0, "replay must restore state");
    (elapsed.as_secs_f64() * 1000.0, store.summary().replayed())
}

fn main() {
    banner(
        "Durable store recovery: append overhead, replay time, compaction win",
        "per-domain write-ahead journals + snapshot compaction (DESIGN.md \u{a7}14)",
    );
    let (submits, replay_small, replay_large) = if quick_mode() {
        (300usize, 1_000usize, 4_000usize)
    } else {
        (3_000, 1_000, 10_000)
    };
    let mut rows = Vec::new();

    // Write path: one submission = three journaled records.
    let root = scratch_dir("append");
    let mut store = DurableStore::open(&root).expect("open store");
    let start = Instant::now();
    for i in 0..submits {
        for r in submit_records(i) {
            store.persist(&r);
        }
    }
    let elapsed = start.elapsed();
    let ns_per_submit = elapsed.as_nanos() as f64 / submits as f64;
    drop(store);
    let _ = fs::remove_dir_all(&root);
    println!(
        "{:<22} {submits:>7} submits   {:>10.1} ns/submit ({:.1} us)",
        "journal_append_submit",
        ns_per_submit,
        ns_per_submit / 1000.0
    );
    rows.push(
        Json::object()
            .with("op", "journal_append_submit")
            .with("submits", submits)
            .with("records", submits * 3)
            .with("ns_per_op", ns_per_submit),
    );

    // Replay: worst-case tails (compaction off) at two journal depths,
    // then the same large history with default compaction.
    let uncompacted = usize::MAX;
    let mut compaction_base = 0.0f64;
    for (op, n, compact_every) in [
        ("replay_1k", replay_small, uncompacted),
        ("replay_10k", replay_large, uncompacted),
        ("replay_compacted_10k", replay_large, shadow::DEFAULT_COMPACT_EVERY),
    ] {
        let (root, disk_bytes) = build_journal(op, n, compact_every);
        let (ms, replayed) = time_replay(&root);
        let _ = fs::remove_dir_all(&root);
        let ns_per_record = ms * 1_000_000.0 / n as f64;
        if op == "replay_10k" {
            compaction_base = ms;
        }
        let note = if op == "replay_compacted_10k" && compaction_base > 0.0 {
            format!("   ({:.1}x faster than uncompacted)", compaction_base / ms.max(1e-9))
        } else {
            String::new()
        };
        println!(
            "{op:<22} {n:>7} records   {ms:>10.2} ms   {replayed:>6} replayed   {:>9} KiB on disk{note}",
            disk_bytes / 1024
        );
        rows.push(
            Json::object()
                .with("op", op)
                .with("records", n)
                .with("replay_ms", ms)
                .with("replayed", replayed)
                .with("disk_bytes", disk_bytes)
                .with("ns_per_op", ns_per_record),
        );
    }

    export_rows("recovery", rows);
    println!();
    println!("expected shape: appends are sequential writes (microseconds each);");
    println!("uncompacted replay grows linearly with journal depth; compaction");
    println!("bounds replay by live state, not history length.");
}
