//! **Figure 3** — speedup-factor table (ARPANET).
//!
//! Paper values (speedup = F-time / S-time, data gathered from ARPANET):
//!
//! | File size | 1% | 5% | 10% | 20% |
//! |---|---|---|---|---|
//! | 10 K  | 13.5 |  9.3 | 6.5 | 3.7 |
//! | 50 K  | 22.5 | 11.9 | 7.1 | 4.3 |
//! | 100 K | 24.2 | 12.0 | 7.5 | 4.3 |
//! | 500 K | 24.9 | 12.5 | 7.6 | 4.3 |
//!
//! The shape to reproduce: speedup falls with the modified fraction,
//! grows with file size, and *saturates* for large files (the client-side
//! differential comparison is itself O(file size)).

use shadow::experiment::{figure_rows, render_speedup_table};
use shadow::{profiles, CpuModel, PAPER_PERCENTS_FIG3, PAPER_SIZES_FIG3};
use shadow_bench::{banner, export_rows, quick_mode};

fn main() {
    banner(
        "Figure 3: speedup factors F-time/S-time (ARPANET)",
        "paper: 13.5-24.9x at 1% modified, 3.7-4.3x at 20% modified",
    );
    let sizes: &[usize] = if quick_mode() {
        &[10_000, 100_000]
    } else {
        &PAPER_SIZES_FIG3
    };
    let points = figure_rows(
        &profiles::arpanet(),
        sizes,
        &PAPER_PERCENTS_FIG3,
        CpuModel::default(),
    );
    print!("{}", render_speedup_table(&points, &PAPER_PERCENTS_FIG3));
    export_rows("fig3_speedup", points.iter().map(|p| p.to_json()).collect());
    println!();
    println!("(paper reported: 1%: 13.5/22.5/24.2/24.9, 5%: 9.3/11.9/12.0/12.5,");
    println!(" 10%: 6.5/7.1/7.5/7.6, 20%: 3.7/4.3/4.3/4.3)");
}
