//! **Ablation F (§2.1/§5.2)** — many clients sharing one supercomputer.
//!
//! "Because a supercomputer serves several users, it is likely to be
//! swamped with several such remote login and file transfer sessions" —
//! and under request-driven flow "if the remote host serves several
//! clients, it may get overrun by such updates". This harness puts N
//! clients through simultaneous edit-submit cycles against one server and
//! compares conventional (request-driven full pushes) with shadow
//! processing: total payload into the server and the last job's
//! completion time.

use shadow::{
    profiles, ClientConfig, CpuModel, EditModel, FileSpec, ServerConfig, SimTime, Simulation,
    SubmitOptions, TransferMode,
};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;

fn run(mode: TransferMode, clients: usize, rounds: usize) -> (f64, u64, u64) {
    let mut sim = Simulation::new(1).with_cpu(CpuModel::default());
    let server = sim.add_server(
        "superc",
        ServerConfig::new("superc").with_max_running(2),
    );
    let mut handles = Vec::new();
    for i in 0..clients {
        let host = format!("ws{i}");
        let config = match mode {
            TransferMode::Shadow => ClientConfig::new(host.clone(), 1),
            TransferMode::Conventional => ClientConfig::new(host.clone(), 1).conventional(),
        };
        let client = sim.add_client(&host, config);
        let conn = sim.connect(client, server, profiles::cypress()).unwrap();
        let content = shadow::generate_file(&FileSpec::new(40_000, i as u64));
        sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
        let name = sim.canonical_name(client, "/data").unwrap();
        sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
            .unwrap();
        handles.push((client, conn));
    }
    // Interleaved rounds: everyone edits 3% and submits "at once".
    for round in 0..rounds {
        for (i, &(client, conn)) in handles.iter().enumerate() {
            if round > 0 {
                let model = EditModel::fraction(0.03, (round * 100 + i) as u64);
                sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
            }
            sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
                .unwrap();
        }
        sim.run_until_quiet();
    }
    let last_done: SimTime = handles
        .iter()
        .map(|&(c, _)| sim.finished_jobs(c).last().unwrap().at)
        .max()
        .unwrap();
    let total_payload: u64 = handles
        .iter()
        .map(|&(c, _)| sim.link_stats(c, server).0.payload_bytes)
        .sum();
    let jobs: u64 = sim.server_report(server).counter("server", "jobs_completed");
    (last_done.as_secs_f64(), total_payload, jobs)
}

fn main() {
    banner(
        "Ablation F: multi-client contention at one supercomputer site",
        "N clients x 40 KB files, repeated 3% edits over Cypress lines",
    );
    let (clients, rounds) = if quick_mode() { (2, 2) } else { (4, 3) };
    println!(
        "{:>16} {:>10} {:>16} {:>18} {:>8}",
        "mode", "clients", "makespan(s)", "uplink bytes", "jobs"
    );
    let mut rows = Vec::new();
    for (label, mode) in [
        ("conventional", TransferMode::Conventional),
        ("shadow", TransferMode::Shadow),
    ] {
        let (makespan, payload, jobs) = run(mode, clients, rounds);
        println!("{label:>16} {clients:>10} {makespan:>16.1} {payload:>18} {jobs:>8}");
        rows.push(
            Json::object()
                .with("mode", label)
                .with("clients", clients)
                .with("rounds", rounds)
                .with("makespan_secs", makespan)
                .with("uplink_bytes", payload)
                .with("jobs", jobs),
        );
    }
    export_rows("ablation_contention", rows);
    println!();
    println!("expected shape: with shadow processing the server ingests each 40 KB");
    println!("file once and then only 3% deltas, so total uplink collapses and the");
    println!("makespan tracks job execution instead of file transfer.");
}
