//! **Extension (§8.3)** — reverse shadow processing of job output.
//!
//! "Sometimes the result of processing on a supercomputer involves
//! generating a large amount of output … cache the output on the
//! supercomputer, and, next time the same job is run, send the
//! differences between the current output and the previous output."
//!
//! The workload: a job that generates a large report from a data file the
//! user keeps tweaking — most of the report is identical run-to-run. The
//! harness compares server→client payload bytes with and without output
//! shadowing.

use shadow::{
    profiles, ClientConfig, CpuModel, EditModel, FileSpec, ServerConfig, Simulation,
    SubmitOptions,
};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;

fn run(shadow_output: bool, rounds: usize) -> (u64, u64) {
    let mut sim = Simulation::new(1).with_cpu(CpuModel::default());
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::cypress()).unwrap();

    let content = shadow::generate_file(&FileSpec::new(30_000, 7));
    sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    // The job emits the sorted data plus a large generated report: output
    // dominated by content that barely changes between runs.
    sim.edit_file(client, "/report.job", move |_| {
        format!("gen 2000 header-row\nsort {name}\n").into_bytes()
    })
    .unwrap();
    let options = SubmitOptions {
        shadow_output,
        ..SubmitOptions::default()
    };
    for round in 0..rounds {
        if round > 0 {
            let model = EditModel::fraction(0.02, round as u64);
            sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
        }
        sim.submit(client, conn, "/report.job", &["/data"], options.clone())
            .unwrap();
        sim.run_until_quiet();
    }
    let down = sim.link_stats(client, server).1.payload_bytes;
    let output_deltas = sim.server_report(server).counter("server", "output_deltas");
    (down, output_deltas)
}

fn main() {
    banner(
        "Extension: reverse shadow processing of output (section 8.3)",
        "re-running a report job after 2% data edits, Cypress downlink bytes",
    );
    let rounds = if quick_mode() { 3 } else { 6 };
    let (plain_bytes, plain_deltas) = run(false, rounds);
    let (shadow_bytes, shadow_deltas) = run(true, rounds);
    println!(
        "{:>22} {:>18} {:>14}",
        "mode", "downlink bytes", "output deltas"
    );
    println!("{:>22} {plain_bytes:>18} {plain_deltas:>14}", "full output");
    println!("{:>22} {shadow_bytes:>18} {shadow_deltas:>14}", "shadowed output");
    export_rows(
        "ext_output_shadow",
        vec![
            Json::object()
                .with("mode", "full")
                .with("rounds", rounds)
                .with("downlink_bytes", plain_bytes)
                .with("output_deltas", plain_deltas),
            Json::object()
                .with("mode", "shadow")
                .with("rounds", rounds)
                .with("downlink_bytes", shadow_bytes)
                .with("output_deltas", shadow_deltas),
        ],
    );
    println!();
    println!(
        "reduction: {:.1}x fewer downlink bytes across {rounds} runs",
        plain_bytes as f64 / shadow_bytes.max(1) as f64
    );
    println!("expected shape: after the first (full) delivery, each re-run ships");
    println!("only the output lines the 2% data edit actually changed.");
}
