//! **Ablation D (§5.1)** — cache capacity and eviction policy.
//!
//! Best-effort caching means the server may lose shadows under disk
//! pressure and clients fall back to full transfers. This harness works a
//! set of files larger than the cache through repeated edit/submit
//! rounds and reports, per (capacity, policy): full transfers forced,
//! delta transfers achieved, and total payload bytes.

use shadow::{
    profiles, ClientConfig, CpuModel, EditModel, EvictionPolicy, FileSpec, ServerConfig,
    Simulation, SubmitOptions,
};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;

struct Outcome {
    fulls: u64,
    deltas: u64,
    payload: u64,
    evictions: u64,
}

fn run(policy: EvictionPolicy, budget: usize, files: usize, rounds: usize) -> Outcome {
    let mut sim = Simulation::new(1).with_cpu(CpuModel::instant());
    let server = sim.add_server(
        "superc",
        ServerConfig::new("superc")
            .with_cache_budget(budget)
            .with_eviction(policy),
    );
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();

    // Create the working set.
    let size = 20_000;
    for i in 0..files {
        let content = shadow::generate_file(&FileSpec::new(size, i as u64));
        sim.edit_file(client, &format!("/data{i}"), move |_| content.clone())
            .unwrap();
    }

    // Rounds: edit one file (round-robin) and submit a job over just that
    // file. The *working set across rounds* exceeds a starved cache, so an
    // evicted shadow forces a full retransfer when its turn comes again.
    for round in 0..rounds {
        let target = format!("/data{}", round % files);
        let model = EditModel::fraction(0.02, round as u64 + 100);
        sim.edit_file(client, &target, move |c| model.apply(&c)).unwrap();
        let name = sim.canonical_name(client, &target).unwrap();
        let job = format!("/job{}", round % files);
        sim.edit_file(client, &job, move |_| format!("wc {name}\n").into_bytes())
            .unwrap();
        sim.submit(client, conn, &job, &[target.as_str()], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
    }
    let m = sim.client_report(client);
    let evictions = sim.server_report(server).counter("cache", "evictions");
    Outcome {
        fulls: m.counter("client", "fulls_sent"),
        deltas: m.counter("client", "deltas_sent"),
        payload: m.counter("client", "update_payload_bytes"),
        evictions,
    }
}

fn main() {
    banner(
        "Ablation D: shadow cache capacity & eviction policy (section 5.1)",
        "8 files x 20 KB working set; cache from generous to starved",
    );
    let (files, rounds) = if quick_mode() { (4, 8) } else { (8, 24) };
    println!(
        "{:>10} {:>14} {:>8} {:>8} {:>10} {:>14}",
        "budget", "policy", "fulls", "deltas", "evictions", "payload bytes"
    );
    let mut rows = Vec::new();
    for budget in [400_000usize, 100_000, 60_000] {
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::Fifo,
            EvictionPolicy::Lfu,
            EvictionPolicy::LargestFirst,
        ] {
            let o = run(policy, budget, files, rounds);
            println!(
                "{:>10} {:>14} {:>8} {:>8} {:>10} {:>14}",
                budget,
                policy.to_string(),
                o.fulls,
                o.deltas,
                o.evictions,
                o.payload
            );
            rows.push(
                Json::object()
                    .with("budget", budget)
                    .with("policy", policy.to_string())
                    .with("fulls", o.fulls)
                    .with("deltas", o.deltas)
                    .with("evictions", o.evictions)
                    .with("payload_bytes", o.payload),
            );
        }
    }
    export_rows("ablation_cache", rows);
    println!();
    println!("expected shape: with a generous cache every resubmission is a delta;");
    println!("as the budget starves, evictions force full retransfers — the system");
    println!("degrades (more bytes) but never fails (best-effort, section 5.1).");
}
