//! **Ablation C (§8.3)** — data compression of transfers.
//!
//! The paper's future work: "we also plan to explore data compression
//! techniques to improve the efficiency of data transfer." This harness
//! measures the resubmission cycle with each transfer encoding (none /
//! RLE / LZSS) applied to update payloads, over Cypress where every byte
//! hurts.

use shadow::{
    profiles, ClientConfig, CpuModel, EditModel, FileSpec, ServerConfig, ShadowEnv, Simulation,
    SubmitOptions, TransferEncoding,
};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;

fn cycle_with_encoding(encoding: TransferEncoding, size: usize, fraction: f64) -> (f64, u64, u64) {
    let env = ShadowEnv {
        encoding,
        ..ShadowEnv::default()
    };
    let mut sim = Simulation::new(1).with_cpu(CpuModel::default());
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1).with_env(env));
    let conn = sim.connect(client, server, profiles::cypress()).unwrap();

    let content = shadow::generate_file(&FileSpec::new(size, 7));
    sim.edit_file(client, "/data", {
        let c = content;
        move |_| c.clone()
    })
    .unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
        .unwrap();
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let first_bytes = sim.link_stats(client, server).0.payload_bytes;

    let model = EditModel::fraction(fraction, 8);
    let start = sim.now();
    sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let done = sim.finished_jobs(client).last().unwrap().at;
    let resubmit_bytes = sim.link_stats(client, server).0.payload_bytes - first_bytes;
    ((done - start).as_secs_f64(), first_bytes, resubmit_bytes)
}

fn main() {
    banner(
        "Ablation C: transfer compression (section 8.3 future work)",
        "update payloads over Cypress with identity / RLE / LZSS encodings",
    );
    let size = if quick_mode() { 50_000 } else { 100_000 };
    println!(
        "{:>10} {:>7} {:>14} {:>14} {:>14}",
        "encoding", "%mod", "resubmit(s)", "first bytes", "resubmit bytes"
    );
    let mut rows = Vec::new();
    for fraction in [0.05, 0.40] {
        for encoding in [
            TransferEncoding::Identity,
            TransferEncoding::Rle,
            TransferEncoding::Lzss,
        ] {
            let (secs, first, resubmit) = cycle_with_encoding(encoding, size, fraction);
            println!(
                "{:>10} {:>7.0} {:>14.1} {:>14} {:>14}",
                encoding.to_string(),
                fraction * 100.0,
                secs,
                first,
                resubmit
            );
            rows.push(
                Json::object()
                    .with("encoding", encoding.to_string())
                    .with("fraction", fraction)
                    .with("resubmit_secs", secs)
                    .with("first_bytes", first)
                    .with("resubmit_bytes", resubmit),
            );
        }
    }
    export_rows("ablation_compression", rows);
    println!();
    println!("expected shape: LZSS compresses both the initial full transfer and");
    println!("the structured ed-script deltas; RLE helps only marginally on text.");
}
