//! **Figure 1** — Cypress transfer times.
//!
//! Paper: total time per edit-submit-fetch cycle over the 9600-baud
//! Cypress network, file sizes 100 K/200 K/500 K bytes, x-axis = % of the
//! file modified between submissions. Horizontal `F-time` lines show the
//! conventional batch system (the whole file travels every time); `S-time`
//! curves show shadow processing.
//!
//! Paper-reported anchors: F-time(500k) ≈ 600 s; S-time grows roughly
//! linearly with the modified fraction and stays below F-time even at 80%.

use shadow::experiment::{figure_rows, render_figure};
use shadow::{profiles, CpuModel, PAPER_PERCENTS_FIG1, PAPER_SIZES_FIG1};
use shadow_bench::{banner, export_rows, quick_mode};

fn main() {
    banner(
        "Figure 1: Cypress transfer times (9600 baud)",
        "S-time = shadow resubmission, F-time = conventional full transfer",
    );
    let sizes: &[usize] = if quick_mode() {
        &[100_000]
    } else {
        &PAPER_SIZES_FIG1
    };
    let fractions: &[f64] = if quick_mode() {
        &[0.01, 0.20]
    } else {
        &PAPER_PERCENTS_FIG1
    };
    let points = figure_rows(&profiles::cypress(), sizes, fractions, CpuModel::default());
    print!("{}", render_figure("Cypress, sizes 100k/200k/500k", &points));
    export_rows("fig1_cypress", points.iter().map(|p| p.to_json()).collect());
}
