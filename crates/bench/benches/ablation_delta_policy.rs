//! **Ablation E (§3 adaptability)** — delta-versus-full decision policy.
//!
//! When most of a file changed, the ed script can exceed the file itself;
//! the adaptive policy ships whichever is smaller. This harness sweeps the
//! modified fraction and compares `Always`-delta against `Adaptive`,
//! reporting resubmission payload bytes.

use shadow::{
    profiles, ClientConfig, CpuModel, DeltaPolicy, EditModel, FileSpec, ServerConfig, ShadowEnv,
    Simulation, SubmitOptions,
};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;

/// A total rewrite: every line replaced (the ed script must carry the whole
/// new file plus framing, exceeding the raw file).
fn rewrite_bytes(policy: DeltaPolicy, size: usize) -> u64 {
    resubmit_with(policy, size, move |_| {
        shadow::generate_file(&FileSpec::new(size, 999))
    })
}

fn resubmit_bytes(policy: DeltaPolicy, size: usize, fraction: f64) -> u64 {
    resubmit_with(policy, size, move |c| EditModel::fraction(fraction, 8).apply(&c))
}

fn resubmit_with(
    policy: DeltaPolicy,
    size: usize,
    edit: impl Fn(Vec<u8>) -> Vec<u8> + 'static,
) -> u64 {
    let env = ShadowEnv {
        delta_policy: policy,
        ..ShadowEnv::default()
    };
    let mut sim = Simulation::new(1).with_cpu(CpuModel::instant());
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1).with_env(env));
    let conn = sim.connect(client, server, profiles::lan()).unwrap();

    let content = shadow::generate_file(&FileSpec::new(size, 7));
    sim.edit_file(client, "/data", move |_| content.clone()).unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
        .unwrap();
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let before = sim.link_stats(client, server).0.payload_bytes;

    sim.edit_file(client, "/data", edit).unwrap();
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    sim.link_stats(client, server).0.payload_bytes - before
}

fn main() {
    banner(
        "Ablation E: delta-vs-full policy (adaptability goal, section 3)",
        "payload bytes for the resubmission as the edit fraction grows",
    );
    let size = if quick_mode() { 20_000 } else { 50_000 };
    println!(
        "{:>7} {:>16} {:>16} {:>10}",
        "%mod", "always-delta B", "adaptive B", "full file B"
    );
    let mut rows = Vec::new();
    for fraction in [0.01, 0.10, 0.30, 0.60, 0.80] {
        let always = resubmit_bytes(DeltaPolicy::Always, size, fraction);
        let adaptive = resubmit_bytes(DeltaPolicy::Adaptive, size, fraction);
        println!(
            "{:>7.0} {:>16} {:>16} {:>10}",
            fraction * 100.0,
            always,
            adaptive,
            size
        );
        rows.push(
            Json::object()
                .with("fraction", fraction)
                .with("always_bytes", always)
                .with("adaptive_bytes", adaptive)
                .with("full_bytes", size),
        );
    }
    // Total rewrite: the ed script must carry every line plus framing, so
    // it exceeds the raw file and the adaptive policy ships full instead.
    let always = rewrite_bytes(DeltaPolicy::Always, size);
    let adaptive = rewrite_bytes(DeltaPolicy::Adaptive, size);
    println!("{:>7} {always:>16} {adaptive:>16} {size:>10}", "100*");
    rows.push(
        Json::object()
            .with("fraction", 1.0)
            .with("rewrite", true)
            .with("always_bytes", always)
            .with("adaptive_bytes", adaptive)
            .with("full_bytes", size),
    );
    export_rows("ablation_delta_policy", rows);
    println!("        (* = total rewrite; every line replaced)");
    println!();
    println!("expected shape: identical at small fractions; once the script");
    println!("outgrows the file (heavy edits), adaptive caps the cost at ~file size.");
}
