//! **Ablation A (§5.2)** — demand-driven vs request-driven flow control.
//!
//! The paper *argues* for demand-driven control (the server decides when
//! to pull updates) over request-driven (the client pushes). This harness
//! quantifies the argument on the edit-submit cycle: payload bytes on the
//! wire and cycle latency for (a) the conventional request-driven push of
//! full files, (b) demand-driven eager pulls (updates flow in the
//! background during editing), and (c) demand-driven lazy pulls (updates
//! fetched only when a job needs them).

use shadow::experiment::{run_cycle, CycleSetup};
use shadow::{profiles, ClientConfig, CpuModel, FlowControl, ServerConfig, Simulation, SubmitOptions};
use shadow_bench::{banner, export_rows, quick_mode};
use shadow_obs::Json;

/// Runs one shadow cycle with an explicit server flow-control policy and
/// reports (resubmit seconds, resubmit payload bytes).
fn cycle_with_flow(flow: FlowControl, size: usize, fraction: f64) -> (f64, u64) {
    let mut sim = Simulation::new(1).with_cpu(CpuModel::default());
    let server = sim.add_server("superc", ServerConfig::new("superc").with_flow(flow));
    let client = sim.add_client("ws", ClientConfig::new("ws", 1));
    let conn = sim.connect(client, server, profiles::cypress()).unwrap();

    let content = shadow::generate_file(&shadow::FileSpec::new(size, 7));
    sim.edit_file(client, "/data", {
        let c = content;
        move |_| c.clone()
    })
    .unwrap();
    let name = sim.canonical_name(client, "/data").unwrap();
    sim.edit_file(client, "/run.job", move |_| format!("wc {name}\n").into_bytes())
        .unwrap();
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let bytes_before = sim.link_stats(client, server).0.payload_bytes;

    let model = shadow::EditModel::fraction(fraction, 8);
    let start = sim.now();
    sim.edit_file(client, "/data", move |c| model.apply(&c)).unwrap();
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .unwrap();
    sim.run_until_quiet();
    let done = sim.finished_jobs(client).last().unwrap().at;
    let bytes = sim.link_stats(client, server).0.payload_bytes - bytes_before;
    ((done - start).as_secs_f64(), bytes)
}

fn main() {
    banner(
        "Ablation A: flow control (section 5.2)",
        "request-driven baseline vs demand-driven eager/lazy/adaptive pulls",
    );
    let size = if quick_mode() { 50_000 } else { 100_000 };
    let fraction = 0.05;

    // The conventional baseline pushes full files from the client side.
    let conventional = CycleSetup::new(profiles::cypress(), size).conventional();
    let conv = run_cycle(&conventional, fraction);

    println!(
        "{:>24} {:>14} {:>16}",
        "policy", "resubmit(s)", "payload bytes"
    );
    println!(
        "{:>24} {:>14.1} {:>16}",
        "request-driven (full)", conv.resubmit_secs, conv.resubmit_bytes
    );
    let mut rows = vec![Json::object()
        .with("policy", "request-driven (full)")
        .with("resubmit_secs", conv.resubmit_secs)
        .with("payload_bytes", conv.resubmit_bytes)];
    for (label, flow) in [
        ("demand eager", FlowControl::DemandEager),
        ("demand lazy", FlowControl::DemandLazy),
        (
            "demand adaptive",
            FlowControl::DemandAdaptive {
                eager_queue_limit: 2,
                cache_pressure_limit: 0.9,
            },
        ),
    ] {
        let (secs, bytes) = cycle_with_flow(flow, size, fraction);
        println!("{label:>24} {secs:>14.1} {bytes:>16}");
        rows.push(
            Json::object()
                .with("policy", label)
                .with("resubmit_secs", secs)
                .with("payload_bytes", bytes),
        );
    }
    export_rows("ablation_flow_control", rows);
    println!();
    println!("expected shape: every demand-driven mode moves ~{:.0}% of the", fraction * 100.0);
    println!("file instead of all of it; eager overlaps the transfer with editing");
    println!("so its cycle time is lowest.");
}
