//! Property tests: for every pair of documents, the script produced by each
//! diff algorithm reconstructs the target exactly, round-trips through its
//! textual form, and reports accurate wire statistics.

use proptest::prelude::*;
use shadow_diff::{block_diff, diff, DiffAlgorithm, Document, EdScript};

/// Documents drawn from a small line alphabet to force repeats (the hard
/// case for LCS) plus arbitrary line content occasionally.
fn arb_document() -> impl Strategy<Value = Document> {
    let line = prop_oneof![
        4 => prop::sample::select(vec!["alpha", "beta", "gamma", "x", ""]).prop_map(str::to_string),
        1 => "[a-z .]{0,12}".prop_map(|s| s),
        1 => Just(".".to_string()),
        1 => Just("..".to_string()),
    ];
    (prop::collection::vec(line, 0..40), any::<bool>()).prop_map(|(lines, trailing)| {
        let mut text = lines.join("\n");
        if trailing && !text.is_empty() {
            text.push('\n');
        }
        Document::from_bytes(text.into_bytes())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hunt_mcilroy_reconstructs((old, new) in (arb_document(), arb_document())) {
        let script = diff(DiffAlgorithm::HuntMcIlroy, &old, &new);
        let rebuilt = script.apply(&old).unwrap();
        prop_assert_eq!(rebuilt.to_bytes(), new.to_bytes());
    }

    #[test]
    fn myers_reconstructs((old, new) in (arb_document(), arb_document())) {
        let script = diff(DiffAlgorithm::Myers, &old, &new);
        let rebuilt = script.apply(&old).unwrap();
        prop_assert_eq!(rebuilt.to_bytes(), new.to_bytes());
    }

    #[test]
    fn algorithms_agree_on_script_economy((old, new) in (arb_document(), arb_document())) {
        // Both produce *minimal-LCS* scripts, so line churn must agree.
        let hm = diff(DiffAlgorithm::HuntMcIlroy, &old, &new).stats();
        let my = diff(DiffAlgorithm::Myers, &old, &new).stats();
        prop_assert_eq!(hm.lines_added, my.lines_added);
        prop_assert_eq!(hm.lines_removed, my.lines_removed);
    }

    #[test]
    fn script_text_round_trips((old, new) in (arb_document(), arb_document())) {
        let script = diff(DiffAlgorithm::HuntMcIlroy, &old, &new);
        let text = script.to_text();
        prop_assert_eq!(text.len(), script.wire_len());
        let parsed = EdScript::parse(&text).unwrap();
        prop_assert_eq!(parsed, script);
    }

    #[test]
    fn block_diff_reconstructs(
        source in prop::collection::vec(any::<u8>(), 0..512),
        target in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let script = block_diff(&source, &target);
        prop_assert_eq!(script.apply(&source).unwrap(), target.clone());
        prop_assert_eq!(script.output_len(), target.len());
    }

    #[test]
    fn block_diff_on_edited_copy_is_compact(
        base in prop::collection::vec(any::<u8>(), 256..512),
        edit_at in 0usize..256,
        edit in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut target = base.clone();
        let at = edit_at.min(target.len());
        target.splice(at..at, edit.iter().copied());
        let script = block_diff(&base, &target);
        prop_assert_eq!(script.apply(&base).unwrap(), target);
        // A localized edit must not cost more than the edit plus bounded
        // copy-instruction overhead.
        prop_assert!(script.wire_len() <= edit.len() + 64);
    }
}
