//! Equivalence properties: the zero-copy pipeline and the legacy
//! allocating pipeline are interchangeable — byte-identical ed-scripts,
//! identical applied results — over random byte documents, including the
//! degenerate shapes (empty files, missing trailing newline, all lines
//! equal).

use proptest::prelude::*;
use shadow_diff::{
    apply_delta, diff_docs, diff_legacy, DiffAlgorithm, DiffScratch, DocBuf, Document, EdScript,
};

const ALGOS: [DiffAlgorithm; 2] = [DiffAlgorithm::HuntMcIlroy, DiffAlgorithm::Myers];

/// Raw document bytes drawn from a small line alphabet (to force repeated
/// lines, the hard case for LCS) plus arbitrary bytes occasionally, with
/// the trailing newline toggled independently.
fn arb_doc_bytes() -> impl Strategy<Value = Vec<u8>> {
    let line = prop_oneof![
        4 => prop::sample::select(vec!["alpha", "beta", "gamma", "x", ""]).prop_map(str::to_string),
        1 => "[a-z .]{0,12}".prop_map(|s| s),
        1 => Just(".".to_string()),
        1 => Just("..".to_string()),
    ];
    (prop::collection::vec(line, 0..40), any::<bool>()).prop_map(|(lines, trailing)| {
        let mut text = lines.join("\n");
        if trailing && !text.is_empty() {
            text.push('\n');
        }
        text.into_bytes()
    })
}

/// All-lines-equal documents: the interner collapses everything to one
/// symbol and Hunt–McIlroy sees maximal occurrence lists.
fn arb_uniform_doc_bytes() -> impl Strategy<Value = Vec<u8>> {
    (0usize..30, any::<bool>()).prop_map(|(n, trailing)| {
        let mut text = vec!["same"; n].join("\n");
        if trailing && !text.is_empty() {
            text.push('\n');
        }
        text.into_bytes()
    })
}

fn assert_pipelines_agree(old_bytes: &[u8], new_bytes: &[u8]) -> Result<(), TestCaseError> {
    let old_doc = Document::from_bytes(old_bytes.to_vec());
    let new_doc = Document::from_bytes(new_bytes.to_vec());
    let old_buf = DocBuf::from_bytes(old_bytes.to_vec());
    let new_buf = DocBuf::from_bytes(new_bytes.to_vec());
    let mut scratch = DiffScratch::new();

    for algo in ALGOS {
        let legacy = diff_legacy(algo, &old_doc, &new_doc);
        let legacy_text = legacy.to_text();
        let delta = diff_docs(algo, &old_buf, &new_buf, &mut scratch);
        let delta_text = delta.to_text();

        // Byte-identical ed-scripts…
        prop_assert_eq!(
            &delta_text,
            &legacy_text,
            "script text diverged (algo={})",
            algo
        );
        prop_assert_eq!(delta.wire_len(), legacy.wire_len());
        prop_assert_eq!(delta.stats(), legacy.stats());
        prop_assert_eq!(&delta.to_ed_script(), &legacy);

        // …and identical applied results, through both apply engines.
        let legacy_applied = legacy.apply(&old_doc).unwrap().to_bytes();
        prop_assert_eq!(&legacy_applied, &new_bytes.to_vec());
        let zero_applied = apply_delta(old_bytes, &delta_text).unwrap();
        prop_assert_eq!(&zero_applied, &new_bytes.to_vec());

        // The textual forms stay parseable by the legacy parser.
        prop_assert_eq!(&EdScript::parse(&delta_text).unwrap(), &legacy);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pipelines_agree_on_random_documents(
        old in arb_doc_bytes(),
        new in arb_doc_bytes(),
    ) {
        assert_pipelines_agree(&old, &new)?;
    }

    #[test]
    fn pipelines_agree_on_uniform_documents(
        old in arb_uniform_doc_bytes(),
        new in arb_uniform_doc_bytes(),
    ) {
        assert_pipelines_agree(&old, &new)?;
    }

    #[test]
    fn pipelines_agree_against_empty(
        doc in arb_doc_bytes(),
        empty_side in any::<bool>(),
    ) {
        if empty_side {
            assert_pipelines_agree(&[], &doc)?;
        } else {
            assert_pipelines_agree(&doc, &[])?;
        }
    }

    #[test]
    fn scratch_reuse_never_changes_output(
        pairs in prop::collection::vec((arb_doc_bytes(), arb_doc_bytes()), 1..6),
    ) {
        // One scratch across a whole sequence of diffs of varying sizes
        // must behave exactly like a fresh scratch per diff.
        let mut shared = DiffScratch::new();
        for (old, new) in &pairs {
            let old_buf = DocBuf::from_bytes(old.clone());
            let new_buf = DocBuf::from_bytes(new.clone());
            for algo in ALGOS {
                let mut fresh = DiffScratch::new();
                let a = diff_docs(algo, &old_buf, &new_buf, &mut shared).to_text();
                let b = diff_docs(algo, &old_buf, &new_buf, &mut fresh).to_text();
                prop_assert_eq!(a, b);
            }
        }
    }
}
