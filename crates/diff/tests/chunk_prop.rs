//! Property tests for the chunk codec: for every pair of byte blobs —
//! random binary data, multi-megabyte single-line strings, structured
//! splice edits — `apply_chunk_delta(base, chunk_delta_into(base, t))`
//! must reproduce `t` exactly, and `apply_chunk_delta` must never panic
//! whatever delta bytes it is fed. The classifier is pinned on the
//! workload generator's text corpora: ordinary program text must keep
//! routing through the line differ.

use proptest::prelude::*;
use shadow_diff::{
    apply_chunk_delta, choose_chunk_codec, chunk_delta_into, classify, DiffScratch, DocBuf,
};
use shadow_workload::{generate_file, EditModel, FileSpec};

/// Round-trips one pair through the chunk codec and returns the wire
/// delta length (callers assert proportionality where it is meaningful).
fn round_trip(base: &[u8], target: &[u8], scratch: &mut DiffScratch) -> usize {
    let mut delta = Vec::new();
    chunk_delta_into(base, target, scratch, &mut delta);
    let rebuilt = apply_chunk_delta(base, &delta).expect("self-produced delta must apply");
    assert_eq!(rebuilt, target, "chunk delta did not reproduce the target");
    delta.len()
}

/// A splice edit: delete `del` bytes at a position and insert `insert`.
#[derive(Debug, Clone)]
struct Splice {
    at: usize,
    del: usize,
    insert: Vec<u8>,
}

fn arb_splices() -> impl Strategy<Value = Vec<Splice>> {
    prop::collection::vec(
        (any::<usize>(), 0usize..512, prop::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(at, del, insert)| Splice { at, del, insert }),
        0..6,
    )
}

/// Applies splices to `base`, clamping positions into range.
fn apply_splices(base: &[u8], splices: &[Splice]) -> Vec<u8> {
    let mut out = base.to_vec();
    for s in splices {
        let at = if out.is_empty() { 0 } else { s.at % (out.len() + 1) };
        let end = (at + s.del).min(out.len());
        out.splice(at..end, s.insert.iter().copied());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fully arbitrary binary pairs — no shared structure at all.
    #[test]
    fn chunk_apply_reproduces_arbitrary_binary_pairs(
        base in prop::collection::vec(any::<u8>(), 0..4096),
        target in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let mut scratch = DiffScratch::new();
        round_trip(&base, &target, &mut scratch);
    }

    /// The realistic shape: a binary base plus a handful of splice edits.
    /// One scratch is reused across every case, so arena reuse cannot
    /// leak state between unrelated documents.
    #[test]
    fn chunk_apply_reproduces_spliced_binary_edits(
        base in prop::collection::vec(any::<u8>(), 0..65536),
        splices in arb_splices(),
    ) {
        let mut scratch = DiffScratch::new();
        let target = apply_splices(&base, &splices);
        round_trip(&base, &target, &mut scratch);
        // Same pair again through the now-warm scratch: must still agree.
        round_trip(&base, &target, &mut scratch);
    }

    /// Mixed edits on *text* still round-trip through the chunk codec —
    /// codec choice is a bandwidth decision, never a correctness one.
    #[test]
    fn chunk_apply_reproduces_text_edits(
        seed in 0u64..64,
        pct in 0u32..30,
    ) {
        let base = generate_file(&FileSpec::new(20_000, seed));
        let target =
            EditModel::fraction(f64::from(pct) / 100.0, seed.wrapping_add(1)).apply(&base);
        let mut scratch = DiffScratch::new();
        round_trip(&base, &target, &mut scratch);
    }

    /// Hostile input: arbitrary delta bytes against an arbitrary base
    /// must produce `Ok` or `Err`, never a panic or runaway allocation.
    #[test]
    fn apply_never_panics_on_arbitrary_delta(
        base in prop::collection::vec(any::<u8>(), 0..2048),
        delta in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = apply_chunk_delta(&base, &delta);
    }
}

/// Multi-megabyte single-line strings: the line differ's worst case. A
/// small splice must round-trip and the wire delta must stay within 10x
/// of the edit, not within 10x of the file.
#[test]
fn multi_mb_single_line_round_trips_proportionally() {
    let len = 3 * 1024 * 1024;
    let mut base = Vec::with_capacity(len);
    let mut state = 0x5eed_u64 | 1;
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        base.push(b' ' + (state >> 56) as u8 % 94); // printable, never \n
    }
    let splices = [Splice {
        at: len / 3,
        del: 512,
        insert: vec![b'!'; 1024],
    }];
    let target = apply_splices(&base, &splices);
    let mut scratch = DiffScratch::new();
    let wire = round_trip(&base, &target, &mut scratch);
    assert!(
        wire <= 10 * 1024,
        "3 MB single-line splice shipped {wire} bytes (> 10x the edit)"
    );
}

/// The classifier must keep ordinary program text — every size and seed
/// the workload generator produces for the paper's experiments — on the
/// line differ, so text latency and wire format are unchanged.
#[test]
fn classifier_pins_line_codec_on_text_corpora() {
    for seed in [1, 7, 42, 99] {
        for size in [1_000usize, 20_000, 200_000] {
            let base = generate_file(&FileSpec::new(size, seed));
            let edited = EditModel::fraction(0.05, seed + 1).apply(&base);
            let base_doc = DocBuf::from_bytes(base);
            let edited_doc = DocBuf::from_bytes(edited);
            assert!(
                !classify(&base_doc).prefers_chunk(),
                "text corpus (size {size}, seed {seed}) misclassified as chunk"
            );
            assert!(
                !choose_chunk_codec(&base_doc, &edited_doc),
                "text edit pair (size {size}, seed {seed}) must stay on line diff"
            );
        }
    }
}

/// And the inverse pins: the shapes the chunk codec exists for actually
/// select it.
#[test]
fn classifier_selects_chunk_for_binary_and_single_line() {
    let binary = DocBuf::from_bytes([0u8, 1, 2, 3, 0, 5].repeat(64));
    assert!(classify(&binary).prefers_chunk(), "NUL-bearing blob must chunk");
    let single_line = DocBuf::from_bytes(vec![b'x'; 64 * 1024]);
    assert!(
        classify(&single_line).prefers_chunk(),
        "64 KB single-line file must chunk"
    );
    let text = DocBuf::from_bytes(b"short\nlines\nof\ntext\n".to_vec());
    assert!(choose_chunk_codec(&text, &binary), "text->binary transition must chunk");
}
