//! `ed`-style edit scripts: representation, (de)serialization and application.
//!
//! The shadow editing prototype transmitted file updates "in a form suitable
//! for an editor (like `ed` in Unix) to apply the changes to a previous
//! version" (§7 of the paper). This module provides that form: a sequence of
//! append/change/delete commands addressed by 1-based line numbers of the
//! *base* document, listed in **descending** order so every command's
//! addresses stay valid while earlier commands are applied — exactly the
//! convention of `diff -e`.

use std::error::Error;
use std::fmt;

use crate::document::{Document, Line};

/// A single `ed` command.
///
/// Line numbers are 1-based positions in the **base** document.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EdCommand {
    /// `Na` — insert `lines` after base line `after` (0 means "at the very
    /// beginning").
    Append {
        /// Base line after which to insert (0 = prepend).
        after: usize,
        /// Lines to insert.
        lines: Vec<Line>,
    },
    /// `N,Mc` — replace base lines `from..=to` with `lines`.
    Change {
        /// First base line replaced (1-based).
        from: usize,
        /// Last base line replaced (inclusive).
        to: usize,
        /// Replacement lines.
        lines: Vec<Line>,
    },
    /// `N,Md` — delete base lines `from..=to`.
    Delete {
        /// First base line deleted (1-based).
        from: usize,
        /// Last base line deleted (inclusive).
        to: usize,
    },
}

impl EdCommand {
    /// First base line this command touches (for ordering checks).
    /// For `Append`, the insertion point `after` is used.
    pub fn first_line(&self) -> usize {
        match *self {
            EdCommand::Append { after, .. } => after,
            EdCommand::Change { from, .. } | EdCommand::Delete { from, .. } => from,
        }
    }

    /// Last base line this command touches.
    pub fn last_line(&self) -> usize {
        match *self {
            EdCommand::Append { after, .. } => after,
            EdCommand::Change { to, .. } | EdCommand::Delete { to, .. } => to,
        }
    }

    /// Number of new lines this command introduces.
    pub fn lines_added(&self) -> usize {
        match self {
            EdCommand::Append { lines, .. } | EdCommand::Change { lines, .. } => lines.len(),
            EdCommand::Delete { .. } => 0,
        }
    }

    /// Number of base lines this command removes.
    pub fn lines_removed(&self) -> usize {
        match *self {
            EdCommand::Append { .. } => 0,
            EdCommand::Change { from, to, .. } | EdCommand::Delete { from, to } => to - from + 1,
        }
    }
}

/// An edit script: an ordered list of [`EdCommand`]s in descending base-line
/// order, transforming a base [`Document`] into a target document.
///
/// Produced by [`diff`](crate::diff) and consumed by [`EdScript::apply`].
///
/// # Example
///
/// ```
/// use shadow_diff::{diff, DiffAlgorithm, Document};
///
/// # fn main() -> Result<(), shadow_diff::ApplyError> {
/// let base = Document::from_text("one\ntwo\nthree\n");
/// let target = Document::from_text("one\n2\nthree\n");
/// let script = diff(DiffAlgorithm::Myers, &base, &target);
/// assert_eq!(script.apply(&base)?, target);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct EdScript {
    commands: Vec<EdCommand>,
    /// Trailing-newline flag of the *target* document, so application can
    /// reproduce the target byte-for-byte.
    target_trailing_newline: bool,
}

impl EdScript {
    /// Creates an empty script (applies as the identity, but forces a
    /// trailing newline on the result; see [`EdScript::with_commands`]).
    pub fn new() -> Self {
        EdScript {
            commands: Vec::new(),
            target_trailing_newline: true,
        }
    }

    /// Creates a script from commands.
    ///
    /// `target_trailing_newline` records whether the target document's byte
    /// form ends with `\n`; [`apply`](EdScript::apply) restores it.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError::Malformed`] if the commands are not in strictly
    /// descending, non-overlapping base-line order, or if any range is
    /// inverted (`from > to`) or addresses line 0.
    pub fn with_commands(
        commands: Vec<EdCommand>,
        target_trailing_newline: bool,
    ) -> Result<Self, ApplyError> {
        let script = EdScript {
            commands,
            target_trailing_newline,
        };
        script.validate()?;
        Ok(script)
    }

    fn validate(&self) -> Result<(), ApplyError> {
        let mut prev_first: Option<usize> = None;
        for cmd in &self.commands {
            match *cmd {
                EdCommand::Change { from, to, .. } | EdCommand::Delete { from, to } => {
                    if from == 0 || from > to {
                        return Err(ApplyError::Malformed(format!(
                            "invalid range {from},{to}"
                        )));
                    }
                }
                EdCommand::Append { .. } => {}
            }
            if let Some(prev) = prev_first {
                // Descending and non-overlapping: this command must finish
                // strictly before the previous command starts. An append at
                // line N inserts *after* N, so `prev == last` is legal only
                // when the previous command was an append... we keep the
                // stricter diff(1) convention: strictly descending.
                if cmd.last_line() >= prev {
                    return Err(ApplyError::Malformed(format!(
                        "commands out of order: line {} not below {}",
                        cmd.last_line(),
                        prev
                    )));
                }
            }
            prev_first = Some(cmd.first_line());
        }
        Ok(())
    }

    /// The commands, in descending base-line order.
    pub fn commands(&self) -> &[EdCommand] {
        &self.commands
    }

    /// Whether the script produces no change at all.
    ///
    /// Note an empty command list can still toggle the trailing newline.
    pub fn is_identity_for(&self, base: &Document) -> bool {
        self.commands.is_empty()
            && (base.is_empty() || self.target_trailing_newline == base.has_trailing_newline())
    }

    /// Whether the target document ends with a trailing newline.
    pub fn target_trailing_newline(&self) -> bool {
        self.target_trailing_newline
    }

    /// Applies the script to `base`, producing the target document.
    ///
    /// Commands are applied in order; because they are sorted in descending
    /// base-line order, each command's addresses refer to still-untouched
    /// regions of the base.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError::OutOfRange`] if a command addresses a line
    /// beyond the end of `base` — the symptom of applying a delta to the
    /// wrong base version — and [`ApplyError::Malformed`] if the script's
    /// internal ordering invariant is broken.
    pub fn apply(&self, base: &Document) -> Result<Document, ApplyError> {
        self.validate()?;
        let mut doc = base.clone();
        let line_count = doc.line_count();
        for cmd in &self.commands {
            if cmd.last_line() > line_count {
                return Err(ApplyError::OutOfRange {
                    line: cmd.last_line(),
                    base_lines: line_count,
                });
            }
            let lines = doc.lines_mut();
            match cmd {
                EdCommand::Append { after, lines: ins } => {
                    lines.splice(*after..*after, ins.iter().cloned());
                }
                EdCommand::Change { from, to, lines: repl } => {
                    lines.splice(from - 1..*to, repl.iter().cloned());
                }
                EdCommand::Delete { from, to } => {
                    lines.drain(from - 1..*to);
                }
            }
        }
        doc.set_trailing_newline(!doc.is_empty() && self.target_trailing_newline);
        Ok(doc)
    }

    /// Serializes to classic `diff -e` text.
    ///
    /// Inserted text is terminated by a lone `.` line, as in `ed`. A lone
    /// `.` inside inserted text is escaped as `..` (and unescaped by
    /// [`EdScript::parse`]); this is the one place the format extends
    /// historic `ed`, which simply could not represent such a line.
    /// The final line records the target trailing-newline flag as `w` (with
    /// newline) or `W` (without), another small extension.
    pub fn to_text(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for cmd in &self.commands {
            match cmd {
                EdCommand::Append { after, lines } => {
                    out.extend_from_slice(format!("{after}a\n").as_bytes());
                    write_insert_block(&mut out, lines);
                }
                EdCommand::Change { from, to, lines } => {
                    if from == to {
                        out.extend_from_slice(format!("{from}c\n").as_bytes());
                    } else {
                        out.extend_from_slice(format!("{from},{to}c\n").as_bytes());
                    }
                    write_insert_block(&mut out, lines);
                }
                EdCommand::Delete { from, to } => {
                    if from == to {
                        out.extend_from_slice(format!("{from}d\n").as_bytes());
                    } else {
                        out.extend_from_slice(format!("{from},{to}d\n").as_bytes());
                    }
                }
            }
        }
        out.extend_from_slice(if self.target_trailing_newline {
            b"w\n"
        } else {
            b"W\n"
        });
        out
    }

    /// Parses the textual form produced by [`EdScript::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed line.
    pub fn parse(text: &[u8]) -> Result<Self, ParseError> {
        let mut commands = Vec::new();
        let mut target_trailing_newline = None;
        let mut lines = text.split(|&b| b == b'\n').enumerate().peekable();
        while let Some((lineno, raw)) = lines.next() {
            if raw.is_empty() && lines.peek().is_none() {
                break; // trailing newline of the script text itself
            }
            if raw == b"w" || raw == b"W" {
                target_trailing_newline = Some(raw == b"w");
                continue;
            }
            let (addr, op) = split_command(raw).ok_or_else(|| ParseError {
                line: lineno + 1,
                reason: format!("unrecognized command {:?}", String::from_utf8_lossy(raw)),
            })?;
            match op {
                b'a' => {
                    let ins = read_insert_block(&mut lines)?;
                    commands.push(EdCommand::Append {
                        after: addr.0,
                        lines: ins,
                    });
                }
                b'c' => {
                    let ins = read_insert_block(&mut lines)?;
                    commands.push(EdCommand::Change {
                        from: addr.0,
                        to: addr.1,
                        lines: ins,
                    });
                }
                b'd' => {
                    commands.push(EdCommand::Delete {
                        from: addr.0,
                        to: addr.1,
                    });
                }
                _ => {
                    return Err(ParseError {
                        line: lineno + 1,
                        reason: format!("unknown operation {:?}", op as char),
                    })
                }
            }
        }
        let script = EdScript {
            commands,
            target_trailing_newline: target_trailing_newline.ok_or(ParseError {
                line: 0,
                reason: "missing trailing w/W marker".to_string(),
            })?,
        };
        script.validate().map_err(|e| ParseError {
            line: 0,
            reason: e.to_string(),
        })?;
        Ok(script)
    }

    /// Size of the script's textual form in bytes — the quantity that
    /// travels on the wire and drives the paper's performance results.
    pub fn wire_len(&self) -> usize {
        // Computed without materializing the text.
        let mut n = 2; // w/W marker line
        for cmd in &self.commands {
            match cmd {
                EdCommand::Append { after, lines } => {
                    n += decimal_len(*after) + 2;
                    n += insert_block_len(lines);
                }
                EdCommand::Change { from, to, lines } => {
                    n += addr_len(*from, *to) + 2;
                    n += insert_block_len(lines);
                }
                EdCommand::Delete { from, to } => {
                    n += addr_len(*from, *to) + 2;
                }
            }
        }
        n
    }

    /// Aggregate statistics for this script.
    pub fn stats(&self) -> crate::DiffStats {
        crate::DiffStats {
            hunks: self.commands.len(),
            lines_added: self.commands.iter().map(EdCommand::lines_added).sum(),
            lines_removed: self.commands.iter().map(EdCommand::lines_removed).sum(),
            wire_len: self.wire_len(),
        }
    }
}

pub(crate) fn decimal_len(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

pub(crate) fn addr_len(from: usize, to: usize) -> usize {
    if from == to {
        decimal_len(from)
    } else {
        decimal_len(from) + 1 + decimal_len(to)
    }
}

fn insert_block_len(lines: &[Line]) -> usize {
    let mut n = 2; // terminating ".\n"
    for l in lines {
        n += l.len() + 1;
        if l.as_bytes().first() == Some(&b'.') {
            n += 1; // escape dot
        }
    }
    n
}

fn write_insert_block(out: &mut Vec<u8>, lines: &[Line]) {
    for l in lines {
        if l.as_bytes().first() == Some(&b'.') {
            out.push(b'.'); // escape leading dot as '..'
        }
        out.extend_from_slice(l.as_bytes());
        out.push(b'\n');
    }
    out.extend_from_slice(b".\n");
}

fn read_insert_block<'a, I>(lines: &mut I) -> Result<Vec<Line>, ParseError>
where
    I: Iterator<Item = (usize, &'a [u8])>,
{
    let mut out = Vec::new();
    for (lineno, raw) in lines {
        if raw == b"." {
            return Ok(out);
        }
        let content = if raw.first() == Some(&b'.') {
            &raw[1..] // unescape '..' (and '.x' -> 'x', only produced for dot-leading lines)
        } else {
            raw
        };
        let _ = lineno;
        out.push(Line::new(content.to_vec()));
    }
    Err(ParseError {
        line: 0,
        reason: "unterminated insert block".to_string(),
    })
}

/// Splits a command line like `3,7c` / `12a` into its address and opcode.
fn split_command(raw: &[u8]) -> Option<((usize, usize), u8)> {
    if raw.len() < 2 {
        return None;
    }
    let op = *raw.last().unwrap();
    let addr = &raw[..raw.len() - 1];
    let text = std::str::from_utf8(addr).ok()?;
    if let Some((a, b)) = text.split_once(',') {
        let a: usize = a.parse().ok()?;
        let b: usize = b.parse().ok()?;
        Some(((a, b), op))
    } else {
        let a: usize = text.parse().ok()?;
        Some(((a, a), op))
    }
}

/// Error applying an [`EdScript`] to a base document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// A command addressed a base line that does not exist — usually the
    /// delta was computed against a different base version.
    OutOfRange {
        /// The offending line address.
        line: usize,
        /// Number of lines in the base document.
        base_lines: usize,
    },
    /// The script violates its structural invariants.
    Malformed(String),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::OutOfRange { line, base_lines } => write!(
                f,
                "edit command addresses line {line} but base has only {base_lines} lines"
            ),
            ApplyError::Malformed(msg) => write!(f, "malformed edit script: {msg}"),
        }
    }
}

impl Error for ApplyError {}

/// Error parsing the textual form of an [`EdScript`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the script text where parsing failed (0 = end).
    pub line: usize,
    /// Human-readable description.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edit script parse error at line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(items: &[&str]) -> Vec<Line> {
        items.iter().copied().map(Line::from).collect()
    }

    #[test]
    fn apply_change() {
        let base = Document::from_text("a\nb\nc\n");
        let script = EdScript::with_commands(
            vec![EdCommand::Change {
                from: 2,
                to: 2,
                lines: lines(&["B"]),
            }],
            true,
        )
        .unwrap();
        assert_eq!(script.apply(&base).unwrap().to_bytes(), b"a\nB\nc\n");
    }

    #[test]
    fn apply_delete_range() {
        let base = Document::from_text("a\nb\nc\nd\n");
        let script =
            EdScript::with_commands(vec![EdCommand::Delete { from: 2, to: 3 }], true).unwrap();
        assert_eq!(script.apply(&base).unwrap().to_bytes(), b"a\nd\n");
    }

    #[test]
    fn apply_append_at_start_and_end() {
        let base = Document::from_text("m\n");
        let script = EdScript::with_commands(
            vec![
                EdCommand::Append {
                    after: 1,
                    lines: lines(&["z"]),
                },
                EdCommand::Append {
                    after: 0,
                    lines: lines(&["a"]),
                },
            ],
            true,
        )
        .unwrap();
        assert_eq!(script.apply(&base).unwrap().to_bytes(), b"a\nm\nz\n");
    }

    #[test]
    fn apply_descending_multi_command() {
        let base = Document::from_text("1\n2\n3\n4\n5\n");
        let script = EdScript::with_commands(
            vec![
                EdCommand::Delete { from: 5, to: 5 },
                EdCommand::Change {
                    from: 2,
                    to: 3,
                    lines: lines(&["two", "three"]),
                },
            ],
            true,
        )
        .unwrap();
        assert_eq!(
            script.apply(&base).unwrap().to_bytes(),
            b"1\ntwo\nthree\n4\n"
        );
    }

    #[test]
    fn out_of_range_is_reported() {
        let base = Document::from_text("a\n");
        let script =
            EdScript::with_commands(vec![EdCommand::Delete { from: 2, to: 2 }], true).unwrap();
        assert_eq!(
            script.apply(&base),
            Err(ApplyError::OutOfRange {
                line: 2,
                base_lines: 1
            })
        );
    }

    #[test]
    fn ascending_commands_rejected() {
        let err = EdScript::with_commands(
            vec![
                EdCommand::Delete { from: 1, to: 1 },
                EdCommand::Delete { from: 3, to: 3 },
            ],
            true,
        );
        assert!(matches!(err, Err(ApplyError::Malformed(_))));
    }

    #[test]
    fn inverted_range_rejected() {
        let err = EdScript::with_commands(vec![EdCommand::Delete { from: 3, to: 2 }], true);
        assert!(matches!(err, Err(ApplyError::Malformed(_))));
    }

    #[test]
    fn zero_line_range_rejected() {
        let err = EdScript::with_commands(vec![EdCommand::Delete { from: 0, to: 2 }], true);
        assert!(matches!(err, Err(ApplyError::Malformed(_))));
    }

    #[test]
    fn text_round_trip() {
        let script = EdScript::with_commands(
            vec![
                EdCommand::Append {
                    after: 9,
                    lines: lines(&["tail", ""]),
                },
                EdCommand::Change {
                    from: 4,
                    to: 6,
                    lines: lines(&["x", ".", "..dots"]),
                },
                EdCommand::Delete { from: 1, to: 2 },
            ],
            false,
        )
        .unwrap();
        let text = script.to_text();
        let parsed = EdScript::parse(&text).unwrap();
        assert_eq!(parsed, script);
    }

    #[test]
    fn wire_len_matches_text_len() {
        let script = EdScript::with_commands(
            vec![
                EdCommand::Change {
                    from: 10,
                    to: 12,
                    lines: lines(&["abc", ".", "", "...x"]),
                },
                EdCommand::Delete { from: 1, to: 1 },
            ],
            true,
        )
        .unwrap();
        assert_eq!(script.wire_len(), script.to_text().len());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(EdScript::parse(b"not a script\n").is_err());
        assert!(EdScript::parse(b"3a\nno terminator\n").is_err());
        assert!(EdScript::parse(b"3q\n.\nw\n").is_err());
        assert!(EdScript::parse(b"").is_err()); // missing w/W
    }

    #[test]
    fn identity_script() {
        let base = Document::from_text("a\nb\n");
        let script = EdScript::with_commands(vec![], true).unwrap();
        assert!(script.is_identity_for(&base));
        assert_eq!(script.apply(&base).unwrap(), base);
    }

    #[test]
    fn trailing_newline_toggle() {
        let base = Document::from_text("a\nb\n");
        let script = EdScript::with_commands(vec![], false).unwrap();
        assert_eq!(script.apply(&base).unwrap().to_bytes(), b"a\nb");
    }

    #[test]
    fn delete_everything_yields_empty() {
        let base = Document::from_text("a\nb\n");
        let script =
            EdScript::with_commands(vec![EdCommand::Delete { from: 1, to: 2 }], true).unwrap();
        let out = script.apply(&base).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.to_bytes(), b"");
    }

    #[test]
    fn stats_counts() {
        let script = EdScript::with_commands(
            vec![
                EdCommand::Change {
                    from: 5,
                    to: 6,
                    lines: lines(&["x"]),
                },
                EdCommand::Delete { from: 1, to: 2 },
            ],
            true,
        )
        .unwrap();
        let stats = script.stats();
        assert_eq!(stats.hunks, 2);
        assert_eq!(stats.lines_added, 1);
        assert_eq!(stats.lines_removed, 4);
        assert_eq!(stats.wire_len, script.to_text().len());
    }
}
