//! Summary statistics for an edit script.

use std::fmt;

/// Aggregate measurements of an edit script — the quantities the paper's
/// evaluation cares about (how much must travel over the slow link).
///
/// # Example
///
/// ```
/// use shadow_diff::{diff, DiffAlgorithm, Document};
///
/// let old = Document::from_text("a\nb\nc\n");
/// let new = Document::from_text("a\nx\nc\n");
/// let stats = diff(DiffAlgorithm::HuntMcIlroy, &old, &new).stats();
/// assert_eq!(stats.lines_added, 1);
/// assert_eq!(stats.lines_removed, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DiffStats {
    /// Number of edit commands (hunks).
    pub hunks: usize,
    /// Lines introduced by the script.
    pub lines_added: usize,
    /// Base lines removed by the script.
    pub lines_removed: usize,
    /// Size of the script's wire (textual) form in bytes.
    pub wire_len: usize,
}

impl DiffStats {
    /// Total churn: lines added plus lines removed.
    pub fn churn(&self) -> usize {
        self.lines_added + self.lines_removed
    }
}

impl fmt::Display for DiffStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hunks, +{} -{} lines, {} wire bytes",
            self.hunks, self.lines_added, self.lines_removed, self.wire_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_sums() {
        let s = DiffStats {
            hunks: 2,
            lines_added: 3,
            lines_removed: 4,
            wire_len: 99,
        };
        assert_eq!(s.churn(), 7);
    }

    #[test]
    fn display_nonempty() {
        assert!(!DiffStats::default().to_string().is_empty());
    }
}
