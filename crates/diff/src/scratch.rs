//! Reusable scratch state for the zero-copy diff pipeline.
//!
//! Every table the pipeline needs — the line interner, the Hunt–McIlroy
//! occurrence lists, threshold/link vectors and candidate arena, the Myers
//! frontier vectors, and the match list — lives in one [`DiffScratch`]
//! value that the caller keeps across diffs. Each run `clear()`s and
//! refills these vectors, so after the first few calls at a given document
//! size the pipeline performs **zero heap allocation**: steady-state
//! resubmissions of a shadow file reuse every buffer.
//!
//! The scratch is a pure cache: it carries no semantic state between
//! calls, and [`Clone`] deliberately produces a fresh, empty scratch so
//! that holders (version stores, server nodes) can keep deriving `Clone`
//! without duplicating dead capacity.

use crate::algorithm::Match;
use crate::chunk::ChunkScratch;

/// Multiplier from the FxHash family (Firefox / rustc's default hasher):
/// cheap, and good enough for a table that always confirms equality by
/// comparing the actual line bytes.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hashes a line's bytes FxHash-style: fold 8-byte little-endian words,
/// then the tail, each via `rotate ^ word * seed`.
pub(crate) fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        h = (h.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    // Mix the length so prefixes of each other don't collide trivially.
    h = (h.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(FX_SEED)
}

/// One interner entry: the line's hash plus where its bytes live, so a
/// probe can confirm equality against the source document without the
/// table owning any line bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InternEntry {
    /// Full hash of the line bytes (cheap pre-filter before comparing).
    pub(crate) hash: u64,
    /// Which document the representative line lives in: 0 = old, 1 = new.
    pub(crate) doc: u8,
    /// Absolute line index within that document.
    pub(crate) line: u32,
}

/// One Hunt–McIlroy k-candidate, packed to `u32` indices.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    /// Window-relative old line of the matched pair.
    pub(crate) old_line: u32,
    /// Window-relative new line of the matched pair.
    pub(crate) new_line: u32,
    /// Arena index of the length-`k-1` predecessor, or `u32::MAX`.
    pub(crate) prev: u32,
}

/// Reusable working memory for [`diff_docs`](crate::diff_docs).
///
/// Hold one per diffing site (client driver, server reverse-shadow path,
/// version store) and pass it to every call; see the
/// [module docs](self) for the reuse contract.
#[derive(Debug, Default)]
pub struct DiffScratch {
    /// Open-addressing hash table: `entry index + 1`, `0` = empty slot.
    pub(crate) buckets: Vec<u32>,
    /// Interned distinct lines; the entry index is the line's symbol.
    pub(crate) entries: Vec<InternEntry>,
    /// Symbols of the old document's trimmed window, in order.
    pub(crate) old_syms: Vec<u32>,
    /// Symbols of the new document's trimmed window, in order.
    pub(crate) new_syms: Vec<u32>,
    /// CSR row starts: positions of symbol `s` in the new window are
    /// `occ_items[occ_starts[s]..occ_starts[s + 1]]`.
    pub(crate) occ_starts: Vec<u32>,
    /// Write cursors while bucketing (a working copy of `occ_starts`).
    pub(crate) occ_fill: Vec<u32>,
    /// CSR payload: new-window positions grouped by symbol, ascending.
    pub(crate) occ_items: Vec<u32>,
    /// `thresh[k]`: smallest new-window index ending a common subsequence
    /// of length `k + 1`; strictly increasing.
    pub(crate) thresh: Vec<u32>,
    /// `link[k]`: arena index of the candidate achieving `thresh[k]`.
    pub(crate) link: Vec<u32>,
    /// Candidate arena for chain recovery.
    pub(crate) arena: Vec<Candidate>,
    /// Myers forward frontier (indexed by shifted diagonal).
    pub(crate) vf: Vec<i64>,
    /// Myers backward frontier.
    pub(crate) vb: Vec<i64>,
    /// LCS output: strictly increasing window-relative matches.
    pub(crate) matches: Vec<Match>,
    /// Content-defined chunking arenas (chunk records, digest buckets,
    /// op list) for [`chunk_delta_into`](crate::chunk_delta_into).
    pub(crate) chunk: ChunkScratch,
}

impl DiffScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// by every subsequent diff.
    pub fn new() -> Self {
        DiffScratch::default()
    }
}

/// A fresh, empty scratch — *not* a copy of the buffers.
///
/// The scratch carries no semantic state, only warmed capacity, so the
/// cheap and correct way to clone a holder (e.g. a version store) is to
/// let the copy warm its own buffers.
impl Clone for DiffScratch {
    fn clone(&self) -> Self {
        DiffScratch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hash_distinguishes_prefixes_and_lengths() {
        let a = fx_hash_bytes(b"abcdefgh");
        let b = fx_hash_bytes(b"abcdefghi");
        let c = fx_hash_bytes(b"abcdefg");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fx_hash_bytes(b"abcdefgh"));
        // Tail bytes beyond the last full word must matter.
        assert_ne!(fx_hash_bytes(b"abcdefgh1"), fx_hash_bytes(b"abcdefgh2"));
    }

    #[test]
    fn clone_is_fresh() {
        let mut s = DiffScratch::new();
        s.old_syms.extend_from_slice(&[1, 2, 3]);
        s.vf.resize(64, 0);
        let c = s.clone();
        assert!(c.old_syms.is_empty());
        assert!(c.vf.is_empty());
    }
}
