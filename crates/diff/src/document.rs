//! Line-oriented view of a text file.

use std::fmt;

/// One line of a [`Document`], without its trailing newline.
///
/// Lines are byte strings: the shadow service never requires file contents
/// to be valid UTF-8.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Line(Vec<u8>);

impl Line {
    /// Creates a line from raw bytes. The bytes must not contain `\n`.
    ///
    /// # Panics
    ///
    /// Panics — in **all** build profiles — if `bytes` contains an embedded
    /// newline. Such input would silently corrupt the line structure of a
    /// document (a release build used to accept it and desynchronize every
    /// line index downstream); use [`Line::try_new`] for fallible input.
    pub fn new(bytes: Vec<u8>) -> Self {
        assert!(
            !bytes.contains(&b'\n'),
            "a Line must not contain an embedded newline"
        );
        Line(bytes)
    }

    /// Creates a line from raw bytes, rejecting embedded newlines instead
    /// of panicking. Returns the offending input on failure.
    pub fn try_new(bytes: Vec<u8>) -> Result<Self, Vec<u8>> {
        if bytes.contains(&b'\n') {
            Err(bytes)
        } else {
            Ok(Line(bytes))
        }
    }

    /// The line's bytes, excluding any newline.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the line in bytes, excluding the newline.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the line is empty (a blank line).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consumes the line, returning the underlying bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

impl From<&str> for Line {
    fn from(s: &str) -> Self {
        Line::new(s.as_bytes().to_vec())
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.0))
    }
}

/// A text document as an ordered sequence of [`Line`]s.
///
/// A `Document` is the unit the line-oriented diff algorithms operate on.
/// Conversions to and from flat byte buffers preserve content exactly,
/// including whether the file ends with a trailing newline.
///
/// # Example
///
/// ```
/// use shadow_diff::Document;
///
/// let doc = Document::from_bytes(b"alpha\nbeta\n".to_vec());
/// assert_eq!(doc.line_count(), 2);
/// assert_eq!(doc.to_bytes(), b"alpha\nbeta\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Document {
    lines: Vec<Line>,
    /// True when the original byte form ended with `\n` (the usual case for
    /// POSIX text files). Preserved so `to_bytes` round-trips exactly.
    trailing_newline: bool,
}

impl Document {
    /// Creates an empty document (zero lines, no trailing newline).
    pub fn new() -> Self {
        Document::default()
    }

    /// Splits a byte buffer into lines on `\n`.
    ///
    /// An empty buffer yields an empty document. A buffer that does not end
    /// in `\n` keeps its final partial line, and `to_bytes` reproduces the
    /// buffer byte-for-byte.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        if bytes.is_empty() {
            return Document::new();
        }
        let trailing_newline = bytes.last() == Some(&b'\n');
        let content = if trailing_newline {
            &bytes[..bytes.len() - 1]
        } else {
            &bytes[..]
        };
        let lines = content
            .split(|&b| b == b'\n')
            .map(|l| Line::new(l.to_vec()))
            .collect();
        Document {
            lines,
            trailing_newline,
        }
    }

    /// Builds a document from lines; the byte form will end with a newline.
    pub fn from_lines(lines: Vec<Line>) -> Self {
        Document {
            trailing_newline: !lines.is_empty(),
            lines,
        }
    }

    /// Convenience constructor from a `&str` (handy in tests and examples).
    pub fn from_text(text: &str) -> Self {
        Document::from_bytes(text.as_bytes().to_vec())
    }

    /// Reassembles the document into a flat byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        for (i, line) in self.lines.iter().enumerate() {
            if i > 0 {
                out.push(b'\n');
            }
            out.extend_from_slice(line.as_bytes());
        }
        if self.trailing_newline {
            out.push(b'\n');
        }
        out
    }

    /// Total size of the byte form, including newlines.
    pub fn byte_len(&self) -> usize {
        let content: usize = self.lines.iter().map(Line::len).sum();
        let newlines = if self.lines.is_empty() {
            0
        } else {
            self.lines.len() - 1 + usize::from(self.trailing_newline)
        };
        content + newlines
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Whether the document has no lines at all.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The lines of the document.
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// Mutable access to the lines (used by the apply engine).
    pub(crate) fn lines_mut(&mut self) -> &mut Vec<Line> {
        &mut self.lines
    }

    /// Whether the byte form ends with a trailing newline.
    pub fn has_trailing_newline(&self) -> bool {
        self.trailing_newline
    }

    /// Sets whether the byte form ends with a trailing newline.
    pub(crate) fn set_trailing_newline(&mut self, value: bool) {
        self.trailing_newline = value;
    }
}

impl FromIterator<Line> for Document {
    fn from_iter<I: IntoIterator<Item = Line>>(iter: I) -> Self {
        Document::from_lines(iter.into_iter().collect())
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.to_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        let doc = Document::from_bytes(Vec::new());
        assert!(doc.is_empty());
        assert_eq!(doc.line_count(), 0);
        assert_eq!(doc.to_bytes(), Vec::<u8>::new());
        assert_eq!(doc.byte_len(), 0);
    }

    #[test]
    fn trailing_newline_round_trip() {
        let doc = Document::from_bytes(b"a\nb\n".to_vec());
        assert_eq!(doc.line_count(), 2);
        assert!(doc.has_trailing_newline());
        assert_eq!(doc.to_bytes(), b"a\nb\n");
    }

    #[test]
    fn missing_trailing_newline_round_trip() {
        let doc = Document::from_bytes(b"a\nb".to_vec());
        assert_eq!(doc.line_count(), 2);
        assert!(!doc.has_trailing_newline());
        assert_eq!(doc.to_bytes(), b"a\nb");
    }

    #[test]
    fn lone_newline_is_one_blank_line() {
        let doc = Document::from_bytes(b"\n".to_vec());
        assert_eq!(doc.line_count(), 1);
        assert!(doc.lines()[0].is_empty());
        assert_eq!(doc.to_bytes(), b"\n");
    }

    #[test]
    fn consecutive_newlines_preserved() {
        let doc = Document::from_bytes(b"a\n\n\nb\n".to_vec());
        assert_eq!(doc.line_count(), 4);
        assert_eq!(doc.to_bytes(), b"a\n\n\nb\n");
    }

    #[test]
    fn byte_len_matches_to_bytes() {
        for text in [&b""[..], b"x", b"x\n", b"a\nbb\nccc", b"a\nbb\nccc\n"] {
            let doc = Document::from_bytes(text.to_vec());
            assert_eq!(doc.byte_len(), doc.to_bytes().len(), "text {text:?}");
        }
    }

    #[test]
    fn from_lines_has_trailing_newline() {
        let doc = Document::from_lines(vec![Line::from("x"), Line::from("y")]);
        assert_eq!(doc.to_bytes(), b"x\ny\n");
    }

    #[test]
    fn from_iterator_collects() {
        let doc: Document = ["a", "b", "c"].into_iter().map(Line::from).collect();
        assert_eq!(doc.line_count(), 3);
    }

    #[test]
    fn non_utf8_content_preserved() {
        let doc = Document::from_bytes(vec![0xff, 0xfe, b'\n', 0x00]);
        assert_eq!(doc.to_bytes(), vec![0xff, 0xfe, b'\n', 0x00]);
    }

    #[test]
    #[should_panic(expected = "embedded newline")]
    fn embedded_newline_rejected_in_every_profile() {
        // `assert!`, not `debug_assert!`: the same code path runs in
        // release builds, so this panic is profile-independent.
        let _ = Line::new(b"a\nb".to_vec());
    }

    #[test]
    fn try_new_rejects_embedded_newline() {
        assert_eq!(Line::try_new(b"a\nb".to_vec()), Err(b"a\nb".to_vec()));
        assert_eq!(
            Line::try_new(b"clean".to_vec()).unwrap().as_bytes(),
            b"clean"
        );
    }

    #[test]
    fn display_is_lossy_utf8() {
        let doc = Document::from_text("hi\nthere\n");
        assert_eq!(doc.to_string(), "hi\nthere\n");
    }
}
