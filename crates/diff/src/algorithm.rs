//! Algorithm selection and the shared matches→script pipeline.

use std::fmt;

use crate::document::Document;
use crate::edscript::{EdCommand, EdScript};

/// Which differential-comparison algorithm to run.
///
/// The paper's prototype used Hunt–McIlroy (`diff`(1)); its future-work
/// section proposed evaluating alternatives, which the ablation benches do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DiffAlgorithm {
    /// Hunt–Szymanski/McIlroy candidate-list LCS — the prototype's choice.
    #[default]
    HuntMcIlroy,
    /// Myers *O(ND)*, linear-space divide-and-conquer variant.
    Myers,
}

impl fmt::Display for DiffAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffAlgorithm::HuntMcIlroy => write!(f, "hunt-mcilroy"),
            DiffAlgorithm::Myers => write!(f, "myers"),
        }
    }
}

/// A matched line pair: `old_line` in the base equals `new_line` in the
/// target (both 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Match {
    /// 0-based line index in the old (base) document.
    pub old_line: usize,
    /// 0-based line index in the new (target) document.
    pub new_line: usize,
}

/// Computes the line-oriented difference between `old` and `new` as an
/// [`EdScript`] that [applies](EdScript::apply) to `old` to yield `new`.
///
/// Matching prefix and suffix lines are trimmed before the quadratic-ish
/// core runs, so the cost is governed by the *changed* region — the paper's
/// small-edit assumption (§2.2) makes this fast in the common case.
///
/// # Example
///
/// ```
/// use shadow_diff::{diff, DiffAlgorithm, Document};
///
/// let old = Document::from_text("fn main() {}\n");
/// let new = Document::from_text("fn main() { println!(); }\n");
/// let script = diff(DiffAlgorithm::Myers, &old, &new);
/// assert_eq!(script.apply(&old).unwrap(), new);
/// ```
pub fn diff(algorithm: DiffAlgorithm, old: &Document, new: &Document) -> EdScript {
    // Thin compatibility shim: convert once, run the zero-copy pipeline,
    // copy the result back into the allocating representation. Callers on
    // the hot path should use `diff_docs` with a retained scratch instead;
    // the original allocating pipeline survives as
    // [`diff_legacy`](crate::diff_legacy) for equivalence testing.
    let old_buf = crate::docbuf::DocBuf::from_document(old);
    let new_buf = crate::docbuf::DocBuf::from_document(new);
    let mut scratch = crate::scratch::DiffScratch::new();
    crate::zerocopy::diff_docs(algorithm, &old_buf, &new_buf, &mut scratch).to_ed_script()
}

/// Converts a strictly increasing common subsequence into an [`EdScript`].
///
/// `matches` must be strictly increasing in both coordinates and each pair
/// must reference equal lines; [`diff`] guarantees this. Exposed so custom
/// matchers (e.g. test oracles) can reuse the hunk builder.
pub fn matches_to_script(matches: &[Match], old: &Document, new: &Document) -> EdScript {
    let old_lines = old.lines();
    let new_lines = new.lines();
    let mut ascending: Vec<EdCommand> = Vec::new();

    let mut i = 0usize; // next unconsumed old line
    let mut j = 0usize; // next unconsumed new line
    let boundary_iter = matches
        .iter()
        .map(|m| (m.old_line, m.new_line))
        .chain(std::iter::once((old_lines.len(), new_lines.len())));
    for (mi, mj) in boundary_iter {
        let deleted = mi - i;
        let added = mj - j;
        if deleted > 0 && added > 0 {
            ascending.push(EdCommand::Change {
                from: i + 1,
                to: mi,
                lines: new_lines[j..mj].to_vec(),
            });
        } else if deleted > 0 {
            ascending.push(EdCommand::Delete { from: i + 1, to: mi });
        } else if added > 0 {
            ascending.push(EdCommand::Append {
                after: i,
                lines: new_lines[j..mj].to_vec(),
            });
        }
        i = (mi + 1).min(old_lines.len());
        j = (mj + 1).min(new_lines.len());
    }

    ascending.reverse();
    EdScript::with_commands(ascending, new.has_trailing_newline())
        .expect("hunk builder produces descending, non-overlapping commands")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(algo: DiffAlgorithm, old: &str, new: &str) -> EdScript {
        let old_doc = Document::from_text(old);
        let new_doc = Document::from_text(new);
        let script = diff(algo, &old_doc, &new_doc);
        assert_eq!(
            script.apply(&old_doc).unwrap().to_bytes(),
            new_doc.to_bytes(),
            "algo={algo} old={old:?} new={new:?}"
        );
        script
    }

    const ALGOS: [DiffAlgorithm; 2] = [DiffAlgorithm::HuntMcIlroy, DiffAlgorithm::Myers];

    #[test]
    fn identical_documents_produce_identity() {
        for algo in ALGOS {
            let s = check(algo, "a\nb\nc\n", "a\nb\nc\n");
            assert!(s.commands().is_empty());
        }
    }

    #[test]
    fn single_line_change() {
        for algo in ALGOS {
            let s = check(algo, "a\nb\nc\n", "a\nX\nc\n");
            assert_eq!(s.commands().len(), 1);
        }
    }

    #[test]
    fn pure_insertion() {
        for algo in ALGOS {
            let s = check(algo, "a\nc\n", "a\nb\nc\n");
            assert_eq!(s.stats().lines_added, 1);
            assert_eq!(s.stats().lines_removed, 0);
        }
    }

    #[test]
    fn pure_deletion() {
        for algo in ALGOS {
            let s = check(algo, "a\nb\nc\n", "a\nc\n");
            assert_eq!(s.stats().lines_removed, 1);
        }
    }

    #[test]
    fn from_empty_and_to_empty() {
        for algo in ALGOS {
            check(algo, "", "a\nb\n");
            check(algo, "a\nb\n", "");
            check(algo, "", "");
        }
    }

    #[test]
    fn total_rewrite() {
        for algo in ALGOS {
            let s = check(algo, "a\nb\nc\n", "x\ny\nz\n");
            assert!(s.stats().lines_added >= 3);
        }
    }

    #[test]
    fn trailing_newline_changes_only() {
        for algo in ALGOS {
            check(algo, "a\nb", "a\nb\n");
            check(algo, "a\nb\n", "a\nb");
        }
    }

    #[test]
    fn repeated_lines() {
        for algo in ALGOS {
            check(algo, "x\nx\nx\nx\n", "x\nx\n");
            check(algo, "x\nx\n", "x\nx\nx\nx\n");
            check(algo, "a\nx\na\nx\n", "x\na\nx\na\n");
        }
    }

    #[test]
    fn interleaved_edits() {
        for algo in ALGOS {
            check(
                algo,
                "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n",
                "1\ntwo\n3\n4\nfive\nfive-b\n6\n8\n9\nten\n",
            );
        }
    }

    #[test]
    fn block_swap() {
        for algo in ALGOS {
            check(algo, "a\nb\nc\nd\ne\nf\n", "d\ne\nf\na\nb\nc\n");
        }
    }

    #[test]
    fn small_edit_produces_small_script() {
        // The paper's core premise: a small edit yields a script much
        // smaller than the file.
        let old_text: String = (0..1000).map(|i| format!("line number {i}\n")).collect();
        let mut new_text = old_text.clone();
        new_text = new_text.replace("line number 500", "LINE NUMBER 500");
        for algo in ALGOS {
            let s = check(algo, &old_text, &new_text);
            assert!(
                s.wire_len() < old_text.len() / 50,
                "script {} bytes vs file {}",
                s.wire_len(),
                old_text.len()
            );
        }
    }

    #[test]
    fn matches_to_script_with_explicit_matches() {
        let old = Document::from_text("a\nb\nc\n");
        let new = Document::from_text("c\na\nb\n");
        // Common subsequence: old[0..2] == new[1..3] ("a", "b").
        let matches = vec![
            Match {
                old_line: 0,
                new_line: 1,
            },
            Match {
                old_line: 1,
                new_line: 2,
            },
        ];
        let script = matches_to_script(&matches, &old, &new);
        assert_eq!(script.apply(&old).unwrap(), new);
    }

    #[test]
    fn algorithms_agree_on_lcs_length_for_simple_cases() {
        // Both should find maximal matches for unique-line documents.
        let old = Document::from_text("a\nb\nc\nd\ne\n");
        let new = Document::from_text("a\nc\ne\n");
        for algo in ALGOS {
            let s = diff(algo, &old, &new);
            assert_eq!(s.stats().lines_removed, 2, "algo={algo}");
            assert_eq!(s.stats().lines_added, 0, "algo={algo}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DiffAlgorithm::HuntMcIlroy.to_string(), "hunt-mcilroy");
        assert_eq!(DiffAlgorithm::Myers.to_string(), "myers");
    }
}
