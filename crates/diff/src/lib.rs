//! Differential file comparison for the shadow editing service.
//!
//! The shadow editing prototype (Comer, Griffioen, Yavatkar; CSD-TR-722 /
//! ICDCS 1988) transmits *changes* between successive versions of a file
//! instead of the whole file. The paper's prototype used the Hunt–McIlroy
//! differential-comparison algorithm (UNIX `diff`) emitting edit commands
//! "in a form suitable for an editor (like `ed`)", and its future-work
//! section (§8.3) names the Miller–Myers algorithm and Tichy's
//! string-to-string correction with block moves as candidates to study.
//! This crate implements all three families:
//!
//! * [`hunt_mcilroy`] — the Hunt–Szymanski/McIlroy LCS algorithm, the
//!   default, matching the prototype.
//! * [`myers`] — the Myers *O(ND)* algorithm in its linear-space
//!   (divide-and-conquer) form.
//! * [`blockmove`] — a Tichy-style byte-level delta with block moves,
//!   using hashed seeds as in Tichy's practical variant.
//!
//! Line-oriented diffs are expressed as an [`EdScript`] — a sequence of
//! `a`/`c`/`d` commands in descending line order, exactly like `diff -e`
//! output — which can be [applied](EdScript::apply) to the base document to
//! reconstruct the new version. Byte-level deltas are expressed as a
//! [`BlockScript`].
//!
//! The hot path is the **zero-copy pipeline**: [`DocBuf`] documents
//! (one contiguous buffer + line-offset index), [`diff_docs`] with a
//! reusable [`DiffScratch`], a [`DeltaScript`] whose inserts borrow from
//! the target buffer, and [`apply_delta`] reconstructing target bytes
//! straight from `base + script text`. The allocating API ([`diff`],
//! [`Document`], [`EdScript`]) remains as a compatibility shim, and
//! [`diff_legacy`] preserves the original pipeline as an equivalence
//! oracle — both emit byte-identical scripts.
//!
//! Large and binary files that the line differ handles poorly route
//! through the **chunk codec** instead: [`chunk_delta_into`] emits a
//! copy/insert delta over content-defined chunk boundaries (see
//! [`choose_chunk_codec`] for the per-file classifier), applied by
//! [`apply_chunk_delta`].
//!
//! # Example
//!
//! ```
//! use shadow_diff::{diff, DiffAlgorithm, Document};
//!
//! # fn main() -> Result<(), shadow_diff::ApplyError> {
//! let old = Document::from_bytes(b"a\nb\nc\n".to_vec());
//! let new = Document::from_bytes(b"a\nB\nc\nd\n".to_vec());
//! let script = diff(DiffAlgorithm::HuntMcIlroy, &old, &new);
//! let rebuilt = script.apply(&old)?;
//! assert_eq!(rebuilt.to_bytes(), new.to_bytes());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod chunk;
mod docbuf;
mod document;
mod edscript;
mod scratch;
mod shim;
mod stats;
mod zerocopy;

pub mod blockmove;
pub mod hunt_mcilroy;
pub mod myers;

pub use algorithm::{diff, matches_to_script, DiffAlgorithm, Match};
pub use blockmove::{block_diff, BlockOp, BlockScript};
pub use chunk::{
    apply_chunk_delta, choose_chunk_codec, chunk_delta_into, classify, ChunkDeltaError,
    ChunkParams, ChunkStats, DocShape, AVG_LINE_CHUNK_THRESHOLD, BINARY_SNIFF_WINDOW,
    CHUNK_FORMAT_VERSION, LEVELS, MAX_LEVELS, MAX_LINE_CHUNK_THRESHOLD,
};
pub use docbuf::DocBuf;
pub use document::{Document, Line};
pub use edscript::{ApplyError, EdCommand, EdScript, ParseError};
pub use scratch::DiffScratch;
pub use shim::diff_legacy;
pub use stats::DiffStats;
pub use zerocopy::{apply_delta, diff_docs, DeltaError, DeltaScript};
