//! Tichy-style string-to-string correction with block moves.
//!
//! Walter Tichy's *The string-to-string correction problem with block moves*
//! (ACM TOCS 2(4), 1984) — cited by the shadow editing paper's future-work
//! section — reconstructs the target string as a sequence of *block moves*
//! (copies of substrings of the source) plus literal additions. The greedy
//! strategy of always taking the longest copy starting at the current target
//! position is optimal in the number of block moves; this module implements
//! the practical hashed-seed variant: index fixed-length source substrings
//! in a hash table, extend candidate matches, and emit the longest.
//!
//! Unlike the line-oriented [`EdScript`](crate::EdScript), a [`BlockScript`]
//! works on raw bytes, so it also handles binary data and catches
//! *rearrangements* (block moves) that line-based LCS scripts must encode as
//! delete + re-insert.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Length of the hashed seed used to locate candidate copies.
const SEED_LEN: usize = 8;

/// One instruction of a [`BlockScript`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BlockOp {
    /// Copy `len` bytes from `offset` in the *source*.
    Copy {
        /// Byte offset into the source.
        offset: usize,
        /// Number of bytes to copy.
        len: usize,
    },
    /// Append literal bytes that do not occur (usefully) in the source.
    Add(Vec<u8>),
}

impl BlockOp {
    /// Number of target bytes this instruction produces.
    pub fn output_len(&self) -> usize {
        match self {
            BlockOp::Copy { len, .. } => *len,
            BlockOp::Add(bytes) => bytes.len(),
        }
    }
}

/// A byte-level delta: instructions that rebuild the target from the source.
///
/// # Example
///
/// ```
/// use shadow_diff::{block_diff, BlockScript};
///
/// let source = b"the quick brown fox jumps over the lazy dog";
/// let target = b"the lazy dog jumps over the quick brown fox";
/// let script = block_diff(source, target);
/// assert_eq!(script.apply(source).unwrap(), target);
/// assert!(script.wire_len() < target.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockScript {
    ops: Vec<BlockOp>,
}

impl BlockScript {
    /// The instructions, in target order.
    pub fn ops(&self) -> &[BlockOp] {
        &self.ops
    }

    /// Number of `Copy` instructions (Tichy's "block moves").
    pub fn copy_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, BlockOp::Copy { .. }))
            .count()
    }

    /// Total literal bytes carried in `Add` instructions.
    pub fn literal_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                BlockOp::Add(b) => b.len(),
                BlockOp::Copy { .. } => 0,
            })
            .sum()
    }

    /// Rebuilds the target from `source`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockApplyError`] when a copy reaches outside `source` —
    /// the symptom of applying the delta against the wrong base.
    pub fn apply(&self, source: &[u8]) -> Result<Vec<u8>, BlockApplyError> {
        let mut out = Vec::with_capacity(self.output_len());
        for op in &self.ops {
            match op {
                BlockOp::Copy { offset, len } => {
                    let end = offset.checked_add(*len).ok_or(BlockApplyError {
                        offset: *offset,
                        len: *len,
                        source_len: source.len(),
                    })?;
                    let slice = source.get(*offset..end).ok_or(BlockApplyError {
                        offset: *offset,
                        len: *len,
                        source_len: source.len(),
                    })?;
                    out.extend_from_slice(slice);
                }
                BlockOp::Add(bytes) => out.extend_from_slice(bytes),
            }
        }
        Ok(out)
    }

    /// Length of the target this script produces.
    pub fn output_len(&self) -> usize {
        self.ops.iter().map(BlockOp::output_len).sum()
    }

    /// Size of the script in its wire encoding: 1 tag byte + two varints per
    /// copy, 1 tag byte + varint + literals per add.
    pub fn wire_len(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                BlockOp::Copy { offset, len } => 1 + varint_len(*offset as u64) + varint_len(*len as u64),
                BlockOp::Add(bytes) => 1 + varint_len(bytes.len() as u64) + bytes.len(),
            })
            .sum()
    }
}

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Error applying a [`BlockScript`]: a copy addressed bytes outside the
/// source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockApplyError {
    /// Offset of the offending copy.
    pub offset: usize,
    /// Length of the offending copy.
    pub len: usize,
    /// Length of the source it was applied to.
    pub source_len: usize,
}

impl fmt::Display for BlockApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block copy of {} bytes at offset {} exceeds source of {} bytes",
            self.len, self.offset, self.source_len
        )
    }
}

impl Error for BlockApplyError {}

/// Computes a block-move delta turning `source` into `target`.
///
/// Greedy longest-copy strategy with hashed 8-byte seeds:
/// copies shorter than the seed are emitted as literals (a copy instruction
/// would not be smaller). Runs in roughly `O(source + target)` expected
/// time.
///
/// # Example
///
/// ```
/// use shadow_diff::block_diff;
///
/// let delta = block_diff(b"abcdef", b"abcXdef");
/// assert_eq!(delta.apply(b"abcdef").unwrap(), b"abcXdef");
/// ```
pub fn block_diff(source: &[u8], target: &[u8]) -> BlockScript {
    let mut ops: Vec<BlockOp> = Vec::new();
    let mut literal: Vec<u8> = Vec::new();

    // Index every SEED_LEN-gram of the source by a rolling-free direct hash.
    let mut seeds: HashMap<&[u8], Vec<usize>> = HashMap::new();
    if source.len() >= SEED_LEN {
        for start in 0..=source.len() - SEED_LEN {
            seeds
                .entry(&source[start..start + SEED_LEN])
                .or_default()
                .push(start);
        }
    }

    let mut pos = 0usize;
    while pos < target.len() {
        let mut best: Option<(usize, usize)> = None; // (source offset, len)
        if pos + SEED_LEN <= target.len() {
            if let Some(starts) = seeds.get(&target[pos..pos + SEED_LEN]) {
                // Bound candidate scanning so adversarial inputs (one seed
                // repeated everywhere) stay near-linear.
                for &s in starts.iter().take(32) {
                    let len = common_prefix_len(&source[s..], &target[pos..]);
                    if best.is_none_or(|(_, bl)| len > bl) {
                        best = Some((s, len));
                    }
                }
            }
        }
        match best {
            Some((offset, len)) if len >= SEED_LEN => {
                if !literal.is_empty() {
                    ops.push(BlockOp::Add(std::mem::take(&mut literal)));
                }
                ops.push(BlockOp::Copy { offset, len });
                pos += len;
            }
            _ => {
                literal.push(target[pos]);
                pos += 1;
            }
        }
    }
    if !literal.is_empty() {
        ops.push(BlockOp::Add(literal));
    }
    BlockScript { ops }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(source: &[u8], target: &[u8]) -> BlockScript {
        let script = block_diff(source, target);
        assert_eq!(script.apply(source).unwrap(), target);
        script
    }

    #[test]
    fn empty_cases() {
        round_trip(b"", b"");
        round_trip(b"abc", b"");
        round_trip(b"", b"abc");
    }

    #[test]
    fn identical_input_is_one_copy() {
        let src = b"0123456789abcdef0123456789abcdef";
        let script = round_trip(src, src);
        assert_eq!(script.ops().len(), 1);
        assert_eq!(script.copy_count(), 1);
    }

    #[test]
    fn small_edit_mostly_copies() {
        let src: Vec<u8> = (0..2000u32).flat_map(|i| format!("line {i}\n").into_bytes()).collect();
        let mut dst = src.clone();
        let mid = dst.len() / 2;
        dst.splice(mid..mid + 10, b"REPLACEMENT".iter().copied());
        let script = round_trip(&src, &dst);
        assert!(script.literal_bytes() < 64, "literals {}", script.literal_bytes());
        assert!(script.wire_len() < src.len() / 20);
    }

    #[test]
    fn block_swap_is_two_copies() {
        let src = b"AAAAAAAAAAAAAAAABBBBBBBBBBBBBBBB".to_vec();
        let dst = b"BBBBBBBBBBBBBBBBAAAAAAAAAAAAAAAA".to_vec();
        let script = round_trip(&src, &dst);
        // Block moves capture the swap without literals.
        assert_eq!(script.literal_bytes(), 0);
    }

    #[test]
    fn disjoint_content_is_all_literal() {
        let script = round_trip(b"aaaaaaaaaaaaaaaa", b"zzzzzzzzzzzzzzzz");
        assert_eq!(script.copy_count(), 0);
        assert_eq!(script.literal_bytes(), 16);
    }

    #[test]
    fn short_inputs_below_seed_len() {
        round_trip(b"abc", b"abd");
        round_trip(b"abc", b"abcdefg");
    }

    #[test]
    fn binary_data_round_trips() {
        let src: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut dst = src.clone();
        dst[100] ^= 0xFF;
        dst.truncate(3000);
        round_trip(&src, &dst);
    }

    #[test]
    fn apply_to_wrong_base_fails_cleanly() {
        let script = block_diff(b"0123456789abcdef", b"0123456789abcdef!");
        let err = script.apply(b"short").unwrap_err();
        assert_eq!(err.source_len, 5);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn output_len_matches_apply() {
        let src = b"the quick brown fox jumps over the lazy dog".to_vec();
        let dst = b"the lazy fox jumps over the quick dog".to_vec();
        let script = round_trip(&src, &dst);
        assert_eq!(script.output_len(), dst.len());
    }

    #[test]
    fn wire_len_counts_varints() {
        let script = BlockScript {
            ops: vec![
                BlockOp::Copy {
                    offset: 0,
                    len: 1000,
                },
                BlockOp::Add(vec![b'x'; 3]),
            ],
        };
        // copy: 1 + 1 (offset 0) + 2 (len 1000); add: 1 + 1 + 3.
        assert_eq!(script.wire_len(), 4 + 5);
    }

    #[test]
    fn repeated_seed_adversarial_input_terminates() {
        let src = vec![b'a'; 10_000];
        let mut dst = vec![b'a'; 10_000];
        dst[5000] = b'b';
        round_trip(&src, &dst);
    }
}
