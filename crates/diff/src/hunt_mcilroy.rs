//! The Hunt–Szymanski/McIlroy candidate-list LCS algorithm.
//!
//! This is the algorithm behind the original UNIX `diff` (Hunt & McIlroy,
//! *An Algorithm for Differential File Comparison*, Bell Labs CSTR 41, 1975)
//! and the one the shadow editing prototype used (§7 of the paper).
//!
//! Running time is `O((R + N) log N)` where `R` is the number of matching
//! line pairs — fast when most lines are distinct, which is typical for
//! program and data text. Memory is `O(R + N)`.

use crate::algorithm::Match;
use crate::scratch::{Candidate as ScratchCandidate, DiffScratch};

/// One k-candidate in McIlroy's formulation: a matching pair that extends a
/// common subsequence of length `k`, linked to the best candidate of length
/// `k - 1` it extends.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    old_line: usize,
    new_line: usize,
    /// Index of the predecessor candidate in the arena, or `usize::MAX`.
    prev: usize,
}

/// Computes a longest common subsequence of `a` and `b` as a list of
/// strictly increasing [`Match`]es.
///
/// `a` and `b` are interned line symbols; equal symbols mean equal lines.
///
/// # Example
///
/// ```
/// use shadow_diff::hunt_mcilroy::lcs_matches;
///
/// let matches = lcs_matches(&[1, 2, 3, 4], &[2, 4, 5]);
/// let pairs: Vec<_> = matches.iter().map(|m| (m.old_line, m.new_line)).collect();
/// assert_eq!(pairs, vec![(1, 0), (3, 1)]);
/// ```
pub fn lcs_matches(a: &[u32], b: &[u32]) -> Vec<Match> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }

    // occ[s] = positions of symbol s in `b`, ascending; we iterate them in
    // descending order per Hunt–Szymanski so that a single `a` element never
    // contributes two links in the same chain.
    let max_sym = a
        .iter()
        .chain(b.iter())
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    let mut occ: Vec<Vec<usize>> = vec![Vec::new(); max_sym];
    for (j, &s) in b.iter().enumerate() {
        occ[s as usize].push(j);
    }

    // thresh[k] = smallest `b` index ending a common subsequence of length
    // k + 1 seen so far; strictly increasing. link[k] = arena index of the
    // candidate achieving it.
    let mut thresh: Vec<usize> = Vec::new();
    let mut link: Vec<usize> = Vec::new();
    let mut arena: Vec<Candidate> = Vec::new();

    for (i, &s) in a.iter().enumerate() {
        let Some(positions) = occ.get(s as usize) else {
            continue;
        };
        for &j in positions.iter().rev() {
            // Find k = number of candidates with threshold < j (binary
            // search over the strictly increasing `thresh`).
            let k = thresh.partition_point(|&t| t < j);
            if k < thresh.len() && thresh[k] == j {
                continue; // no improvement: same endpoint already achieved
            }
            let prev = if k == 0 { usize::MAX } else { link[k - 1] };
            arena.push(Candidate {
                old_line: i,
                new_line: j,
                prev,
            });
            let cand = arena.len() - 1;
            if k == thresh.len() {
                thresh.push(j);
                link.push(cand);
            } else {
                thresh[k] = j;
                link[k] = cand;
            }
        }
    }

    // Recover the chain from the longest threshold class.
    let mut out = Vec::with_capacity(thresh.len());
    if let Some(&last) = link.last() {
        let mut cur = last;
        loop {
            let c = arena[cur];
            out.push(Match {
                old_line: c.old_line,
                new_line: c.new_line,
            });
            if c.prev == usize::MAX {
                break;
            }
            cur = c.prev;
        }
    }
    out.reverse();
    out
}

/// Scratch-backed variant of [`lcs_matches`]: reads the symbol windows
/// from `scratch.old_syms` / `scratch.new_syms` and leaves the matches in
/// `scratch.matches`, reusing the occurrence lists (CSR layout), the
/// threshold/link vectors, and the candidate arena across calls — zero
/// heap allocation once the buffers are warm.
///
/// Same algorithm, same output, as the allocating entry point: results
/// depend only on the equality structure of the symbol sequences.
pub(crate) fn lcs_matches_scratch(scratch: &mut DiffScratch) {
    let DiffScratch {
        old_syms,
        new_syms,
        occ_starts,
        occ_fill,
        occ_items,
        thresh,
        link,
        arena,
        matches,
        ..
    } = scratch;
    matches.clear();
    let a: &[u32] = old_syms;
    let b: &[u32] = new_syms;
    if a.is_empty() || b.is_empty() {
        return;
    }

    // Symbols are dense (the interner hands them out contiguously), so a
    // counting sort of `b`'s positions into a CSR layout replaces the
    // legacy `Vec<Vec<usize>>` occurrence lists.
    let max_sym = a
        .iter()
        .chain(b.iter())
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    occ_starts.clear();
    occ_starts.resize(max_sym + 1, 0);
    for &sym in b {
        occ_starts[sym as usize + 1] += 1;
    }
    for i in 1..occ_starts.len() {
        occ_starts[i] += occ_starts[i - 1];
    }
    occ_fill.clear();
    occ_fill.extend_from_slice(occ_starts);
    occ_items.clear();
    occ_items.resize(b.len(), 0);
    for (j, &sym) in b.iter().enumerate() {
        occ_items[occ_fill[sym as usize] as usize] = j as u32;
        occ_fill[sym as usize] += 1;
    }

    thresh.clear();
    link.clear();
    arena.clear();

    for (i, &sym) in a.iter().enumerate() {
        let lo = occ_starts[sym as usize] as usize;
        let hi = occ_starts[sym as usize + 1] as usize;
        for &j in occ_items[lo..hi].iter().rev() {
            let k = thresh.partition_point(|&t| t < j);
            if k < thresh.len() && thresh[k] == j {
                continue; // no improvement: same endpoint already achieved
            }
            let prev = if k == 0 { u32::MAX } else { link[k - 1] };
            arena.push(ScratchCandidate {
                old_line: i as u32,
                new_line: j,
                prev,
            });
            let cand = (arena.len() - 1) as u32;
            if k == thresh.len() {
                thresh.push(j);
                link.push(cand);
            } else {
                thresh[k] = j;
                link[k] = cand;
            }
        }
    }

    if let Some(&last) = link.last() {
        let mut cur = last;
        loop {
            let c = arena[cur as usize];
            matches.push(Match {
                old_line: c.old_line as usize,
                new_line: c.new_line as usize,
            });
            if c.prev == u32::MAX {
                break;
            }
            cur = c.prev;
        }
    }
    matches.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcs_len(a: &[u32], b: &[u32]) -> usize {
        lcs_matches(a, b).len()
    }

    /// Textbook quadratic DP as an oracle.
    fn dp_lcs_len(a: &[u32], b: &[u32]) -> usize {
        let mut row = vec![0usize; b.len() + 1];
        for &x in a {
            let mut diag = 0;
            for (j, &y) in b.iter().enumerate() {
                let up = row[j + 1];
                row[j + 1] = if x == y { diag + 1 } else { up.max(row[j]) };
                diag = up;
            }
        }
        row[b.len()]
    }

    #[test]
    fn empty_inputs() {
        assert!(lcs_matches(&[], &[]).is_empty());
        assert!(lcs_matches(&[1], &[]).is_empty());
        assert!(lcs_matches(&[], &[1]).is_empty());
    }

    #[test]
    fn identical_sequences() {
        let a = [1, 2, 3, 4, 5];
        let m = lcs_matches(&a, &a);
        assert_eq!(m.len(), 5);
        for (idx, mm) in m.iter().enumerate() {
            assert_eq!((mm.old_line, mm.new_line), (idx, idx));
        }
    }

    #[test]
    fn disjoint_sequences() {
        assert_eq!(lcs_len(&[1, 2, 3], &[4, 5, 6]), 0);
    }

    #[test]
    fn classic_example() {
        // LCS of "ABCBDAB" / "BDCABA" has length 4.
        let a: Vec<u32> = "ABCBDAB".bytes().map(u32::from).collect();
        let b: Vec<u32> = "BDCABA".bytes().map(u32::from).collect();
        assert_eq!(lcs_len(&a, &b), 4);
    }

    #[test]
    fn matches_are_strictly_increasing_and_equal() {
        let a = [5, 1, 5, 2, 5, 3, 5];
        let b = [1, 5, 2, 5, 3];
        let m = lcs_matches(&a, &b);
        let mut prev: Option<Match> = None;
        for mm in &m {
            assert_eq!(a[mm.old_line], b[mm.new_line]);
            if let Some(p) = prev {
                assert!(mm.old_line > p.old_line && mm.new_line > p.new_line);
            }
            prev = Some(*mm);
        }
        assert_eq!(m.len(), dp_lcs_len(&a, &b));
    }

    #[test]
    fn heavy_repetition() {
        let a = vec![7u32; 100];
        let b = vec![7u32; 60];
        assert_eq!(lcs_len(&a, &b), 60);
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5C2A);
        let mut scratch = DiffScratch::new();
        for _ in 0..200 {
            let alphabet = rng.gen_range(1..8u32);
            let n = rng.gen_range(0..40);
            let m = rng.gen_range(0..40);
            let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..alphabet)).collect();
            let b: Vec<u32> = (0..m).map(|_| rng.gen_range(0..alphabet)).collect();
            scratch.old_syms.clear();
            scratch.old_syms.extend_from_slice(&a);
            scratch.new_syms.clear();
            scratch.new_syms.extend_from_slice(&b);
            lcs_matches_scratch(&mut scratch);
            assert_eq!(scratch.matches, lcs_matches(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn agrees_with_dp_oracle_on_random_inputs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        for trial in 0..200 {
            let alphabet = rng.gen_range(1..8u32);
            let n = rng.gen_range(0..40);
            let m = rng.gen_range(0..40);
            let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..alphabet)).collect();
            let b: Vec<u32> = (0..m).map(|_| rng.gen_range(0..alphabet)).collect();
            let got = lcs_matches(&a, &b);
            // Valid common subsequence…
            let mut pi = None;
            let mut pj = None;
            for mm in &got {
                assert_eq!(a[mm.old_line], b[mm.new_line], "trial {trial}");
                if let (Some(pi), Some(pj)) = (pi, pj) {
                    assert!(mm.old_line > pi && mm.new_line > pj, "trial {trial}");
                }
                pi = Some(mm.old_line);
                pj = Some(mm.new_line);
            }
            // …of maximal length.
            assert_eq!(got.len(), dp_lcs_len(&a, &b), "trial {trial}");
        }
    }
}
