//! Compatibility shim between the zero-copy pipeline and the legacy
//! allocating API.
//!
//! This module is the *only* place in the diff crate allowed to build
//! per-line `Line(Vec<u8>)` allocations (the `shadow-check` repo lint
//! enforces that): it hosts the original allocating pipeline
//! ([`diff_legacy`]) kept as an equivalence oracle, and the conversions
//! from the zero-copy types back to the allocating ones.

use std::collections::HashMap;

use crate::algorithm::{matches_to_script, DiffAlgorithm, Match};
use crate::docbuf::DocBuf;
use crate::document::{Document, Line};
use crate::edscript::{EdCommand, EdScript, ParseError};
use crate::zerocopy::{DeltaCommand, DeltaScript};

/// The original allocating diff pipeline, retained verbatim as the
/// equivalence oracle for [`diff_docs`](crate::diff_docs).
///
/// Interns whole documents through a `HashMap<Vec<u8>, u32>`, trims
/// common affixes on the symbol sequences, and builds an [`EdScript`]
/// that copies every inserted line. [`diff`](crate::diff) no longer runs
/// this; the proptest suite asserts both pipelines emit byte-identical
/// scripts.
pub fn diff_legacy(algorithm: DiffAlgorithm, old: &Document, new: &Document) -> EdScript {
    let (old_syms, new_syms) = intern(old, new);
    let (prefix, suffix) = common_affixes(&old_syms, &new_syms);
    let old_mid = &old_syms[prefix..old_syms.len() - suffix];
    let new_mid = &new_syms[prefix..new_syms.len() - suffix];

    let mid_matches = match algorithm {
        DiffAlgorithm::HuntMcIlroy => crate::hunt_mcilroy::lcs_matches(old_mid, new_mid),
        DiffAlgorithm::Myers => crate::myers::lcs_matches(old_mid, new_mid),
    };

    let mut matches = Vec::with_capacity(prefix + mid_matches.len() + suffix);
    for i in 0..prefix {
        matches.push(Match {
            old_line: i,
            new_line: i,
        });
    }
    matches.extend(mid_matches.into_iter().map(|m| Match {
        old_line: m.old_line + prefix,
        new_line: m.new_line + prefix,
    }));
    for k in 0..suffix {
        matches.push(Match {
            old_line: old_syms.len() - suffix + k,
            new_line: new_syms.len() - suffix + k,
        });
    }

    debug_assert!(matches_are_valid(&matches, old, new));
    matches_to_script(&matches, old, new)
}

/// Maps each distinct line to a dense symbol so the LCS cores compare
/// `u32`s instead of byte strings.
fn intern(old: &Document, new: &Document) -> (Vec<u32>, Vec<u32>) {
    let mut table: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut intern_one = |bytes: &[u8]| -> u32 {
        if let Some(&s) = table.get(bytes) {
            s
        } else {
            let s = table.len() as u32;
            table.insert(bytes.to_vec(), s);
            s
        }
    };
    let old_syms = old
        .lines()
        .iter()
        .map(|l| intern_one(l.as_bytes()))
        .collect();
    let new_syms = new
        .lines()
        .iter()
        .map(|l| intern_one(l.as_bytes()))
        .collect();
    (old_syms, new_syms)
}

/// Length of the common prefix and suffix (non-overlapping).
fn common_affixes(a: &[u32], b: &[u32]) -> (usize, usize) {
    let max = a.len().min(b.len());
    let mut prefix = 0;
    while prefix < max && a[prefix] == b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < max - prefix && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix] {
        suffix += 1;
    }
    (prefix, suffix)
}

fn matches_are_valid(matches: &[Match], old: &Document, new: &Document) -> bool {
    let mut prev: Option<&Match> = None;
    for m in matches {
        if m.old_line >= old.line_count() || m.new_line >= new.line_count() {
            return false;
        }
        if old.lines()[m.old_line] != new.lines()[m.new_line] {
            return false;
        }
        if let Some(p) = prev {
            if m.old_line <= p.old_line || m.new_line <= p.new_line {
                return false;
            }
        }
        prev = Some(m);
    }
    true
}

impl DocBuf {
    /// Converts to an allocating [`Document`] (copies every line).
    pub fn to_document(&self) -> Document {
        let mut doc: Document = (0..self.line_count())
            .map(|i| Line::new(self.line(i).to_vec()))
            .collect();
        doc.set_trailing_newline(self.has_trailing_newline());
        doc
    }
}

impl DeltaScript {
    /// Converts to the allocating [`EdScript`] representation, copying
    /// each inserted line out of the target buffer.
    pub fn to_ed_script(&self) -> EdScript {
        let commands = self
            .commands
            .iter()
            .map(|cmd| match *cmd {
                DeltaCommand::Append {
                    after,
                    new_from,
                    new_to,
                } => EdCommand::Append {
                    after: after as usize,
                    lines: self.lines_vec(new_from, new_to),
                },
                DeltaCommand::Change {
                    from,
                    to,
                    new_from,
                    new_to,
                } => EdCommand::Change {
                    from: from as usize,
                    to: to as usize,
                    lines: self.lines_vec(new_from, new_to),
                },
                DeltaCommand::Delete { from, to } => EdCommand::Delete {
                    from: from as usize,
                    to: to as usize,
                },
            })
            .collect();
        EdScript::with_commands(commands, self.target_trailing_newline)
            .expect("zero-copy pipeline produces descending, non-overlapping commands")
    }

    fn lines_vec(&self, new_from: u32, new_to: u32) -> Vec<Line> {
        (new_from..new_to)
            .map(|i| Line::new(self.target.line(i as usize).to_vec()))
            .collect()
    }
}

// Cold-path error constructors for the zero-copy parser. Rendering the
// human-readable `reason` allocates, and the alloc-reach rule in
// `shadow-check analyze` bars every allocation reachable from
// `apply_delta` outside this shim — so malformed-input reporting lives
// here with the rest of the allocating code.

/// `ParseError` for a line that is neither a marker nor a command.
pub(crate) fn parse_unrecognized(line: usize, raw: &[u8]) -> ParseError {
    ParseError {
        line,
        reason: format!("unrecognized command {:?}", String::from_utf8_lossy(raw)),
    }
}

/// `ParseError` for a command with an unsupported opcode letter.
pub(crate) fn parse_unknown_op(line: usize, op: u8) -> ParseError {
    ParseError {
        line,
        reason: format!("unknown operation {:?}", op as char),
    }
}

/// `ParseError` for a script missing its trailing `w`/`W` marker.
pub(crate) fn parse_missing_marker() -> ParseError {
    ParseError {
        line: 0,
        reason: "missing trailing w/W marker".to_string(),
    }
}

/// `ParseError` for an insert block with no `.` terminator.
pub(crate) fn parse_unterminated_insert() -> ParseError {
    ParseError {
        line: 0,
        reason: "unterminated insert block".to_string(),
    }
}

/// `ParseError` for an address range that is empty or inverted.
pub(crate) fn parse_invalid_range(from: usize, to: usize) -> ParseError {
    ParseError {
        line: 0,
        reason: format!("invalid range {from},{to}"),
    }
}

/// `ParseError` for commands not in strictly descending order.
pub(crate) fn parse_out_of_order(last: usize, prev: usize) -> ParseError {
    ParseError {
        line: 0,
        reason: format!("commands out of order: line {last} not below {prev}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::DiffScratch;
    use crate::zerocopy::diff_docs;

    #[test]
    fn legacy_and_zerocopy_agree_on_fixed_cases() {
        let cases = [
            ("", ""),
            ("", "a\n"),
            ("a\nb\nc\n", "a\nX\nc\n"),
            ("a\nb", "a\nb\n"),
            (".\na\n", "..\na\n"),
            ("x\nx\nx\nx\n", "x\nx\n"),
        ];
        let mut scratch = DiffScratch::new();
        for algo in [DiffAlgorithm::HuntMcIlroy, DiffAlgorithm::Myers] {
            for (old, new) in cases {
                let old_doc = Document::from_text(old);
                let new_doc = Document::from_text(new);
                let legacy = diff_legacy(algo, &old_doc, &new_doc);
                let zc = diff_docs(
                    algo,
                    &DocBuf::from_text(old),
                    &DocBuf::from_text(new),
                    &mut scratch,
                );
                assert_eq!(
                    zc.to_text(),
                    legacy.to_text(),
                    "algo={algo} old={old:?} new={new:?}"
                );
                assert_eq!(zc.to_ed_script(), legacy, "algo={algo} old={old:?}");
            }
        }
    }

    #[test]
    fn docbuf_to_document_round_trips() {
        for text in [&b""[..], b"x", b"a\nb\n", b"a\nb"] {
            let buf = DocBuf::from_bytes(text.to_vec());
            assert_eq!(buf.to_document().to_bytes(), text);
        }
    }
}
