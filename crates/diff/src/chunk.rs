//! Content-defined chunk reconciliation for large and binary files.
//!
//! The line-oriented pipeline ([`diff_docs`](crate::diff_docs)) degenerates
//! on exactly the files supercomputer users ship most — multi-MB data
//! decks, minified sources, binaries — because a file with few newlines is
//! one giant "line" and every edit becomes a whole-file transfer. This
//! module adds the byte-level path from *Scalable String Reconciliation by
//! Recursive Content-Dependent Shingling*: split both documents into
//! **content-defined chunks** (boundaries chosen by a gear rolling hash,
//! so an insertion shifts at most the chunks it touches), index the base's
//! chunks by an FNV digest, and emit a delta of `copy-range-from-base` /
//! `insert-literal` operations. Spans of the target that find no match at
//! the coarse granularity are **recursively re-chunked** at a finer
//! granularity ([`LEVELS`], depth bound [`MAX_LEVELS`]) so a 1 KB edit in
//! the middle of a 64 KB chunk still ships roughly 1 KB.
//!
//! All working memory — chunk records, digest buckets, the op list — lives
//! in the [`DiffScratch`] the caller already holds for the line path, so
//! steady-state chunk diffs perform **zero heap allocation**: the caller
//! also supplies the output buffer ([`chunk_delta_into`]).
//!
//! A cheap [`classify`] pass over a [`DocBuf`] (NUL sniff, line-length
//! distribution) decides per file whether the line or the chunk codec
//! should carry an update; [`choose_chunk_codec`] combines both sides.

use crate::docbuf::DocBuf;
use crate::scratch::DiffScratch;

/// Version byte leading every serialized chunk delta.
pub const CHUNK_FORMAT_VERSION: u8 = 1;

/// Op tag: copy `len` bytes from `base_off` in the base document.
const OP_COPY: u8 = 0;
/// Op tag: insert `len` literal bytes carried in the delta.
const OP_INSERT: u8 = 1;

/// Upper bound on how much output capacity [`apply_chunk_delta`] reserves
/// up front, so a forged header cannot force a giant allocation before any
/// byte of the delta has been validated.
const MAX_APPLY_RESERVE: usize = 1 << 26;

/// Chunking parameters for one refinement level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkParams {
    /// No boundary is placed before this many bytes.
    pub min: u32,
    /// Hard cut at this many bytes even without a hash boundary.
    pub max: u32,
    /// Number of high hash bits that must be zero at a boundary; the
    /// expected chunk length is roughly `min + 2^mask_bits`.
    pub mask_bits: u32,
}

impl ChunkParams {
    /// The boundary mask: the top `mask_bits` bits of the gear hash,
    /// which depend on the longest window of preceding bytes.
    const fn mask(self) -> u64 {
        ((1u64 << self.mask_bits) - 1) << (64 - self.mask_bits)
    }
}

/// The refinement ladder: coarse chunks (~10 KB expected) for the first
/// pass, fine chunks (~576 B expected) for spans the coarse pass could
/// not match. Two levels bound the recursion depth ([`MAX_LEVELS`]).
pub const LEVELS: [ChunkParams; 2] = [
    ChunkParams {
        min: 2048,
        max: 65536,
        mask_bits: 13,
    },
    ChunkParams {
        min: 64,
        max: 4096,
        mask_bits: 9,
    },
];

/// Recursion depth bound for refinement: the number of chunking levels.
pub const MAX_LEVELS: usize = LEVELS.len();

/// SplitMix64 step — a well-mixed const-evaluable PRNG used only to fill
/// the gear table with fixed pseudo-random words.
const fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One random 64-bit word per byte value: the gear hash shifts the old
/// state left and adds the word for the incoming byte, so each output bit
/// mixes a sliding window of recent input.
const GEAR: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = splitmix64(i as u64);
        i += 1;
    }
    table
};

/// FNV-1a over 8-byte little-endian rounds with a final avalanche —
/// the per-chunk digest used by the base index. Collisions are harmless:
/// every probe confirms equality against the actual chunk bytes.
fn fnv_chunk(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        let w = u64::from_le_bytes(word.try_into().expect("word is 8 bytes"));
        hash = (hash ^ w).wrapping_mul(FNV_PRIME);
    }
    let mut tail = 0u64;
    for (i, &b) in words.remainder().iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    hash = (hash ^ tail).wrapping_mul(FNV_PRIME);
    hash ^= bytes.len() as u64;
    // Murmur-style finalizer so low bits feel every input bit.
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash
}

/// One chunk: where its bytes live in the source document plus its digest.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChunkRec {
    /// Absolute byte offset of the chunk in its document.
    pub(crate) off: u32,
    /// Chunk length in bytes (bounded by `ChunkParams::max`).
    pub(crate) len: u32,
    /// FNV digest of the chunk bytes.
    pub(crate) hash: u64,
}

/// One delta operation before serialization. `Insert` records the span in
/// the *target* so literal bytes are copied out exactly once, at
/// serialization time.
#[derive(Debug, Clone, Copy)]
enum ChunkOp {
    /// Copy `len` bytes from `base_off` in the base.
    Copy { base_off: u32, len: u32 },
    /// Insert `len` literal bytes found at `t_off` in the target.
    Insert { t_off: u32, len: u32 },
}

/// Per-level chunking arenas, embedded in [`DiffScratch`] so chunk diffs
/// reuse warmed capacity exactly like the line path.
#[derive(Debug, Default)]
pub(crate) struct LevelScratch {
    /// Chunks of the base document at this level.
    pub(crate) base_chunks: Vec<ChunkRec>,
    /// Open-addressing digest index: `base chunk index + 1`, `0` = empty.
    pub(crate) buckets: Vec<u32>,
    /// Chunks of the current target span at this level.
    pub(crate) target_chunks: Vec<ChunkRec>,
    /// Whether `base_chunks`/`buckets` are valid for the current call.
    pub(crate) built: bool,
}

/// Reusable working memory for [`chunk_delta_into`].
#[derive(Debug, Default)]
pub(crate) struct ChunkScratch {
    /// One arena set per refinement level.
    pub(crate) levels: [LevelScratch; MAX_LEVELS],
    /// The op list accumulated before serialization.
    ops: Vec<ChunkOp>,
}

/// Summary of one chunk delta, reported by [`chunk_delta_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    /// Serialized operations (after merging adjacent runs).
    pub ops: usize,
    /// Target bytes reproduced by copying from the base.
    pub copy_bytes: usize,
    /// Target bytes shipped literally in the delta.
    pub insert_bytes: usize,
    /// Total serialized delta size in bytes, header included.
    pub wire_len: usize,
}

/// Splits `bytes` into content-defined chunks, appending one record per
/// chunk (offsets made absolute by adding `base_off`).
fn chunk_spans(bytes: &[u8], base_off: u32, params: ChunkParams, out: &mut Vec<ChunkRec>) {
    let mask = params.mask();
    let mut start = 0usize;
    while start < bytes.len() {
        let remain = bytes.len() - start;
        let mut cut = remain.min(params.max as usize);
        if remain > params.min as usize {
            let mut hash = 0u64;
            let end = cut;
            let mut i = 0usize;
            while i < end {
                hash = (hash << 1).wrapping_add(GEAR[bytes[start + i] as usize]);
                i += 1;
                if i >= params.min as usize && hash & mask == 0 {
                    cut = i;
                    break;
                }
            }
        }
        let chunk = &bytes[start..start + cut];
        out.push(ChunkRec {
            off: base_off + start as u32,
            len: cut as u32,
            hash: fnv_chunk(chunk),
        });
        start += cut;
    }
}

/// Builds the open-addressing digest index over `chunks`.
fn build_index(chunks: &[ChunkRec], buckets: &mut Vec<u32>) {
    let cap = (chunks.len() * 2).next_power_of_two().max(16);
    buckets.clear();
    buckets.resize(cap, 0);
    for (i, chunk) in chunks.iter().enumerate() {
        let mut slot = chunk.hash as usize & (cap - 1);
        while buckets[slot] != 0 {
            slot = (slot + 1) & (cap - 1);
        }
        buckets[slot] = i as u32 + 1;
    }
}

/// Looks up a target chunk in the base index, confirming any digest hit
/// by comparing the actual bytes (digest collisions are thereby harmless).
fn find_chunk(
    base: &[u8],
    chunks: &[ChunkRec],
    buckets: &[u32],
    hash: u64,
    bytes: &[u8],
) -> Option<ChunkRec> {
    if buckets.is_empty() {
        return None;
    }
    let cap = buckets.len();
    let mut slot = hash as usize & (cap - 1);
    loop {
        let slot_val = buckets[slot];
        if slot_val == 0 {
            return None;
        }
        let rec = chunks[slot_val as usize - 1];
        if rec.hash == hash {
            let lo = rec.off as usize;
            let hi = lo + rec.len as usize;
            if &base[lo..hi] == bytes {
                return Some(rec);
            }
        }
        slot = (slot + 1) & (cap - 1);
    }
}

/// Appends an op, extending the previous one when the two are contiguous
/// (adjacent base ranges for copies, adjacent target ranges for inserts).
fn push_op(ops: &mut Vec<ChunkOp>, op: ChunkOp) {
    if let Some(last) = ops.last_mut() {
        match (last, op) {
            (
                ChunkOp::Copy { base_off, len },
                ChunkOp::Copy {
                    base_off: next_off,
                    len: next_len,
                },
            ) if *base_off + *len == next_off => {
                *len += next_len;
                return;
            }
            (
                ChunkOp::Insert { t_off, len },
                ChunkOp::Insert {
                    t_off: next_off,
                    len: next_len,
                },
            ) if *t_off + *len == next_off => {
                *len += next_len;
                return;
            }
            _ => {}
        }
    }
    ops.push(op);
}

/// Matches `target[t_lo..t_hi]` against the base at `level`, recursing one
/// level finer over sub-spans that find no chunk match. At the last level
/// unmatched bytes become insert literals. Depth is bounded by
/// [`MAX_LEVELS`]: each call recurses only with `level + 1`.
fn emit_span(
    level: usize,
    base: &[u8],
    target: &[u8],
    t_lo: usize,
    t_hi: usize,
    chunk: &mut ChunkScratch,
) {
    if t_lo >= t_hi {
        return;
    }
    if level >= MAX_LEVELS || base.is_empty() {
        push_op(
            &mut chunk.ops,
            ChunkOp::Insert {
                t_off: t_lo as u32,
                len: (t_hi - t_lo) as u32,
            },
        );
        return;
    }
    if !chunk.levels[level].built {
        chunk.levels[level].base_chunks.clear();
        chunk_spans(base, 0, LEVELS[level], &mut chunk.levels[level].base_chunks);
        let level_scratch = &mut chunk.levels[level];
        build_index(&level_scratch.base_chunks, &mut level_scratch.buckets);
        chunk.levels[level].built = true;
    }
    // Chunk the target span; records carry absolute target offsets. The
    // list is iterated by index (records are `Copy`) because the
    // recursive call below needs the scratch mutably.
    chunk.levels[level].target_chunks.clear();
    {
        let level_scratch = &mut chunk.levels[level];
        chunk_spans(
            &target[t_lo..t_hi],
            t_lo as u32,
            LEVELS[level],
            &mut level_scratch.target_chunks,
        );
    }
    let count = chunk.levels[level].target_chunks.len();
    let mut pending = t_lo;
    let mut i = 0;
    while i < count {
        let rec = chunk.levels[level].target_chunks[i];
        let lo = rec.off as usize;
        let hi = lo + rec.len as usize;
        let matched = {
            let level_scratch = &chunk.levels[level];
            find_chunk(
                base,
                &level_scratch.base_chunks,
                &level_scratch.buckets,
                rec.hash,
                &target[lo..hi],
            )
        };
        if let Some(base_rec) = matched {
            emit_span(level + 1, base, target, pending, lo, chunk);
            push_op(
                &mut chunk.ops,
                ChunkOp::Copy {
                    base_off: base_rec.off,
                    len: base_rec.len,
                },
            );
            pending = hi;
        }
        i += 1;
    }
    emit_span(level + 1, base, target, pending, t_hi, chunk);
}

/// Computes a chunk-level delta turning `base` into `target`, serializing
/// it into the caller-held `out` buffer (cleared first).
///
/// The format is one [`CHUNK_FORMAT_VERSION`] byte, the target length as
/// `u32` little-endian, then operations until end of buffer: `0x00` +
/// `base_off: u32` + `len: u32` copies a base range; `0x01` + `len: u32` +
/// `len` literal bytes inserts. All arenas live in `scratch`, so repeated
/// calls at a steady document size allocate nothing.
///
/// # Panics
///
/// Panics if either document exceeds `u32::MAX` bytes (the same bound
/// [`DocBuf`] enforces).
pub fn chunk_delta_into(
    base: &[u8],
    target: &[u8],
    scratch: &mut DiffScratch,
    out: &mut Vec<u8>,
) -> ChunkStats {
    assert!(
        base.len() <= u32::MAX as usize && target.len() <= u32::MAX as usize,
        "chunk delta documents are bounded by u32::MAX bytes"
    );
    let chunk = &mut scratch.chunk;
    for level in &mut chunk.levels {
        level.built = false;
    }
    chunk.ops.clear();
    emit_span(0, base, target, 0, target.len(), chunk);

    out.clear();
    out.push(CHUNK_FORMAT_VERSION);
    out.extend_from_slice(&(target.len() as u32).to_le_bytes());
    let mut stats = ChunkStats::default();
    for op in &chunk.ops {
        match *op {
            ChunkOp::Copy { base_off, len } => {
                out.push(OP_COPY);
                out.extend_from_slice(&base_off.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                stats.copy_bytes += len as usize;
            }
            ChunkOp::Insert { t_off, len } => {
                out.push(OP_INSERT);
                out.extend_from_slice(&len.to_le_bytes());
                let lo = t_off as usize;
                out.extend_from_slice(&target[lo..lo + len as usize]);
                stats.insert_bytes += len as usize;
            }
        }
    }
    stats.ops = chunk.ops.len();
    stats.wire_len = out.len();
    stats
}

/// Why a serialized chunk delta failed to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkDeltaError {
    /// The delta is shorter than its fixed header.
    Truncated,
    /// The leading version byte is not [`CHUNK_FORMAT_VERSION`].
    UnknownVersion,
    /// An operation tag is neither copy nor insert.
    UnknownOp,
    /// A copy references bytes outside the base document.
    CopyOutOfRange,
    /// The reconstructed output does not match the declared target length.
    LengthMismatch,
}

impl std::fmt::Display for ChunkDeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ChunkDeltaError::Truncated => "chunk delta truncated",
            ChunkDeltaError::UnknownVersion => "unknown chunk delta version",
            ChunkDeltaError::UnknownOp => "unknown chunk delta op",
            ChunkDeltaError::CopyOutOfRange => "chunk delta copy out of base range",
            ChunkDeltaError::LengthMismatch => "chunk delta output length mismatch",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ChunkDeltaError {}

/// Reconstructs the target bytes from `base` and a serialized chunk delta.
///
/// Every copy range is bounds-checked against `base`, output growth is
/// checked against the declared target length as it happens, and the
/// up-front reservation is capped, so hostile input can neither panic nor
/// force an oversized allocation.
///
/// # Errors
///
/// Returns a [`ChunkDeltaError`] when the delta is truncated, carries an
/// unknown version or op tag, copies outside the base, or reconstructs a
/// length other than the one declared in the header.
pub fn apply_chunk_delta(base: &[u8], delta: &[u8]) -> Result<Vec<u8>, ChunkDeltaError> {
    if delta.len() < 5 {
        return Err(ChunkDeltaError::Truncated);
    }
    if delta[0] != CHUNK_FORMAT_VERSION {
        return Err(ChunkDeltaError::UnknownVersion);
    }
    let target_len =
        u32::from_le_bytes(delta[1..5].try_into().expect("header is 4 bytes")) as usize;
    let mut out = Vec::with_capacity(target_len.min(MAX_APPLY_RESERVE));
    let mut pos = 5usize;
    while pos < delta.len() {
        let tag = delta[pos];
        pos += 1;
        match tag {
            OP_COPY => {
                let fields = delta
                    .get(pos..pos + 8)
                    .ok_or(ChunkDeltaError::Truncated)?;
                let base_off =
                    u32::from_le_bytes(fields[0..4].try_into().expect("field is 4 bytes")) as usize;
                let len =
                    u32::from_le_bytes(fields[4..8].try_into().expect("field is 4 bytes")) as usize;
                pos += 8;
                let src = base
                    .get(base_off..base_off + len)
                    .ok_or(ChunkDeltaError::CopyOutOfRange)?;
                if out.len() + len > target_len {
                    return Err(ChunkDeltaError::LengthMismatch);
                }
                out.extend_from_slice(src);
            }
            OP_INSERT => {
                let field = delta
                    .get(pos..pos + 4)
                    .ok_or(ChunkDeltaError::Truncated)?;
                let len =
                    u32::from_le_bytes(field.try_into().expect("field is 4 bytes")) as usize;
                pos += 4;
                let literal = delta
                    .get(pos..pos + len)
                    .ok_or(ChunkDeltaError::Truncated)?;
                pos += len;
                if out.len() + len > target_len {
                    return Err(ChunkDeltaError::LengthMismatch);
                }
                out.extend_from_slice(literal);
            }
            _ => return Err(ChunkDeltaError::UnknownOp),
        }
    }
    if out.len() != target_len {
        return Err(ChunkDeltaError::LengthMismatch);
    }
    Ok(out)
}

/// Byte window sniffed for NUL bytes when deciding whether a document is
/// binary.
pub const BINARY_SNIFF_WINDOW: usize = 8192;

/// Mean line length above which a document is considered line-hostile.
pub const AVG_LINE_CHUNK_THRESHOLD: usize = 256;

/// Single-line length above which a document is considered line-hostile.
pub const MAX_LINE_CHUNK_THRESHOLD: usize = 4096;

/// Cheap shape summary of a document, produced by [`classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocShape {
    /// Total bytes.
    pub byte_len: usize,
    /// Number of lines the line index sees.
    pub line_count: usize,
    /// Length of the longest line in bytes.
    pub max_line_len: usize,
    /// Whether a NUL byte appears in the first [`BINARY_SNIFF_WINDOW`]
    /// bytes (UTF-8 text never contains NUL).
    pub binary: bool,
}

impl DocShape {
    /// Whether the chunk codec should carry updates for a document of
    /// this shape: binary content, or lines long enough (on average or at
    /// the extreme) that the line differ degenerates.
    #[must_use]
    pub fn prefers_chunk(&self) -> bool {
        if self.binary {
            return true;
        }
        if self.line_count == 0 {
            return false;
        }
        self.byte_len / self.line_count > AVG_LINE_CHUNK_THRESHOLD
            || self.max_line_len > MAX_LINE_CHUNK_THRESHOLD
    }
}

/// Computes a document's [`DocShape`] in O(lines) using the line index
/// [`DocBuf`] already carries, plus one bounded NUL sniff.
#[must_use]
pub fn classify(doc: &DocBuf) -> DocShape {
    let bytes = doc.as_bytes();
    let window = &bytes[..bytes.len().min(BINARY_SNIFF_WINDOW)];
    let binary = window.contains(&0);
    let mut max_line_len = 0usize;
    for i in 0..doc.line_count() {
        max_line_len = max_line_len.max(doc.line(i).len());
    }
    DocShape {
        byte_len: doc.byte_len(),
        line_count: doc.line_count(),
        max_line_len,
        binary,
    }
}

/// Decides the codec for an update from `base` to `target`: the chunk
/// codec whenever *either* side is line-hostile (a text file replaced by
/// a binary, or vice versa, must not route through the line differ).
#[must_use]
pub fn choose_chunk_codec(base: &DocBuf, target: &DocBuf) -> bool {
    classify(base).prefers_chunk() || classify(target).prefers_chunk()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(base: &[u8], target: &[u8]) -> (Vec<u8>, ChunkStats) {
        let mut scratch = DiffScratch::new();
        let mut out = Vec::new();
        let stats = chunk_delta_into(base, target, &mut scratch, &mut out);
        (out, stats)
    }

    fn roundtrip(base: &[u8], target: &[u8]) -> ChunkStats {
        let (wire, stats) = delta(base, target);
        let rebuilt = apply_chunk_delta(base, &wire).expect("apply");
        assert_eq!(rebuilt, target, "chunk delta must reproduce the target");
        assert_eq!(stats.wire_len, wire.len());
        assert_eq!(stats.copy_bytes + stats.insert_bytes, target.len());
        stats
    }

    /// Deterministic pseudo-random bytes (splitmix64 stream).
    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut state = seed;
        while out.len() < len {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let word = splitmix64(state);
            let take = (len - out.len()).min(8);
            out.extend_from_slice(&word.to_le_bytes()[..take]);
        }
        out
    }

    #[test]
    fn identical_documents_are_one_copy() {
        let doc = random_bytes(200_000, 1);
        let stats = roundtrip(&doc, &doc);
        assert_eq!(stats.ops, 1, "identical docs should merge into one copy");
        assert_eq!(stats.insert_bytes, 0);
    }

    #[test]
    fn empty_base_is_one_insert() {
        let doc = random_bytes(10_000, 2);
        let stats = roundtrip(&[], &doc);
        assert_eq!(stats.ops, 1);
        assert_eq!(stats.copy_bytes, 0);
    }

    #[test]
    fn empty_target_is_empty_delta() {
        let doc = random_bytes(10_000, 3);
        let stats = roundtrip(&doc, &[]);
        assert_eq!(stats.ops, 0);
        assert_eq!(stats.wire_len, 5);
    }

    #[test]
    fn small_edit_ships_small_delta() {
        let base = random_bytes(1_000_000, 4);
        let mut target = base.clone();
        // Overwrite 1 KB in the middle.
        let patch = random_bytes(1024, 5);
        target[500_000..501_024].copy_from_slice(&patch);
        let stats = roundtrip(&base, &target);
        assert!(
            stats.insert_bytes <= 16 * 1024,
            "1 KB edit shipped {} literal bytes",
            stats.insert_bytes
        );
        assert!(
            stats.wire_len <= 32 * 1024,
            "1 KB edit cost {} wire bytes",
            stats.wire_len
        );
    }

    #[test]
    fn insertion_resynchronizes() {
        let base = random_bytes(500_000, 6);
        let mut target = Vec::with_capacity(base.len() + 100);
        target.extend_from_slice(&base[..250_000]);
        target.extend_from_slice(&random_bytes(100, 7));
        target.extend_from_slice(&base[250_000..]);
        let stats = roundtrip(&base, &target);
        assert!(
            stats.insert_bytes <= 8 * 1024,
            "100-byte insertion shipped {} literal bytes",
            stats.insert_bytes
        );
    }

    #[test]
    fn refinement_beats_coarse_only() {
        // A 1-byte flip inside one coarse chunk: the fine pass must
        // recover most of the chunk as copies.
        let base = random_bytes(100_000, 8);
        let mut target = base.clone();
        target[50_000] ^= 0xff;
        let stats = roundtrip(&base, &target);
        assert!(
            stats.insert_bytes < LEVELS[0].max as usize,
            "fine refinement should beat one coarse chunk, shipped {}",
            stats.insert_bytes
        );
    }

    #[test]
    fn scratch_reuse_is_allocation_stable() {
        // Behavioral stand-in for the counting-allocator bench row: the
        // second run with warmed scratch must produce identical output.
        let base = random_bytes(300_000, 9);
        let mut target = base.clone();
        target[1000..2000].copy_from_slice(&random_bytes(1000, 10));
        let mut scratch = DiffScratch::new();
        let mut first = Vec::new();
        let mut second = Vec::new();
        chunk_delta_into(&base, &target, &mut scratch, &mut first);
        chunk_delta_into(&base, &target, &mut scratch, &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn boundaries_respect_min_and_max() {
        let doc = random_bytes(1_000_000, 11);
        let mut chunks = Vec::new();
        chunk_spans(&doc, 0, LEVELS[0], &mut chunks);
        let total: usize = chunks.iter().map(|c| c.len as usize).sum();
        assert_eq!(total, doc.len());
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len <= LEVELS[0].max);
            if i + 1 < chunks.len() {
                assert!(c.len >= LEVELS[0].min.min(doc.len() as u32));
            }
        }
    }

    #[test]
    fn apply_rejects_malformed_deltas() {
        assert_eq!(
            apply_chunk_delta(b"", b"\x01"),
            Err(ChunkDeltaError::Truncated)
        );
        assert_eq!(
            apply_chunk_delta(b"", &[9, 0, 0, 0, 0]),
            Err(ChunkDeltaError::UnknownVersion)
        );
        let bad_op = [CHUNK_FORMAT_VERSION, 0, 0, 0, 0, 7];
        assert_eq!(
            apply_chunk_delta(b"", &bad_op),
            Err(ChunkDeltaError::UnknownOp)
        );
        // Copy past the end of a 4-byte base.
        let mut copy_oob = vec![CHUNK_FORMAT_VERSION, 8, 0, 0, 0, OP_COPY];
        copy_oob.extend_from_slice(&2u32.to_le_bytes());
        copy_oob.extend_from_slice(&8u32.to_le_bytes());
        assert_eq!(
            apply_chunk_delta(b"abcd", &copy_oob),
            Err(ChunkDeltaError::CopyOutOfRange)
        );
        // Declared length 2, inserted 4.
        let mut too_long = vec![CHUNK_FORMAT_VERSION, 2, 0, 0, 0, OP_INSERT];
        too_long.extend_from_slice(&4u32.to_le_bytes());
        too_long.extend_from_slice(b"abcd");
        assert_eq!(
            apply_chunk_delta(b"", &too_long),
            Err(ChunkDeltaError::LengthMismatch)
        );
        // Declared length 4, inserted 2.
        let mut too_short = vec![CHUNK_FORMAT_VERSION, 4, 0, 0, 0, OP_INSERT];
        too_short.extend_from_slice(&2u32.to_le_bytes());
        too_short.extend_from_slice(b"ab");
        assert_eq!(
            apply_chunk_delta(b"", &too_short),
            Err(ChunkDeltaError::LengthMismatch)
        );
    }

    #[test]
    fn forged_header_cannot_force_giant_reserve() {
        // Huge declared target with no ops: must fail cleanly, and the
        // reservation cap keeps the attempt cheap.
        let mut forged = vec![CHUNK_FORMAT_VERSION];
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            apply_chunk_delta(b"", &forged),
            Err(ChunkDeltaError::LengthMismatch)
        );
    }

    #[test]
    fn classifier_flags_binary_and_long_lines() {
        let text = DocBuf::from_bytes(b"fn main() {\n    let x = 1;\n}\n".to_vec());
        assert!(!classify(&text).prefers_chunk());

        let binary = DocBuf::from_bytes(random_bytes(4096, 12));
        assert!(
            classify(&binary).prefers_chunk(),
            "random bytes contain NUL or huge lines"
        );

        let single_line = DocBuf::from_bytes(vec![b'x'; 100_000]);
        let shape = classify(&single_line);
        assert!(shape.prefers_chunk());
        assert_eq!(shape.line_count, 1);

        // Either side being line-hostile selects the chunk codec.
        assert!(choose_chunk_codec(&text, &single_line));
        assert!(choose_chunk_codec(&single_line, &text));
        assert!(!choose_chunk_codec(&text, &text));
    }

    #[test]
    fn fnv_chunk_differs_on_tail_and_length() {
        assert_ne!(fnv_chunk(b"abcdefgh1"), fnv_chunk(b"abcdefgh2"));
        assert_ne!(fnv_chunk(b"abcdefgh"), fnv_chunk(b"abcdefg"));
        assert_eq!(fnv_chunk(b"abc"), fnv_chunk(b"abc"));
    }
}
