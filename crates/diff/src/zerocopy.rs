//! The zero-copy diff/delta pipeline.
//!
//! [`diff_docs`] compares two [`DocBuf`]s through a [`DiffScratch`] and
//! produces a [`DeltaScript`] whose insert payloads are *line ranges into
//! the target buffer* — no line bytes are copied anywhere in the pipeline:
//!
//! 1. **Anchor trimming** — the common prefix and suffix are found by
//!    comparing borrowed line slices, so a small edit in a large file
//!    narrows the problem to the changed window before anything else runs.
//! 2. **Interning** — each distinct window line is mapped to a dense `u32`
//!    symbol via an open-addressing FxHash table whose entries point back
//!    into the documents (the table never owns line bytes).
//! 3. **LCS** — Hunt–McIlroy or Myers runs over the symbol windows using
//!    the scratch's tables; see [`crate::scratch`].
//! 4. **Hunk building** — the match list becomes descending `a`/`c`/`d`
//!    commands carrying `(from, to)` ranges of target lines.
//!
//! The resulting script serializes with [`DeltaScript::write_text`]
//! straight from the borrowed slices, byte-identical to the legacy
//! [`EdScript`](crate::EdScript) text, and [`apply_delta`] reconstructs a
//! target from `base bytes + script text` in one pass over each, without
//! building intermediate line vectors.

use std::error::Error;
use std::fmt;

use crate::algorithm::DiffAlgorithm;
use crate::docbuf::DocBuf;
use crate::edscript::{ApplyError, ParseError};
use crate::scratch::{fx_hash_bytes, DiffScratch};
use crate::stats::DiffStats;

/// One command of a [`DeltaScript`]. Base addresses are 1-based, exactly
/// as in [`EdCommand`](crate::EdCommand); inserted text is the target-line
/// range `new_from..new_to` (0-based, half-open) borrowed from the
/// script's target buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeltaCommand {
    /// Insert target lines after base line `after` (0 = prepend).
    Append {
        /// Base line after which to insert.
        after: u32,
        /// First target line of the insert range.
        new_from: u32,
        /// One past the last target line of the insert range.
        new_to: u32,
    },
    /// Replace base lines `from..=to` with the target-line range.
    Change {
        /// First base line replaced (1-based).
        from: u32,
        /// Last base line replaced (inclusive).
        to: u32,
        /// First target line of the replacement range.
        new_from: u32,
        /// One past the last target line of the replacement range.
        new_to: u32,
    },
    /// Delete base lines `from..=to`.
    Delete {
        /// First base line deleted (1-based).
        from: u32,
        /// Last base line deleted (inclusive).
        to: u32,
    },
}

/// An edit script over [`DocBuf`]s: descending `a`/`c`/`d` commands whose
/// inserted text is borrowed from the retained target buffer.
///
/// Functionally equivalent to an [`EdScript`](crate::EdScript) — the
/// textual forms are byte-identical — but holding a `DeltaScript` costs
/// one `Arc` bump on the target document instead of a `Vec<u8>` per
/// inserted line. Convert with
/// [`to_ed_script`](DeltaScript::to_ed_script) when the allocating
/// representation is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaScript {
    /// The target document; insert ranges index into it. O(1) clone.
    pub(crate) target: DocBuf,
    /// Commands in descending base-line order.
    pub(crate) commands: Vec<DeltaCommand>,
    /// Whether the target's byte form ends with `\n`.
    pub(crate) target_trailing_newline: bool,
}

impl DeltaScript {
    /// Number of edit commands (hunks).
    pub fn command_count(&self) -> usize {
        self.commands.len()
    }

    /// Whether the script carries no commands at all.
    ///
    /// Note an empty command list can still toggle the trailing newline.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Whether the target document ends with a trailing newline.
    pub fn target_trailing_newline(&self) -> bool {
        self.target_trailing_newline
    }

    /// Appends the classic `diff -e` textual form onto `out`, straight
    /// from the borrowed target slices. Byte-identical to
    /// [`EdScript::to_text`](crate::EdScript::to_text) for the same edit.
    pub fn write_text(&self, out: &mut Vec<u8>) {
        for cmd in &self.commands {
            match *cmd {
                DeltaCommand::Append {
                    after,
                    new_from,
                    new_to,
                } => {
                    push_decimal(out, after);
                    out.push(b'a');
                    out.push(b'\n');
                    self.write_insert_block(out, new_from, new_to);
                }
                DeltaCommand::Change {
                    from,
                    to,
                    new_from,
                    new_to,
                } => {
                    push_address(out, from, to);
                    out.push(b'c');
                    out.push(b'\n');
                    self.write_insert_block(out, new_from, new_to);
                }
                DeltaCommand::Delete { from, to } => {
                    push_address(out, from, to);
                    out.push(b'd');
                    out.push(b'\n');
                }
            }
        }
        out.extend_from_slice(if self.target_trailing_newline {
            b"w\n"
        } else {
            b"W\n"
        });
    }

    /// The textual form as a fresh, exactly-sized buffer.
    pub fn to_text(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.write_text(&mut out);
        out
    }

    fn write_insert_block(&self, out: &mut Vec<u8>, new_from: u32, new_to: u32) {
        for idx in new_from..new_to {
            let line = self.target.line(idx as usize);
            if line.first() == Some(&b'.') {
                out.push(b'.'); // escape leading dot as '..'
            }
            out.extend_from_slice(line);
            out.push(b'\n');
        }
        out.extend_from_slice(b".\n");
    }

    /// Size of the textual form in bytes, computed without materializing
    /// it — the quantity that travels on the wire.
    pub fn wire_len(&self) -> usize {
        let mut n = 2; // w/W marker line
        for cmd in &self.commands {
            match *cmd {
                DeltaCommand::Append {
                    after,
                    new_from,
                    new_to,
                } => {
                    n += crate::edscript::decimal_len(after as usize) + 2;
                    n += self.insert_block_len(new_from, new_to);
                }
                DeltaCommand::Change {
                    from,
                    to,
                    new_from,
                    new_to,
                } => {
                    n += crate::edscript::addr_len(from as usize, to as usize) + 2;
                    n += self.insert_block_len(new_from, new_to);
                }
                DeltaCommand::Delete { from, to } => {
                    n += crate::edscript::addr_len(from as usize, to as usize) + 2;
                }
            }
        }
        n
    }

    fn insert_block_len(&self, new_from: u32, new_to: u32) -> usize {
        let mut n = 2; // terminating ".\n"
        for idx in new_from..new_to {
            let line = self.target.line(idx as usize);
            n += line.len() + 1;
            if line.first() == Some(&b'.') {
                n += 1; // escape dot
            }
        }
        n
    }

    /// Aggregate statistics for this script.
    pub fn stats(&self) -> DiffStats {
        let mut lines_added = 0usize;
        let mut lines_removed = 0usize;
        for cmd in &self.commands {
            match *cmd {
                DeltaCommand::Append {
                    new_from, new_to, ..
                } => lines_added += (new_to - new_from) as usize,
                DeltaCommand::Change {
                    from,
                    to,
                    new_from,
                    new_to,
                } => {
                    lines_added += (new_to - new_from) as usize;
                    lines_removed += (to - from + 1) as usize;
                }
                DeltaCommand::Delete { from, to } => {
                    lines_removed += (to - from + 1) as usize;
                }
            }
        }
        DiffStats {
            hunks: self.commands.len(),
            lines_added,
            lines_removed,
            wire_len: self.wire_len(),
        }
    }
}

/// Writes `n` in decimal onto `out` without allocating.
fn push_decimal(out: &mut Vec<u8>, mut n: u32) {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Writes `from` or `from,to` exactly as `EdScript::to_text` does.
fn push_address(out: &mut Vec<u8>, from: u32, to: u32) {
    push_decimal(out, from);
    if from != to {
        out.push(b',');
        push_decimal(out, to);
    }
}

/// Computes the line-oriented difference between `old` and `new` without
/// copying any line bytes, reusing `scratch`'s tables.
///
/// Produces exactly the same edit — byte-identical textual form — as the
/// legacy [`diff_legacy`](crate::diff_legacy) pipeline: anchor trimming
/// happens on byte slices instead of symbols, but byte equality and
/// symbol equality coincide, and the LCS cores depend only on the
/// equality structure of their inputs.
///
/// # Example
///
/// ```
/// use shadow_diff::{diff_docs, DiffAlgorithm, DiffScratch, DocBuf};
///
/// let old = DocBuf::from_text("a\nb\nc\n");
/// let new = DocBuf::from_text("a\nx\nc\n");
/// let mut scratch = DiffScratch::new();
/// let delta = diff_docs(DiffAlgorithm::HuntMcIlroy, &old, &new, &mut scratch);
/// assert_eq!(delta.to_text(), b"2c\nx\n.\nw\n");
/// ```
pub fn diff_docs(
    algorithm: DiffAlgorithm,
    old: &DocBuf,
    new: &DocBuf,
    scratch: &mut DiffScratch,
) -> DeltaScript {
    let old_n = old.line_count();
    let new_n = new.line_count();

    // Anchor trimming on borrowed byte slices (no interning cost for the
    // unchanged bulk of the file).
    let max = old_n.min(new_n);
    let mut prefix = 0;
    while prefix < max && old.line(prefix) == new.line(prefix) {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < max - prefix && old.line(old_n - 1 - suffix) == new.line(new_n - 1 - suffix) {
        suffix += 1;
    }

    intern_window(old, new, prefix, old_n - suffix, new_n - suffix, scratch);

    match algorithm {
        DiffAlgorithm::HuntMcIlroy => crate::hunt_mcilroy::lcs_matches_scratch(scratch),
        DiffAlgorithm::Myers => crate::myers::lcs_matches_scratch(scratch),
    }

    build_commands(new, prefix, suffix, old_n, new_n, scratch)
}

/// Interns the window lines `old[prefix..old_hi]` / `new[prefix..new_hi]`
/// into dense symbols in `scratch.old_syms` / `scratch.new_syms`.
fn intern_window(
    old: &DocBuf,
    new: &DocBuf,
    prefix: usize,
    old_hi: usize,
    new_hi: usize,
    scratch: &mut DiffScratch,
) {
    let total = (old_hi - prefix) + (new_hi - prefix);
    // Power-of-two capacity at most half full: probes stay short.
    let cap = (total * 2).next_power_of_two().max(16);
    let mask = cap - 1;
    scratch.buckets.resize(cap, 0);
    scratch.buckets.fill(0);
    scratch.entries.clear();
    scratch.old_syms.clear();
    scratch.new_syms.clear();

    for doc_tag in 0..2u8 {
        let (doc, hi) = if doc_tag == 0 {
            (old, old_hi)
        } else {
            (new, new_hi)
        };
        for line_idx in prefix..hi {
            let bytes = doc.line(line_idx);
            let hash = fx_hash_bytes(bytes);
            let mut slot = hash as usize & mask;
            let sym = loop {
                let tag = scratch.buckets[slot];
                if tag == 0 {
                    let sym = scratch.entries.len() as u32;
                    scratch.entries.push(crate::scratch::InternEntry {
                        hash,
                        doc: doc_tag,
                        line: line_idx as u32,
                    });
                    scratch.buckets[slot] = sym + 1;
                    break sym;
                }
                let entry = scratch.entries[(tag - 1) as usize];
                if entry.hash == hash {
                    let existing = if entry.doc == 0 {
                        old.line(entry.line as usize)
                    } else {
                        new.line(entry.line as usize)
                    };
                    if existing == bytes {
                        break tag - 1;
                    }
                }
                slot = (slot + 1) & mask;
            };
            if doc_tag == 0 {
                scratch.old_syms.push(sym);
            } else {
                scratch.new_syms.push(sym);
            }
        }
    }
}

/// Converts the window-relative match list in `scratch.matches` into
/// descending commands, exactly mirroring the legacy hunk builder.
fn build_commands(
    new: &DocBuf,
    prefix: usize,
    suffix: usize,
    old_n: usize,
    new_n: usize,
    scratch: &DiffScratch,
) -> DeltaScript {
    let mut commands: Vec<DeltaCommand> = Vec::with_capacity(scratch.matches.len() + 1);
    let mut i = prefix; // next unconsumed old line (absolute)
    let mut j = prefix; // next unconsumed new line (absolute)

    // The trimmed suffix lines are all matches, so the one boundary at
    // `(old_n - suffix, new_n - suffix)` stands in for every one of them
    // plus the end-of-document sentinel: the gaps in between are empty.
    let boundary_iter = scratch
        .matches
        .iter()
        .map(|m| (m.old_line + prefix, m.new_line + prefix))
        .chain(std::iter::once((old_n - suffix, new_n - suffix)));
    for (mi, mj) in boundary_iter {
        let deleted = mi - i;
        let added = mj - j;
        if deleted > 0 && added > 0 {
            commands.push(DeltaCommand::Change {
                from: (i + 1) as u32,
                to: mi as u32,
                new_from: j as u32,
                new_to: mj as u32,
            });
        } else if deleted > 0 {
            commands.push(DeltaCommand::Delete {
                from: (i + 1) as u32,
                to: mi as u32,
            });
        } else if added > 0 {
            commands.push(DeltaCommand::Append {
                after: i as u32,
                new_from: j as u32,
                new_to: mj as u32,
            });
        }
        i = mi + 1;
        j = mj + 1;
    }

    commands.reverse();
    DeltaScript {
        target: new.clone(),
        commands,
        target_trailing_newline: new.has_trailing_newline(),
    }
}

/// Error from [`apply_delta`]: the script text failed to parse, or it
/// does not apply to the given base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The script text is not well-formed `diff -e` output.
    Parse(ParseError),
    /// The script is structurally valid but does not fit the base.
    Apply(ApplyError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Parse(e) => write!(f, "{e}"),
            DeltaError::Apply(e) => write!(f, "{e}"),
        }
    }
}

impl Error for DeltaError {}

impl From<ParseError> for DeltaError {
    fn from(e: ParseError) -> Self {
        DeltaError::Parse(e)
    }
}

impl From<ApplyError> for DeltaError {
    fn from(e: ApplyError) -> Self {
        DeltaError::Apply(e)
    }
}

/// A parsed command, with insert text as a byte range of the script.
#[derive(Debug, Clone, Copy)]
struct RawCommand {
    /// `b'a'`, `b'c'` or `b'd'`.
    op: u8,
    /// First base address; for `a` this is the `after` address.
    from: usize,
    /// Last base address; equals `from` for `a` and single-line ranges.
    to: usize,
    /// Start of the raw (still dot-escaped) insert lines in the script.
    ins_start: usize,
    /// End of the insert lines, excluding the terminating `.\n`.
    ins_end: usize,
}

impl RawCommand {
    fn first_line(&self) -> usize {
        self.from
    }

    fn last_line(&self) -> usize {
        if self.op == b'a' {
            self.from
        } else {
            self.to
        }
    }
}

/// Applies a textual edit script to the raw bytes of a base document,
/// reconstructing the target bytes in one pass.
///
/// Semantically identical to `EdScript::parse` + [`apply`][a] +
/// `Document::to_bytes`, but the base is consumed as whole byte ranges
/// (no per-line vectors), insert text is copied straight out of the
/// script, and the allocation budget is the output buffer plus a small
/// sized command table (error reporting on malformed input goes through
/// the allocating [`shim`](crate::shim)).
///
/// [a]: crate::EdScript::apply
///
/// # Errors
///
/// Returns [`DeltaError::Parse`] for malformed script text and
/// [`DeltaError::Apply`] when a command addresses a line beyond the base
/// (the symptom of applying a delta to the wrong version).
///
/// # Example
///
/// ```
/// use shadow_diff::apply_delta;
///
/// let out = apply_delta(b"a\nb\nc\n", b"2c\nx\n.\nw\n").unwrap();
/// assert_eq!(out, b"a\nx\nc\n");
/// ```
pub fn apply_delta(base: &[u8], script: &[u8]) -> Result<Vec<u8>, DeltaError> {
    let (commands, target_trailing_newline) = parse_script(script)?;

    let base_trailing = base.last() == Some(&b'\n');
    let base_lines = if base.is_empty() {
        0
    } else {
        base.iter().filter(|&&b| b == b'\n').count() + usize::from(!base_trailing)
    };

    // Range-check every command against the *original* base, in storage
    // (descending) order, matching `EdScript::apply`'s error reporting.
    for cmd in &commands {
        if cmd.last_line() > base_lines {
            return Err(ApplyError::OutOfRange {
                line: cmd.last_line(),
                base_lines,
            }
            .into());
        }
    }

    let mut out = Vec::with_capacity(base.len() + script.len());
    let mut cursor = BaseCursor {
        base,
        base_lines,
        base_trailing,
        line: 0,
        byte: 0,
    };

    // Commands are stored descending; walking them in reverse lets one
    // forward cursor sweep the base exactly once.
    for cmd in commands.iter().rev() {
        match cmd.op {
            b'a' => {
                cursor.copy_lines(cmd.from, &mut out);
                copy_insert(script, cmd.ins_start, cmd.ins_end, &mut out);
            }
            b'c' => {
                cursor.copy_lines(cmd.from - 1, &mut out);
                cursor.skip_lines(cmd.to);
                copy_insert(script, cmd.ins_start, cmd.ins_end, &mut out);
            }
            _ => {
                cursor.copy_lines(cmd.from - 1, &mut out);
                cursor.skip_lines(cmd.to);
            }
        }
    }
    cursor.copy_lines(base_lines, &mut out);

    // Every emitted chunk was normalized to end in '\n'; restore the
    // target's trailing-newline state exactly as `EdScript::apply` does.
    if !target_trailing_newline && out.last() == Some(&b'\n') {
        out.pop();
    }
    Ok(out)
}

/// Forward cursor over the base bytes during application.
struct BaseCursor<'a> {
    base: &'a [u8],
    base_lines: usize,
    base_trailing: bool,
    /// Next base line to consume (0-based).
    line: usize,
    /// Byte offset where that line starts.
    byte: usize,
}

impl BaseCursor<'_> {
    /// Advances the cursor to the start of line `upto` (== the byte just
    /// past line `upto - 1`), returning that offset.
    fn advance_to(&mut self, upto: usize) -> usize {
        debug_assert!(upto >= self.line && upto <= self.base_lines);
        while self.line < upto {
            let rest = &self.base[self.byte..];
            match rest.iter().position(|&b| b == b'\n') {
                Some(k) => self.byte += k + 1,
                None => self.byte = self.base.len(),
            }
            self.line += 1;
        }
        self.byte
    }

    /// Copies base lines `[cursor, upto)` onto `out` as one slice copy,
    /// normalized so a non-empty chunk always ends in `\n`.
    fn copy_lines(&mut self, upto: usize, out: &mut Vec<u8>) {
        let start = self.byte;
        let reaches_end = upto == self.base_lines;
        let end = self.advance_to(upto);
        if end > start {
            out.extend_from_slice(&self.base[start..end]);
            if reaches_end && !self.base_trailing {
                out.push(b'\n');
            }
        }
    }

    /// Advances the cursor past line `upto - 1` without copying.
    fn skip_lines(&mut self, upto: usize) {
        self.advance_to(upto);
    }
}

/// Copies the raw insert lines `script[start..end]` onto `out`,
/// unescaping the leading-dot convention line by line.
fn copy_insert(script: &[u8], start: usize, end: usize, out: &mut Vec<u8>) {
    let mut pos = start;
    while pos < end {
        let rest = &script[pos..end];
        let line_len = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
        let line = &rest[..line_len];
        let content = if line.first() == Some(&b'.') {
            &line[1..] // unescape '..' (and '.x' -> 'x')
        } else {
            line
        };
        out.extend_from_slice(content);
        out.push(b'\n');
        pos += line_len + 1;
    }
}

/// Parses the textual script into range-based commands, mirroring
/// `EdScript::parse` (including its validation) without building `Line`
/// vectors.
fn parse_script(script: &[u8]) -> Result<(Vec<RawCommand>, bool), DeltaError> {
    // Sized up front: the command table is part of the documented
    // allocation budget (most deltas carry a handful of commands).
    let mut commands: Vec<RawCommand> = Vec::with_capacity(8);
    let mut target_trailing_newline = None;
    let mut pos = 0usize;
    let mut lineno = 0usize;

    while pos < script.len() {
        lineno += 1;
        let rest = &script[pos..];
        let line_len = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
        let raw = &rest[..line_len];
        pos = (pos + line_len + 1).min(script.len());

        if raw == b"w" || raw == b"W" {
            target_trailing_newline = Some(raw == b"w");
            continue;
        }
        let ((from, to), op) =
            split_command(raw).ok_or_else(|| crate::shim::parse_unrecognized(lineno, raw))?;
        match op {
            b'a' | b'c' => {
                let (ins_start, ins_end, next) = read_insert_range(script, pos, &mut lineno)?;
                pos = next;
                commands.push(RawCommand {
                    op,
                    from,
                    to,
                    ins_start,
                    ins_end,
                });
            }
            b'd' => {
                commands.push(RawCommand {
                    op,
                    from,
                    to,
                    ins_start: 0,
                    ins_end: 0,
                });
            }
            _ => return Err(crate::shim::parse_unknown_op(lineno, op).into()),
        }
    }

    let target_trailing_newline =
        target_trailing_newline.ok_or_else(crate::shim::parse_missing_marker)?;
    validate_commands(&commands)?;
    Ok((commands, target_trailing_newline))
}

/// Scans the insert block starting at `pos`, returning the byte range of
/// the content lines (still dot-escaped, excluding the `.\n` terminator)
/// and the position just past the terminator.
fn read_insert_range(
    script: &[u8],
    mut pos: usize,
    lineno: &mut usize,
) -> Result<(usize, usize, usize), DeltaError> {
    let start = pos;
    while pos < script.len() {
        *lineno += 1;
        let rest = &script[pos..];
        let line_len = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
        let raw = &rest[..line_len];
        let next = (pos + line_len + 1).min(script.len());
        if raw == b"." {
            return Ok((start, pos, next));
        }
        pos = next;
    }
    Err(crate::shim::parse_unterminated_insert().into())
}

/// Splits a command line like `3,7c` / `12a` into its address and opcode.
fn split_command(raw: &[u8]) -> Option<((usize, usize), u8)> {
    if raw.len() < 2 {
        return None;
    }
    let op = *raw.last()?;
    let addr = &raw[..raw.len() - 1];
    let text = std::str::from_utf8(addr).ok()?;
    if let Some((a, b)) = text.split_once(',') {
        let a: usize = a.parse().ok()?;
        let b: usize = b.parse().ok()?;
        Some(((a, b), op))
    } else {
        let a: usize = text.parse().ok()?;
        Some(((a, a), op))
    }
}

/// Structural validation mirroring `EdScript::validate`.
fn validate_commands(commands: &[RawCommand]) -> Result<(), DeltaError> {
    let mut prev_first: Option<usize> = None;
    for cmd in commands {
        if cmd.op != b'a' && (cmd.from == 0 || cmd.from > cmd.to) {
            return Err(crate::shim::parse_invalid_range(cmd.from, cmd.to).into());
        }
        if let Some(prev) = prev_first {
            if cmd.last_line() >= prev {
                return Err(crate::shim::parse_out_of_order(cmd.last_line(), prev).into());
            }
        }
        prev_first = Some(cmd.first_line());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(algo: DiffAlgorithm, old: &str, new: &str) -> DeltaScript {
        let old_buf = DocBuf::from_text(old);
        let new_buf = DocBuf::from_text(new);
        let mut scratch = DiffScratch::new();
        diff_docs(algo, &old_buf, &new_buf, &mut scratch)
    }

    const ALGOS: [DiffAlgorithm; 2] = [DiffAlgorithm::HuntMcIlroy, DiffAlgorithm::Myers];

    #[test]
    fn round_trip_through_apply_delta() {
        let cases = [
            ("", ""),
            ("", "a\nb\n"),
            ("a\nb\n", ""),
            ("a\nb\nc\n", "a\nX\nc\n"),
            ("a\nb", "a\nb\n"),
            ("a\nb\n", "a\nb"),
            ("x\nx\nx\n", "x\nx\n"),
            ("a\nb\nc\nd\ne\nf\n", "d\ne\nf\na\nb\nc\n"),
            (".\n..\n.x\n", "..\n.\ny\n"),
        ];
        for algo in ALGOS {
            for (old, new) in cases {
                let d = delta(algo, old, new);
                let text = d.to_text();
                let rebuilt = apply_delta(old.as_bytes(), &text).unwrap();
                assert_eq!(rebuilt, new.as_bytes(), "algo={algo} old={old:?} new={new:?}");
                assert_eq!(text.len(), d.wire_len(), "algo={algo} old={old:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let mut scratch = DiffScratch::new();
        let old = DocBuf::from_text("a\nb\nc\nd\n");
        let new = DocBuf::from_text("a\nx\nc\ny\n");
        let first = diff_docs(DiffAlgorithm::HuntMcIlroy, &old, &new, &mut scratch).to_text();
        // Warm scratch, different sizes in between.
        let big_old = DocBuf::from_text(&"line\n".repeat(500));
        let big_new = DocBuf::from_text(&"line\n".repeat(501));
        diff_docs(DiffAlgorithm::HuntMcIlroy, &big_old, &big_new, &mut scratch);
        let again = diff_docs(DiffAlgorithm::HuntMcIlroy, &old, &new, &mut scratch).to_text();
        assert_eq!(first, again);
    }

    #[test]
    fn anchor_trimming_narrows_the_window() {
        // A one-line edit in the middle: the interner must only see the
        // changed window, i.e. far fewer symbols than lines.
        let old_text: String = (0..1000).map(|i| format!("line {i}\n")).collect();
        let new_text = old_text.replace("line 500\n", "LINE 500\n");
        let old = DocBuf::from_bytes(old_text.into_bytes());
        let new = DocBuf::from_bytes(new_text.into_bytes());
        let mut scratch = DiffScratch::new();
        let d = diff_docs(DiffAlgorithm::HuntMcIlroy, &old, &new, &mut scratch);
        assert!(scratch.entries.len() <= 2, "window not trimmed");
        assert_eq!(d.command_count(), 1);
    }

    #[test]
    fn apply_delta_rejects_out_of_range() {
        let err = apply_delta(b"a\n", b"2d\nw\n").unwrap_err();
        assert_eq!(
            err,
            DeltaError::Apply(ApplyError::OutOfRange {
                line: 2,
                base_lines: 1
            })
        );
    }

    #[test]
    fn apply_delta_rejects_garbage() {
        assert!(matches!(
            apply_delta(b"a\n", b"not a script\n"),
            Err(DeltaError::Parse(_))
        ));
        assert!(matches!(
            apply_delta(b"a\n", b"1a\nno terminator\n"),
            Err(DeltaError::Parse(_))
        ));
        assert!(matches!(
            apply_delta(b"a\n", b""),
            Err(DeltaError::Parse(_))
        ));
        // Out-of-order commands are structural errors.
        assert!(matches!(
            apply_delta(b"a\nb\nc\n", b"1d\n3d\nw\n"),
            Err(DeltaError::Parse(_))
        ));
    }

    #[test]
    fn stats_match_legacy_semantics() {
        let d = delta(DiffAlgorithm::HuntMcIlroy, "a\nb\nc\nd\n", "a\nx\ny\nd\n");
        let s = d.stats();
        assert_eq!(s.hunks, 1);
        assert_eq!(s.lines_added, 2);
        assert_eq!(s.lines_removed, 2);
        assert_eq!(s.wire_len, d.to_text().len());
    }
}
