//! Zero-copy document buffer: one contiguous byte buffer plus a line
//! offset index.
//!
//! [`DocBuf`] is the allocation-free counterpart of [`Document`](crate::Document): instead
//! of one `Vec<u8>` per line it owns a single shared byte buffer and an
//! index of line start offsets, and hands out **borrowed** `&[u8]` line
//! views. Cloning a `DocBuf` is O(1) (the buffer and index live behind an
//! `Arc`), so a version chain can retain many versions and the diff
//! pipeline can hold base and target simultaneously without copying
//! either. The line index is computed once at construction; every
//! subsequent diff against the document reuses it.
//!
//! Embedded-newline safety is structural: lines are produced exclusively
//! by splitting the buffer on `\n`, so no `DocBuf` line can ever contain
//! one — in any build profile — unlike a hand-assembled `Vec<Line>`.

use std::fmt;
use std::sync::Arc;

#[cfg(test)]
use crate::document::Document;

#[derive(Debug, PartialEq, Eq, Hash)]
struct DocInner {
    /// The raw byte form, exactly as read or produced.
    bytes: Vec<u8>,
    /// Byte offset where each line starts, plus a final sentinel at
    /// `bytes.len()`. Empty buffers have a single sentinel entry.
    line_starts: Vec<u32>,
    /// Whether `bytes` ends with `\n`.
    trailing_newline: bool,
}

/// A text document as one contiguous byte buffer with a line-offset index.
///
/// Construction splits on `\n` exactly like
/// [`Document::from_bytes`](crate::Document::from_bytes)
/// (trailing-newline state preserved; non-UTF-8 content welcome), but the
/// lines are borrowed slices of the single buffer instead of per-line
/// allocations. See the [module docs](self) for the memory model.
///
/// # Example
///
/// ```
/// use shadow_diff::DocBuf;
///
/// let doc = DocBuf::from_bytes(b"alpha\nbeta\n".to_vec());
/// assert_eq!(doc.line_count(), 2);
/// assert_eq!(doc.line(1), b"beta");
/// assert_eq!(doc.as_bytes(), b"alpha\nbeta\n");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DocBuf {
    inner: Arc<DocInner>,
}

impl DocBuf {
    /// Creates an empty document (zero lines, no trailing newline).
    pub fn new() -> Self {
        DocBuf::from_bytes(Vec::new())
    }

    /// Builds the line index over `bytes`, taking ownership of the buffer.
    ///
    /// Semantics match [`Document::from_bytes`](crate::Document::from_bytes):
    /// an empty buffer yields an
    /// empty document, a buffer not ending in `\n` keeps its final partial
    /// line, and [`as_bytes`](DocBuf::as_bytes) returns the input
    /// byte-for-byte. Documents are limited to `u32::MAX` bytes (a frame
    /// can never carry more); larger input panics.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        assert!(
            u32::try_from(bytes.len()).is_ok(),
            "DocBuf is limited to u32::MAX bytes"
        );
        let trailing_newline = bytes.last() == Some(&b'\n');
        let mut line_starts = Vec::with_capacity(bytes.len() / 32 + 2);
        if !bytes.is_empty() {
            line_starts.push(0);
            let scan_end = bytes.len() - usize::from(trailing_newline);
            for (i, &b) in bytes.iter().enumerate().take(scan_end) {
                if b == b'\n' {
                    line_starts.push(i as u32 + 1);
                }
            }
        }
        line_starts.push(bytes.len() as u32);
        DocBuf {
            inner: Arc::new(DocInner {
                bytes,
                line_starts,
                trailing_newline,
            }),
        }
    }

    /// Convenience constructor from a `&str` (handy in tests and examples).
    pub fn from_text(text: &str) -> Self {
        DocBuf::from_bytes(text.as_bytes().into())
    }

    /// Converts an allocating [`Document`](crate::Document) (reassembles
    /// its byte form once).
    pub fn from_document(doc: &crate::Document) -> Self {
        DocBuf::from_bytes(doc.to_bytes())
    }

    /// The raw byte form, borrowed — no reassembly, no copy.
    pub fn as_bytes(&self) -> &[u8] {
        &self.inner.bytes
    }

    /// Total size of the byte form, including newlines.
    pub fn byte_len(&self) -> usize {
        self.inner.bytes.len()
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.inner.line_starts.len() - 1
    }

    /// Whether the document has no lines at all.
    pub fn is_empty(&self) -> bool {
        self.line_count() == 0
    }

    /// Whether the byte form ends with a trailing newline.
    pub fn has_trailing_newline(&self) -> bool {
        self.inner.trailing_newline
    }

    /// Line `index` (0-based) as a borrowed slice, without its newline.
    ///
    /// # Panics
    ///
    /// Panics if `index >= line_count()`.
    pub fn line(&self, index: usize) -> &[u8] {
        let starts = &self.inner.line_starts;
        let start = starts[index] as usize;
        let mut end = starts[index + 1] as usize;
        // All lines but possibly the last are terminated by '\n'.
        if end > start && self.inner.bytes[end - 1] == b'\n' {
            end -= 1;
        }
        &self.inner.bytes[start..end]
    }

}

impl Default for DocBuf {
    fn default() -> Self {
        DocBuf::new()
    }
}

impl fmt::Debug for DocBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DocBuf")
            .field("bytes", &self.byte_len())
            .field("lines", &self.line_count())
            .field("trailing_newline", &self.has_trailing_newline())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        let doc = DocBuf::from_bytes(Vec::new());
        assert!(doc.is_empty());
        assert_eq!(doc.line_count(), 0);
        assert_eq!(doc.as_bytes(), b"");
        assert!(!doc.has_trailing_newline());
    }

    #[test]
    fn matches_document_semantics() {
        for text in [
            &b""[..],
            b"x",
            b"x\n",
            b"a\nbb\nccc",
            b"a\nbb\nccc\n",
            b"\n",
            b"a\n\n\nb\n",
            &[0xff, 0xfe, b'\n', 0x00][..],
        ] {
            let doc = Document::from_bytes(text.to_vec());
            let buf = DocBuf::from_bytes(text.to_vec());
            assert_eq!(buf.line_count(), doc.line_count(), "text {text:?}");
            assert_eq!(
                buf.has_trailing_newline(),
                doc.has_trailing_newline(),
                "text {text:?}"
            );
            assert_eq!(buf.byte_len(), doc.byte_len(), "text {text:?}");
            for i in 0..doc.line_count() {
                assert_eq!(buf.line(i), doc.lines()[i].as_bytes(), "text {text:?} line {i}");
            }
            assert_eq!(buf.to_document(), doc, "text {text:?}");
            assert_eq!(buf.as_bytes(), text, "text {text:?}");
        }
    }

    #[test]
    fn clone_shares_the_buffer() {
        let a = DocBuf::from_text("one\ntwo\n");
        let b = a.clone();
        assert!(std::ptr::eq(a.as_bytes(), b.as_bytes()));
    }

    #[test]
    fn last_line_without_trailing_newline() {
        let buf = DocBuf::from_bytes(b"a\nbb\nccc".to_vec());
        assert_eq!(buf.line_count(), 3);
        assert_eq!(buf.line(2), b"ccc");
        assert!(!buf.has_trailing_newline());
    }
}
