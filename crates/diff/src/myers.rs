//! The Myers *O(ND)* difference algorithm, linear-space variant.
//!
//! Implements the divide-and-conquer form of Myers' greedy algorithm
//! (*An O(ND) Difference Algorithm and Its Variations*, 1986; published as a
//! practical file-comparison program by Miller & Myers \[MM85\], which the
//! shadow editing paper's future-work section names as a candidate to
//! evaluate). The structure follows the classic `xdiff` formulation: find a
//! point on an optimal edit path with simultaneous forward/backward frontier
//! searches, split the edit box there, and recurse; matches are emitted by
//! the common prefix/suffix trimming at each recursion level. Memory is
//! `O(N + M)` regardless of the edit distance.

use crate::algorithm::Match;
use crate::scratch::DiffScratch;

/// Sentinel priming out-of-range forward diagonals: always loses a `max`.
const FWD_SENTINEL: i64 = -1;
/// Sentinel priming out-of-range backward diagonals: always loses a `min`.
const BWD_SENTINEL: i64 = i64::MAX / 2;

/// Computes a longest common subsequence of `a` and `b` as strictly
/// increasing [`Match`]es, in `O((N + M) D)` time and linear space.
///
/// # Example
///
/// ```
/// use shadow_diff::myers::lcs_matches;
///
/// let matches = lcs_matches(&[1, 2, 3], &[2, 3, 4]);
/// assert_eq!(matches.len(), 2);
/// ```
pub fn lcs_matches(a: &[u32], b: &[u32]) -> Vec<Match> {
    let n = a.len() as i64;
    let m = b.len() as i64;
    // Global diagonals k = x - y range over [-m - 1, n + 1] including the
    // sentinel positions just outside the active frontier.
    let mut vf = vec![0i64; (n + m + 3) as usize];
    let mut vb = vec![0i64; (n + m + 3) as usize];
    let mut out = Vec::new();
    solve(a, b, 0, n, 0, m, &mut vf, &mut vb, &mut out);
    debug_assert!(out
        .windows(2)
        .all(|w| w[0].old_line < w[1].old_line && w[0].new_line < w[1].new_line));
    out
}

/// Scratch-backed variant of [`lcs_matches`]: reads the symbol windows
/// from `scratch.old_syms` / `scratch.new_syms`, reuses the frontier
/// vectors `vf` / `vb` across calls, and leaves the matches in
/// `scratch.matches` — zero heap allocation once the buffers are warm.
pub(crate) fn lcs_matches_scratch(scratch: &mut DiffScratch) {
    let DiffScratch {
        old_syms,
        new_syms,
        vf,
        vb,
        matches,
        ..
    } = scratch;
    matches.clear();
    let a: &[u32] = old_syms;
    let b: &[u32] = new_syms;
    let n = a.len() as i64;
    let m = b.len() as i64;
    let need = (n + m + 3) as usize;
    if vf.len() < need {
        vf.resize(need, 0);
        vb.resize(need, 0);
    }
    solve(a, b, 0, n, 0, m, vf, vb, matches);
    debug_assert!(matches
        .windows(2)
        .all(|w| w[0].old_line < w[1].old_line && w[0].new_line < w[1].new_line));
}

/// Recursively diffs the box `a[off1..lim1] × b[off2..lim2]`, appending the
/// matched pairs in order.
#[allow(clippy::too_many_arguments)]
fn solve(
    a: &[u32],
    b: &[u32],
    mut off1: i64,
    mut lim1: i64,
    mut off2: i64,
    mut lim2: i64,
    vf: &mut [i64],
    vb: &mut [i64],
    out: &mut Vec<Match>,
) {
    // Trim the common prefix: each trimmed pair is a match.
    while off1 < lim1 && off2 < lim2 && a[off1 as usize] == b[off2 as usize] {
        out.push(Match {
            old_line: off1 as usize,
            new_line: off2 as usize,
        });
        off1 += 1;
        off2 += 1;
    }
    // Trim the common suffix; the trimmed pairs sit on one diagonal, so a
    // count suffices to emit them after the interior recursion — no
    // per-level buffer.
    let mut suffix_len: i64 = 0;
    while off1 < lim1 && off2 < lim2 && a[(lim1 - 1) as usize] == b[(lim2 - 1) as usize] {
        lim1 -= 1;
        lim2 -= 1;
        suffix_len += 1;
    }

    // Base cases: one side exhausted means pure insert/delete — no matches.
    if off1 < lim1 && off2 < lim2 {
        if let Some((sx, sy)) = split_point(a, b, off1, lim1, off2, lim2, vf, vb) {
            solve(a, b, off1, sx, off2, sy, vf, vb, out);
            solve(a, b, sx, lim1, sy, lim2, vf, vb, out);
        }
        // A `None` here is impossible for a non-empty box (see
        // `split_point`); treated defensively as "no interior matches",
        // which still yields a correct (just non-minimal) script.
    }

    for t in 0..suffix_len {
        out.push(Match {
            old_line: (lim1 + t) as usize,
            new_line: (lim2 + t) as usize,
        });
    }
}

/// Finds a point `(x, y)` on an optimal edit path through the box, strictly
/// splitting it (neither sub-box equals the whole box).
///
/// Precondition: the box is non-empty on both sides and has no common
/// prefix/suffix (so its edit distance is at least 2), which guarantees the
/// split point is interior enough for the recursion to make progress.
#[allow(clippy::too_many_arguments)]
fn split_point(
    a: &[u32],
    b: &[u32],
    off1: i64,
    lim1: i64,
    off2: i64,
    lim2: i64,
    vf: &mut [i64],
    vb: &mut [i64],
) -> Option<(i64, i64)> {
    let m = b.len() as i64;
    let idx = |k: i64| -> usize { (k + m + 1) as usize };

    let dmin = off1 - lim2; // most negative feasible diagonal
    let dmax = lim1 - off2; // most positive feasible diagonal
    let fmid = off1 - off2; // diagonal through the top-left corner
    let bmid = lim1 - lim2; // diagonal through the bottom-right corner
    let odd = (fmid - bmid) % 2 != 0;

    let mut fmin = fmid;
    let mut fmax = fmid;
    let mut bmin = bmid;
    let mut bmax = bmid;
    vf[idx(fmid)] = off1;
    vb[idx(bmid)] = lim1;

    let max_ec = (lim1 - off1) + (lim2 - off2) + 1;
    for _ec in 1..=max_ec {
        // Expand the forward frontier, priming sentinels just outside it so
        // the in-range neighbour always wins the max below.
        if fmin > dmin {
            fmin -= 1;
            vf[idx(fmin - 1)] = FWD_SENTINEL;
        } else {
            fmin += 1;
        }
        if fmax < dmax {
            fmax += 1;
            vf[idx(fmax + 1)] = FWD_SENTINEL;
        } else {
            fmax -= 1;
        }
        let mut k = fmax;
        while k >= fmin {
            let mut x = if vf[idx(k - 1)] >= vf[idx(k + 1)] {
                vf[idx(k - 1)] + 1
            } else {
                vf[idx(k + 1)]
            };
            let mut y = x - k;
            while x < lim1 && y < lim2 && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            vf[idx(k)] = x;
            if odd && bmin <= k && k <= bmax && vb[idx(k)] <= x {
                return Some((x, y));
            }
            k -= 2;
        }

        // Expand the backward frontier.
        if bmin > dmin {
            bmin -= 1;
            vb[idx(bmin - 1)] = BWD_SENTINEL;
        } else {
            bmin += 1;
        }
        if bmax < dmax {
            bmax += 1;
            vb[idx(bmax + 1)] = BWD_SENTINEL;
        } else {
            bmax -= 1;
        }
        let mut k = bmax;
        while k >= bmin {
            let mut x = if vb[idx(k - 1)] < vb[idx(k + 1)] {
                vb[idx(k - 1)]
            } else {
                vb[idx(k + 1)] - 1
            };
            let mut y = x - k;
            while x > off1 && y > off2 && a[(x - 1) as usize] == b[(y - 1) as usize] {
                x -= 1;
                y -= 1;
            }
            vb[idx(k)] = x;
            if !odd && fmin <= k && k <= fmax && x <= vf[idx(k)] {
                return Some((x, y));
            }
            k -= 2;
        }
    }

    debug_assert!(false, "split_point failed to converge on a non-empty box");
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp_lcs_len(a: &[u32], b: &[u32]) -> usize {
        let mut row = vec![0usize; b.len() + 1];
        for &x in a {
            let mut diag = 0;
            for (j, &y) in b.iter().enumerate() {
                let up = row[j + 1];
                row[j + 1] = if x == y { diag + 1 } else { up.max(row[j]) };
                diag = up;
            }
        }
        row[b.len()]
    }

    fn assert_valid(a: &[u32], b: &[u32]) {
        let got = lcs_matches(a, b);
        let mut prev: Option<Match> = None;
        for mm in &got {
            assert_eq!(a[mm.old_line], b[mm.new_line], "a={a:?} b={b:?}");
            if let Some(p) = prev {
                assert!(
                    mm.old_line > p.old_line && mm.new_line > p.new_line,
                    "a={a:?} b={b:?}"
                );
            }
            prev = Some(*mm);
        }
        assert_eq!(got.len(), dp_lcs_len(a, b), "a={a:?} b={b:?}");
    }

    #[test]
    fn empty_inputs() {
        assert!(lcs_matches(&[], &[]).is_empty());
        assert!(lcs_matches(&[1, 2], &[]).is_empty());
        assert!(lcs_matches(&[], &[1, 2]).is_empty());
    }

    #[test]
    fn identical() {
        assert_valid(&[1, 2, 3, 4], &[1, 2, 3, 4]);
    }

    #[test]
    fn disjoint() {
        assert_valid(&[1, 2, 3], &[4, 5, 6]);
    }

    #[test]
    fn classic_myers_example() {
        // The worked example from Myers' paper: A = abcabba, B = cbabac.
        let a: Vec<u32> = "abcabba".bytes().map(u32::from).collect();
        let b: Vec<u32> = "cbabac".bytes().map(u32::from).collect();
        assert_valid(&a, &b);
        assert_eq!(lcs_matches(&a, &b).len(), 4);
    }

    #[test]
    fn single_element_cases() {
        assert_valid(&[1], &[1]);
        assert_valid(&[1], &[2]);
        assert_valid(&[1, 1, 1], &[1]);
        assert_valid(&[1], &[1, 1, 1]);
    }

    #[test]
    fn prefix_suffix_overlap() {
        assert_valid(&[1, 2, 3, 4, 5], &[1, 2, 9, 4, 5]);
        assert_valid(&[1, 2, 3], &[1, 2, 3, 4, 5]);
        assert_valid(&[3, 4, 5], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn heavy_repetition() {
        assert_valid(&[7; 50], &[7; 30]);
        assert_valid(&[1, 7, 1, 7, 1], &[7, 1, 7, 1, 7]);
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x3E25);
        let mut scratch = DiffScratch::new();
        for _ in 0..200 {
            let alphabet = rng.gen_range(1..6u32);
            let n = rng.gen_range(0..32);
            let m = rng.gen_range(0..32);
            let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..alphabet)).collect();
            let b: Vec<u32> = (0..m).map(|_| rng.gen_range(0..alphabet)).collect();
            scratch.old_syms.clear();
            scratch.old_syms.extend_from_slice(&a);
            scratch.new_syms.clear();
            scratch.new_syms.extend_from_slice(&b);
            lcs_matches_scratch(&mut scratch);
            assert_eq!(scratch.matches, lcs_matches(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn agrees_with_dp_oracle_on_random_inputs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA1CE);
        for _ in 0..400 {
            let alphabet = rng.gen_range(1..6u32);
            let n = rng.gen_range(0..32);
            let m = rng.gen_range(0..32);
            let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..alphabet)).collect();
            let b: Vec<u32> = (0..m).map(|_| rng.gen_range(0..alphabet)).collect();
            assert_valid(&a, &b);
        }
    }

    #[test]
    fn large_asymmetric_input() {
        let a: Vec<u32> = (0..2000).collect();
        let mut b = a.clone();
        b.retain(|x| x % 3 != 0);
        b.insert(100, 99999);
        assert_valid(&a, &b);
    }

    #[test]
    fn worst_case_total_rewrite_is_linear_space() {
        // 4k fully distinct lines on each side: D = 8k; the linear-space
        // variant must handle this without quadratic memory.
        let a: Vec<u32> = (0..4096).collect();
        let b: Vec<u32> = (100_000..104_096).collect();
        let got = lcs_matches(&a, &b);
        assert!(got.is_empty());
    }
}
