//! Byte run-length encoding.
//!
//! Format: a sequence of chunks, each beginning with a control byte `c`:
//!
//! * `c < 0x80` — a literal run: the next `c + 1` bytes are copied verbatim.
//! * `c >= 0x80` — a repeated run: the next byte repeats `c - 0x80 + 3`
//!   times (3–130).
//!
//! Runs shorter than 3 are always emitted as literals, so the worst-case
//! expansion is one control byte per 128 input bytes (< 0.8%).

use crate::{Codec, DecompressError};

/// The run-length codec. Stateless; construct with `Rle`.
///
/// # Example
///
/// ```
/// use shadow_compress::{Codec, Rle};
///
/// # fn main() -> Result<(), shadow_compress::DecompressError> {
/// let packed = Rle.compress(&[7u8; 100]);
/// assert_eq!(packed.len(), 2);
/// assert_eq!(Rle.decompress(&packed)?, vec![7u8; 100]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rle;

const MAX_LITERAL: usize = 128; // c in 0x00..=0x7F encodes 1..=128
const MIN_RUN: usize = 3;
const MAX_RUN: usize = 130; // c in 0x80..=0xFF encodes 3..=130

impl Codec for Rle {
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 8);
        let mut literal_start = 0usize;
        let mut pos = 0usize;

        let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
            let mut start = from;
            while start < to {
                let len = (to - start).min(MAX_LITERAL);
                out.push((len - 1) as u8);
                out.extend_from_slice(&input[start..start + len]);
                start += len;
            }
        };

        while pos < input.len() {
            // Measure the run starting here.
            let byte = input[pos];
            let mut run = 1usize;
            while pos + run < input.len() && input[pos + run] == byte && run < MAX_RUN {
                run += 1;
            }
            if run >= MIN_RUN {
                flush_literals(&mut out, literal_start, pos);
                out.push((0x80 + (run - MIN_RUN)) as u8);
                out.push(byte);
                pos += run;
                literal_start = pos;
            } else {
                pos += run;
            }
        }
        flush_literals(&mut out, literal_start, input.len());
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError> {
        let mut out = Vec::with_capacity(input.len() * 2);
        let mut pos = 0usize;
        while pos < input.len() {
            let control = input[pos];
            pos += 1;
            if control < 0x80 {
                let len = control as usize + 1;
                let end = pos + len;
                if end > input.len() {
                    return Err(DecompressError {
                        codec: "rle",
                        offset: pos,
                        reason: "truncated literal run",
                    });
                }
                out.extend_from_slice(&input[pos..end]);
                pos = end;
            } else {
                if pos >= input.len() {
                    return Err(DecompressError {
                        codec: "rle",
                        offset: pos,
                        reason: "truncated repeat run",
                    });
                }
                let count = (control - 0x80) as usize + MIN_RUN;
                let byte = input[pos];
                pos += 1;
                out.resize(out.len() + count, byte);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "rle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let packed = Rle.compress(input);
        assert_eq!(Rle.decompress(&packed).unwrap(), input);
        packed
    }

    #[test]
    fn empty() {
        assert!(round_trip(b"").is_empty());
    }

    #[test]
    fn single_byte() {
        round_trip(b"x");
    }

    #[test]
    fn long_run_compresses_hard() {
        let packed = round_trip(&[9u8; 1000]);
        // ceil(1000 / 130) chunks of 2 bytes.
        assert_eq!(packed.len(), 16);
    }

    #[test]
    fn incompressible_expansion_is_bounded() {
        let input: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let packed = round_trip(&input);
        assert!(packed.len() <= input.len() + input.len() / 128 + 1);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut input = Vec::new();
        input.extend_from_slice(b"header");
        input.extend_from_slice(&[0u8; 50]);
        input.extend_from_slice(b"middle");
        input.extend_from_slice(&[0xFFu8; 7]);
        input.extend_from_slice(b"tail");
        let packed = round_trip(&input);
        assert!(packed.len() < input.len());
    }

    #[test]
    fn two_byte_runs_stay_literal() {
        round_trip(b"aabbccddee");
    }

    #[test]
    fn exactly_min_and_max_run_lengths() {
        round_trip(&[5u8; MIN_RUN]);
        round_trip(&[5u8; MAX_RUN]);
        round_trip(&[5u8; MAX_RUN + 1]);
    }

    #[test]
    fn exactly_max_literal_length() {
        let input: Vec<u8> = (0..MAX_LITERAL as u8).collect();
        round_trip(&input);
        let input: Vec<u8> = (0..=MAX_LITERAL as u8).collect();
        round_trip(&input);
    }

    #[test]
    fn truncated_streams_error() {
        // Literal run announcing 4 bytes with only 2 present.
        assert!(Rle.decompress(&[0x03, b'a', b'b']).is_err());
        // Repeat run with no byte.
        assert!(Rle.decompress(&[0x80]).is_err());
    }
}
