//! LZSS: sliding-window Lempel–Ziv with literal/copy flag bits.
//!
//! Format: groups of up to 8 items preceded by one flag byte (LSB first;
//! bit set = copy, clear = literal). A literal is one raw byte. A copy is
//! two bytes: `dddddddd dddd llll` — a 12-bit distance (1–4096, stored
//! minus 1) and a 4-bit length (stored minus [`MIN_MATCH`], encoding
//! 3–18). Copies may overlap themselves (distance < length), giving cheap
//! run encoding.

use crate::{Codec, DecompressError};

/// Sliding window size (must match the 12-bit distance field).
const WINDOW: usize = 4096;
/// Shortest copy worth emitting (a copy costs 2 bytes + 1/8 flag).
const MIN_MATCH: usize = 3;
/// Longest copy the 4-bit length field can express.
const MAX_MATCH: usize = MIN_MATCH + 15;
/// Hash-chain search depth; higher finds better matches, slower.
const MAX_CHAIN: usize = 64;

/// The LZSS codec.
///
/// # Example
///
/// ```
/// use shadow_compress::{Codec, Lzss};
///
/// # fn main() -> Result<(), shadow_compress::DecompressError> {
/// let text = b"the cat sat on the mat; the cat sat on the hat".to_vec();
/// let codec = Lzss::default();
/// let packed = codec.compress(&text);
/// assert!(packed.len() < text.len());
/// assert_eq!(codec.decompress(&packed)?, text);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lzss {
    /// Match-search effort: candidate chain length examined per position.
    max_chain: usize,
}

impl Default for Lzss {
    fn default() -> Self {
        Lzss {
            max_chain: MAX_CHAIN,
        }
    }
}

impl Lzss {
    /// Creates a codec with a custom search depth (1 = fastest/greediest,
    /// larger = better ratio).
    pub fn with_search_depth(max_chain: usize) -> Self {
        Lzss {
            max_chain: max_chain.max(1),
        }
    }
}

fn hash3(bytes: &[u8]) -> usize {
    let h = (bytes[0] as u32) | ((bytes[1] as u32) << 8) | ((bytes[2] as u32) << 16);
    (h.wrapping_mul(0x9E37_79B1) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 13;

impl Codec for Lzss {
    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        // head[h] = most recent position with hash h; prev[p & mask] = the
        // position before p in that chain.
        let mut head = vec![usize::MAX; HASH_SIZE];
        let mut prev = vec![usize::MAX; WINDOW];

        let mut flag_at: Option<usize> = None;
        let mut flag_bit = 0u8;
        let mut push_item = |out: &mut Vec<u8>, is_copy: bool, bytes: &[u8]| {
            let at = match flag_at {
                Some(at) if flag_bit < 8 => at,
                _ => {
                    out.push(0);
                    flag_bit = 0;
                    let at = out.len() - 1;
                    flag_at = Some(at);
                    at
                }
            };
            if is_copy {
                out[at] |= 1 << flag_bit;
            }
            flag_bit += 1;
            out.extend_from_slice(bytes);
        };

        let mut pos = 0usize;
        while pos < input.len() {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if pos + MIN_MATCH <= input.len() {
                let h = hash3(&input[pos..]);
                let mut cand = head[h];
                let mut chain = self.max_chain;
                while cand != usize::MAX && chain > 0 {
                    if pos - cand > WINDOW {
                        break;
                    }
                    let limit = (input.len() - pos).min(MAX_MATCH);
                    let mut len = 0usize;
                    while len < limit && input[cand + len] == input[pos + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_dist = pos - cand;
                        if len == MAX_MATCH {
                            break;
                        }
                    }
                    let next = prev[cand % WINDOW];
                    // Chains only move backwards; a stale slot would loop.
                    if next >= cand {
                        break;
                    }
                    cand = next;
                    chain -= 1;
                }
            }

            let take = if best_len >= MIN_MATCH {
                let dist_code = best_dist - 1; // 0..4095
                let len_code = best_len - MIN_MATCH; // 0..15
                let b0 = (dist_code & 0xFF) as u8;
                let b1 = (((dist_code >> 8) as u8) << 4) | len_code as u8;
                push_item(&mut out, true, &[b0, b1]);
                best_len
            } else {
                push_item(&mut out, false, &[input[pos]]);
                1
            };

            // Insert the consumed positions into the hash chains.
            for p in pos..pos + take {
                if p + MIN_MATCH <= input.len() {
                    let h = hash3(&input[p..]);
                    prev[p % WINDOW] = head[h];
                    head[h] = p;
                }
            }
            pos += take;
        }
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError> {
        let mut out = Vec::with_capacity(input.len() * 2);
        let mut pos = 0usize;
        while pos < input.len() {
            let flags = input[pos];
            pos += 1;
            for bit in 0..8 {
                if pos >= input.len() {
                    break;
                }
                if flags & (1 << bit) != 0 {
                    if pos + 2 > input.len() {
                        return Err(DecompressError {
                            codec: "lzss",
                            offset: pos,
                            reason: "truncated copy item",
                        });
                    }
                    let b0 = input[pos] as usize;
                    let b1 = input[pos + 1] as usize;
                    pos += 2;
                    let dist = (b0 | ((b1 >> 4) << 8)) + 1;
                    let len = (b1 & 0x0F) + MIN_MATCH;
                    if dist > out.len() {
                        return Err(DecompressError {
                            codec: "lzss",
                            offset: pos - 2,
                            reason: "copy distance exceeds produced output",
                        });
                    }
                    let start = out.len() - dist;
                    for i in 0..len {
                        let byte = out[start + i];
                        out.push(byte);
                    }
                } else {
                    out.push(input[pos]);
                    pos += 1;
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "lzss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let codec = Lzss::default();
        let packed = codec.compress(input);
        assert_eq!(codec.decompress(&packed).unwrap(), input);
        packed
    }

    #[test]
    fn empty_and_tiny() {
        assert!(round_trip(b"").is_empty());
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_text_compresses() {
        let input: Vec<u8> = b"lorem ipsum dolor sit amet "
            .iter()
            .copied()
            .cycle()
            .take(8192)
            .collect();
        let packed = round_trip(&input);
        assert!(
            packed.len() < input.len() / 4,
            "packed {} of {}",
            packed.len(),
            input.len()
        );
    }

    #[test]
    fn self_overlapping_run() {
        // "aaaa..." forces copies with distance 1 < length.
        let packed = round_trip(&[b'a'; 500]);
        assert!(packed.len() < 80);
    }

    #[test]
    fn incompressible_random_data_round_trips() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let input: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        let packed = round_trip(&input);
        // 1 flag byte per 8 literals → at most 12.5% expansion.
        assert!(packed.len() <= input.len() + input.len() / 8 + 2);
    }

    #[test]
    fn long_distance_matches_within_window() {
        let mut input = vec![0u8; 0];
        input.extend_from_slice(b"unique-prefix-material-0123456789");
        input.extend(std::iter::repeat_n(b'.', 3000));
        input.extend_from_slice(b"unique-prefix-material-0123456789");
        let packed = round_trip(&input);
        // The 3000-dot run costs ~2 bytes per MAX_MATCH copy; the repeated
        // prefix (3033 bytes back, inside the 4 KiB window) costs a few
        // copies instead of 33 literals.
        assert!(packed.len() < 500, "packed {}", packed.len());
    }

    #[test]
    fn matches_beyond_window_are_not_used() {
        // Same content repeated 8 KiB apart: outside the 4 KiB window, so
        // it must still round-trip (as literals).
        let mut input = b"The quick brown fox jumps over the lazy dog".to_vec();
        input.extend(std::iter::repeat_with({
            let mut x = 0u32;
            move || {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            }
        }).take(8192));
        input.extend_from_slice(b"The quick brown fox jumps over the lazy dog");
        round_trip(&input);
    }

    #[test]
    fn search_depth_trades_ratio() {
        let input: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(4096).collect();
        let fast = Lzss::with_search_depth(1).compress(&input);
        let thorough = Lzss::with_search_depth(256).compress(&input);
        assert!(thorough.len() <= fast.len());
        assert_eq!(Lzss::default().decompress(&fast).unwrap(), input);
        assert_eq!(Lzss::default().decompress(&thorough).unwrap(), input);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        // Copy referencing before the start of output.
        let bad = vec![0b0000_0001, 0xFF, 0xFF];
        assert!(Lzss::default().decompress(&bad).is_err());
        // Truncated copy.
        let bad = vec![0b0000_0001, 0x00];
        assert!(Lzss::default().decompress(&bad).is_err());
    }

    #[test]
    fn text_file_like_content() {
        let text: String = (0..500)
            .map(|i| format!("measurement[{i}] = {}\n", i * 37 % 1000))
            .collect();
        let packed = round_trip(text.as_bytes());
        assert!(packed.len() < text.len() / 2);
    }
}
