//! Transfer-encoding codecs for shadow editing payloads.
//!
//! The paper's future-work section (§8.3) proposes exploring "data
//! compression techniques to improve the efficiency of data transfer".
//! This crate provides the two codecs the service's
//! `TransferEncoding` selects between, behind a common [`Codec`] trait:
//!
//! * [`Rle`] — byte run-length encoding; near-zero CPU cost, wins only on
//!   repetitive data, never expands by more than 1/128.
//! * [`Lzss`] — a sliding-window Lempel–Ziv (LZSS) codec with a 4 KiB
//!   window; a realistic stand-in for the late-1980s state of practice
//!   (LZ77-family compressors of the `compress`(1) era).
//!
//! Both formats are self-delimiting given the compressed length and carry
//! no header; the transfer encoding travels out-of-band in the protocol.
//!
//! # Example
//!
//! ```
//! use shadow_compress::{Codec, Lzss};
//!
//! # fn main() -> Result<(), shadow_compress::DecompressError> {
//! let input = b"abcabcabcabcabcabcabcabc".to_vec();
//! let codec = Lzss::default();
//! let packed = codec.compress(&input);
//! assert!(packed.len() < input.len());
//! assert_eq!(codec.decompress(&packed)?, input);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lzss;
mod rle;

pub use lzss::Lzss;
pub use rle::Rle;

use std::error::Error;
use std::fmt;

/// A lossless byte-stream codec.
pub trait Codec {
    /// Compresses `input` into a fresh buffer.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompresses `input` into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] when `input` is not a valid stream for
    /// this codec (truncated, or referencing data outside the window).
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, DecompressError>;

    /// The codec's short name, e.g. `"rle"`.
    fn name(&self) -> &'static str;
}

/// Error decompressing a corrupt or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompressError {
    /// Which codec rejected the stream.
    pub codec: &'static str,
    /// Byte offset at which the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub reason: &'static str,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stream invalid at byte {}: {}",
            self.codec, self.offset, self.reason
        )
    }
}

impl Error for DecompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DecompressError {
            codec: "rle",
            offset: 3,
            reason: "truncated run",
        };
        assert_eq!(e.to_string(), "rle stream invalid at byte 3: truncated run");
    }

    #[test]
    fn codecs_expose_names() {
        assert_eq!(Rle.name(), "rle");
        assert_eq!(Lzss::default().name(), "lzss");
    }
}
