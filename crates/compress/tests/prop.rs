//! Property tests: both codecs are lossless on arbitrary input, and their
//! decoders never panic on junk.

use proptest::prelude::*;
use shadow_compress::{Codec, Lzss, Rle};

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        prop::collection::vec(any::<u8>(), 0..2048),
        // Runs and repetition, the codecs' favourable cases.
        (any::<u8>(), 1usize..2048).prop_map(|(b, n)| vec![b; n]),
        (prop::collection::vec(any::<u8>(), 1..32), 1usize..64).prop_map(|(unit, reps)| {
            unit.iter().copied().cycle().take(unit.len() * reps).collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rle_round_trips(input in arb_input()) {
        let packed = Rle.compress(&input);
        prop_assert_eq!(Rle.decompress(&packed).unwrap(), input);
    }

    #[test]
    fn lzss_round_trips(input in arb_input()) {
        let codec = Lzss::default();
        let packed = codec.compress(&input);
        prop_assert_eq!(codec.decompress(&packed).unwrap(), input);
    }

    #[test]
    fn lzss_round_trips_at_any_search_depth(input in arb_input(), depth in 1usize..128) {
        let codec = Lzss::with_search_depth(depth);
        let packed = codec.compress(&input);
        prop_assert_eq!(Lzss::default().decompress(&packed).unwrap(), input);
    }

    #[test]
    fn decoders_never_panic_on_junk(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Rle.decompress(&junk);
        let _ = Lzss::default().decompress(&junk);
    }

    #[test]
    fn rle_expansion_bound(input in prop::collection::vec(any::<u8>(), 0..4096)) {
        let packed = Rle.compress(&input);
        prop_assert!(packed.len() <= input.len() + input.len() / 128 + 1);
    }

    #[test]
    fn lzss_expansion_bound(input in prop::collection::vec(any::<u8>(), 0..4096)) {
        let packed = Lzss::default().compress(&input);
        prop_assert!(packed.len() <= input.len() + input.len() / 8 + 2);
    }
}
