//! A live deployment of the service: real threads, real queues.
//!
//! The same sans-io state machines that power the deterministic
//! [`Simulation`](crate::Simulation) here run over actual concurrency: the
//! server in its own thread, each client driven by its caller, connected
//! by in-process duplex pipes carrying the same encoded frames that the
//! simulator carries. Nothing in the protocol code knows which world it is
//! in — the paper's prototype structure (client and server as processes
//! talking TCP) with the transport swapped for an in-process pipe.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use shadow_client::{
    ClientAction, ClientConfig, ClientError, ClientEvent, ClientNode, ConnId, FileRef,
    Notification,
};
use shadow_netsim::pipe::{duplex, PipeEnd};
use shadow_proto::{
    ClientMessage, Frame, JobId, JobStats, RequestId, ServerMessage, SubmitOptions, WireError,
};
use shadow_server::{ServerAction, ServerConfig, ServerEvent, ServerNode, SessionId, TimerToken};

/// Errors from the live system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// The peer hung up.
    Disconnected,
    /// A wait timed out.
    Timeout,
    /// A client command failed.
    Client(ClientError),
    /// A frame failed to decode.
    Wire(WireError),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Disconnected => write!(f, "peer disconnected"),
            LiveError::Timeout => write!(f, "timed out waiting for the server"),
            LiveError::Client(e) => write!(f, "client: {e}"),
            LiveError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl Error for LiveError {}

impl From<ClientError> for LiveError {
    fn from(e: ClientError) -> Self {
        LiveError::Client(e)
    }
}
impl From<WireError> for LiveError {
    fn from(e: WireError) -> Self {
        LiveError::Wire(e)
    }
}

/// A transport that moves whole frames — implemented by the in-process
/// [`PipeEnd`] and by [`TcpFramed`](shadow_netsim::tcp::TcpFramed), so one
/// client driver serves both.
pub trait FrameTransport {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`LiveError::Disconnected`] when the peer is gone.
    fn send_frame(&mut self, frame: Vec<u8>) -> Result<(), LiveError>;

    /// Receives a pending frame without blocking beyond a few
    /// milliseconds; `Ok(None)` when nothing is available.
    ///
    /// # Errors
    ///
    /// [`LiveError::Disconnected`] when the peer is gone.
    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, LiveError>;
}

impl FrameTransport for PipeEnd {
    fn send_frame(&mut self, frame: Vec<u8>) -> Result<(), LiveError> {
        PipeEnd::send(self, frame).map_err(|_| LiveError::Disconnected)
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, LiveError> {
        PipeEnd::recv_timeout(self, timeout).map_err(|_| LiveError::Disconnected)
    }
}

impl FrameTransport for shadow_netsim::tcp::TcpFramed {
    fn send_frame(&mut self, frame: Vec<u8>) -> Result<(), LiveError> {
        shadow_netsim::tcp::TcpFramed::send(self, &frame).map_err(|_| LiveError::Disconnected)
    }

    fn recv_frame(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, LiveError> {
        shadow_netsim::tcp::TcpFramed::recv_timeout(self, timeout)
            .map_err(|_| LiveError::Disconnected)
    }
}


/// A running shadow server thread plus a registrar for new clients.
///
/// # Example
///
/// ```
/// use shadow::{ClientConfig, LiveSystem, ServerConfig, SubmitOptions, FileRef};
/// use shadow_proto::FileId;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), shadow::LiveError> {
/// let system = LiveSystem::start(ServerConfig::new("superc"));
/// let mut client = system.connect_client(ClientConfig::new("ws1", 1));
/// client.wait_ready(Duration::from_secs(2))?;
///
/// let job = FileRef::new(FileId::new(1), "ws1:/hello.job");
/// client.edit_finished(&job, b"echo hello\n".to_vec());
/// client.submit(&job, &[], SubmitOptions::default())?;
/// let (_, output, _, _) = client.wait_job(Duration::from_secs(5))?;
/// assert_eq!(output, b"hello\n");
/// # drop(client);
/// # system.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct LiveSystem {
    handle: Option<JoinHandle<ServerNode>>,
    registrar: Sender<PipeEnd>,
}

impl LiveSystem {
    /// Starts the server thread.
    pub fn start(config: ServerConfig) -> Self {
        let (registrar, reg_rx) = unbounded::<PipeEnd>();
        let handle = std::thread::Builder::new()
            .name("shadow-server".to_string())
            .spawn(move || {
                let mut node = ServerNode::new(config);
                let mut sessions: Vec<(SessionId, PipeEnd, bool)> = Vec::new();
                let mut next_session = 0u64;
                let mut timers: Vec<(Instant, TimerToken)> = Vec::new();
                let started = Instant::now();
                let now_ms = |started: Instant| started.elapsed().as_millis() as u64;
                loop {
                    let mut busy = false;
                    // New clients.
                    loop {
                        match reg_rx.try_recv() {
                            Ok(pipe) => {
                                next_session += 1;
                                let session = SessionId::new(next_session);
                                node.handle(ServerEvent::Connected {
                                    session,
                                    now_ms: now_ms(started),
                                });
                                sessions.push((session, pipe, true));
                                busy = true;
                            }
                            Err(crossbeam::channel::TryRecvError::Empty) => break,
                            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                                if sessions.iter().all(|(_, _, alive)| !alive) {
                                    return node;
                                }
                                break;
                            }
                        }
                    }
                    // Incoming frames.
                    let mut to_run: Vec<(SessionId, ClientMessage)> = Vec::new();
                    for (session, pipe, alive) in sessions.iter_mut() {
                        if !*alive {
                            continue;
                        }
                        loop {
                            match pipe.try_recv() {
                                Ok(Some(frame)) => {
                                    if let Ok(Some((message, _))) =
                                        Frame::decode::<ClientMessage>(&frame)
                                    {
                                        to_run.push((*session, message));
                                    }
                                    busy = true;
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    *alive = false;
                                    break;
                                }
                            }
                        }
                    }
                    let mut actions = Vec::new();
                    for (session, message) in to_run {
                        actions.extend(node.handle(ServerEvent::Message {
                            session,
                            message,
                            now_ms: now_ms(started),
                        }));
                    }
                    // Due timers.
                    let now = Instant::now();
                    let mut due = Vec::new();
                    timers.retain(|(at, token)| {
                        if *at <= now {
                            due.push(*token);
                            false
                        } else {
                            true
                        }
                    });
                    for token in due {
                        busy = true;
                        actions.extend(node.handle(ServerEvent::Timer {
                            token,
                            now_ms: now_ms(started),
                        }));
                    }
                    // Perform actions.
                    for action in actions {
                        match action {
                            ServerAction::Send { session, message } => {
                                if let Some((_, pipe, alive)) =
                                    sessions.iter_mut().find(|(s, _, _)| *s == session)
                                {
                                    if *alive && pipe.send(Frame::encode(&message)).is_err() {
                                        *alive = false;
                                    }
                                }
                            }
                            ServerAction::SetTimer { delay_ms, token } => {
                                timers.push((
                                    Instant::now() + Duration::from_millis(delay_ms),
                                    token,
                                ));
                            }
                        }
                    }
                    // Exit when the registrar is gone and every client left.
                    let registrar_gone =
                        matches!(reg_rx.try_recv(), Err(crossbeam::channel::TryRecvError::Disconnected));
                    if registrar_gone
                        && sessions.iter().all(|(_, _, alive)| !alive)
                        && timers.is_empty()
                    {
                        return node;
                    }
                    if !busy {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
            .expect("spawn server thread");
        LiveSystem {
            handle: Some(handle),
            registrar,
        }
    }

    /// Connects a new client: sends the `Hello` immediately.
    pub fn connect_client(&self, config: ClientConfig) -> LiveClient {
        let (client_end, server_end) = duplex();
        self.registrar
            .send(server_end)
            .expect("server thread is running");
        LiveClient::over_transport(config, client_end)
            .expect("hello on a fresh pipe cannot fail")
    }

    /// Stops accepting clients and waits for the server thread to finish
    /// (all clients must have been dropped), returning the final server
    /// state for inspection.
    pub fn shutdown(mut self) -> ServerNode {
        drop(self.registrar);
        self.handle
            .take()
            .expect("not yet shut down")
            .join()
            .expect("server thread panicked")
    }
}

/// A client of a live deployment, driven by the calling thread; generic
/// over the frame transport (in-process pipe or TCP).
pub struct LiveClient<T: FrameTransport = PipeEnd> {
    node: ClientNode,
    pipe: T,
    conn: ConnId,
    notifications: VecDeque<Notification>,
    started: Instant,
}

impl<T: FrameTransport> LiveClient<T> {
    /// Builds a client over an established transport and sends the
    /// `Hello`.
    ///
    /// # Errors
    ///
    /// Transport failures sending the handshake.
    pub fn over_transport(config: ClientConfig, transport: T) -> Result<Self, LiveError> {
        let mut client = LiveClient {
            node: ClientNode::new(config),
            pipe: transport,
            conn: ConnId::new(0),
            notifications: VecDeque::new(),
            started: Instant::now(),
        };
        let actions = client.node.connect(client.conn);
        client.perform(actions)?;
        Ok(client)
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn perform(&mut self, actions: Vec<ClientAction>) -> Result<(), LiveError> {
        for action in actions {
            match action {
                ClientAction::Send { message, .. } => {
                    self.pipe.send_frame(Frame::encode(&message))?;
                }
                ClientAction::Notify(n) => self.notifications.push_back(n),
            }
        }
        Ok(())
    }

    /// Processes any frames that have arrived; returns how many.
    ///
    /// # Errors
    ///
    /// [`LiveError::Disconnected`] when the server is gone.
    pub fn pump(&mut self) -> Result<usize, LiveError> {
        let mut n = 0;
        while let Some(frame) = self.pipe.recv_frame(Duration::ZERO)? {
            let (message, _) = Frame::decode::<ServerMessage>(&frame)?
                .expect("pipes carry whole frames");
            let actions = self.node.handle(ClientEvent::Message {
                conn: self.conn,
                message,
                now_ms: self.now_ms(),
            });
            self.perform(actions)?;
            n += 1;
        }
        Ok(n)
    }

    /// Pumps until `pred` matches a queued notification (which is removed
    /// and returned) or the timeout elapses.
    ///
    /// # Errors
    ///
    /// [`LiveError::Timeout`] or [`LiveError::Disconnected`].
    pub fn wait_for(
        &mut self,
        timeout: Duration,
        mut pred: impl FnMut(&Notification) -> bool,
    ) -> Result<Notification, LiveError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(pos) = self.notifications.iter().position(&mut pred) {
                return Ok(self.notifications.remove(pos).expect("position valid"));
            }
            if Instant::now() >= deadline {
                return Err(LiveError::Timeout);
            }
            match self.pipe.recv_frame(Duration::from_millis(10)) {
                Ok(Some(frame)) => {
                    let (message, _) = Frame::decode::<ServerMessage>(&frame)?
                        .expect("pipes carry whole frames");
                    let actions = self.node.handle(ClientEvent::Message {
                        conn: self.conn,
                        message,
                        now_ms: self.now_ms(),
                    });
                    self.perform(actions)?;
                }
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Waits for the session handshake to complete.
    ///
    /// # Errors
    ///
    /// [`LiveError::Timeout`] or [`LiveError::Disconnected`].
    pub fn wait_ready(&mut self, timeout: Duration) -> Result<(), LiveError> {
        self.wait_for(timeout, |n| matches!(n, Notification::SessionReady { .. }))
            .map(|_| ())
    }

    /// Records an editing session's result (the shadow post-processor).
    pub fn edit_finished(&mut self, file: &FileRef, content: Vec<u8>) {
        let (_, actions) = self.node.edit_finished(file, content);
        // A send failure surfaces on the next pump.
        let _ = self.perform(actions);
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// Client-command or transport failures.
    pub fn submit(
        &mut self,
        job_file: &FileRef,
        data_files: &[FileRef],
        options: SubmitOptions,
    ) -> Result<RequestId, LiveError> {
        let (request, actions) = self.node.submit(self.conn, job_file, data_files, options)?;
        self.perform(actions)?;
        Ok(request)
    }

    /// Queries job status.
    ///
    /// # Errors
    ///
    /// Client-command or transport failures.
    pub fn status(&mut self, job: Option<JobId>) -> Result<RequestId, LiveError> {
        let (request, actions) = self.node.status(self.conn, job)?;
        self.perform(actions)?;
        Ok(request)
    }

    /// Waits for the next completed job, returning
    /// `(job, output, errors, stats)`.
    ///
    /// # Errors
    ///
    /// [`LiveError::Timeout`] or [`LiveError::Disconnected`].
    pub fn wait_job(
        &mut self,
        timeout: Duration,
    ) -> Result<(JobId, Vec<u8>, Vec<u8>, JobStats), LiveError> {
        let n = self.wait_for(timeout, |n| matches!(n, Notification::JobFinished { .. }))?;
        match n {
            Notification::JobFinished {
                job,
                output,
                errors,
                stats,
                ..
            } => Ok((job, output, errors, stats)),
            _ => unreachable!("predicate matched JobFinished"),
        }
    }

    /// Removes and returns all queued notifications.
    pub fn take_notifications(&mut self) -> Vec<Notification> {
        self.notifications.drain(..).collect()
    }

    /// The client's traffic counters.
    pub fn metrics(&self) -> shadow_client::ClientMetrics {
        self.node.metrics()
    }

    /// Direct access to the protocol node (persistence, diagnostics).
    pub fn node(&self) -> &ClientNode {
        &self.node
    }

    /// Mutable access to the protocol node (restoring persisted version
    /// chains before use).
    pub fn node_mut(&mut self) -> &mut ClientNode {
        &mut self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_proto::FileId;

    fn fref(id: u64, name: &str) -> FileRef {
        FileRef::new(FileId::new(id), name)
    }

    #[test]
    fn live_round_trip_runs_a_job() {
        let system = LiveSystem::start(ServerConfig::new("sc"));
        let mut client = system.connect_client(ClientConfig::new("ws1", 1));
        client.wait_ready(Duration::from_secs(5)).unwrap();

        let job = fref(1, "ws1:/hello.job");
        client.edit_finished(&job, b"echo live\n".to_vec());
        client.submit(&job, &[], SubmitOptions::default()).unwrap();
        let (_, output, errors, stats) = client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(output, b"live\n");
        assert!(errors.is_empty());
        assert_eq!(stats.exit_code, 0);
        drop(client);
        let server = system.shutdown();
        assert_eq!(server.metrics().jobs_completed, 1);
    }

    #[test]
    fn live_resubmission_uses_delta() {
        let system = LiveSystem::start(ServerConfig::new("sc"));
        let mut client = system.connect_client(ClientConfig::new("ws1", 1));
        client.wait_ready(Duration::from_secs(5)).unwrap();

        let data = fref(2, "ws1:/data");
        let job = fref(1, "ws1:/job");
        let content: Vec<u8> = (0..500)
            .flat_map(|i| format!("row {i}\n").into_bytes())
            .collect();
        client.edit_finished(&data, content.clone());
        client.edit_finished(&job, b"wc ws1:/data\n".to_vec());
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();

        let mut edited = content.clone();
        edited.extend_from_slice(b"one more row\n");
        client.edit_finished(&data, edited);
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(client.metrics().deltas_sent, 1);

        drop(client);
        let server = system.shutdown();
        assert_eq!(server.metrics().delta_updates, 1);
        assert_eq!(server.metrics().jobs_completed, 2);
    }

    #[test]
    fn multiple_live_clients_share_a_server() {
        let system = LiveSystem::start(ServerConfig::new("sc").with_max_running(2));
        let mut c1 = system.connect_client(ClientConfig::new("ws1", 1));
        let mut c2 = system.connect_client(ClientConfig::new("ws2", 1));
        c1.wait_ready(Duration::from_secs(5)).unwrap();
        c2.wait_ready(Duration::from_secs(5)).unwrap();

        // Distinct files get distinct ids within the shared domain (name
        // resolution guarantees this; here we assign them by hand).
        let j1 = fref(1, "ws1:/a.job");
        let j2 = fref(2, "ws2:/b.job");
        c1.edit_finished(&j1, b"echo from ws1\n".to_vec());
        c2.edit_finished(&j2, b"echo from ws2\n".to_vec());
        c1.submit(&j1, &[], SubmitOptions::default()).unwrap();
        c2.submit(&j2, &[], SubmitOptions::default()).unwrap();
        let (_, o1, _, _) = c1.wait_job(Duration::from_secs(10)).unwrap();
        let (_, o2, _, _) = c2.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(o1, b"from ws1\n");
        assert_eq!(o2, b"from ws2\n");
        drop(c1);
        drop(c2);
        let server = system.shutdown();
        assert_eq!(server.metrics().jobs_completed, 2);
    }
}
