//! A live deployment of the service: real threads, real queues.
//!
//! The same sans-io state machines that power the deterministic
//! [`Simulation`](crate::Simulation) here run over actual concurrency: the
//! server in its own thread, each client driven by its caller, connected
//! by in-process duplex pipes carrying the same encoded frames that the
//! simulator carries. Nothing in the protocol code knows which world it is
//! in — the paper's prototype structure (client and server as processes
//! talking TCP) with the transport swapped for an in-process pipe.
//!
//! All protocol dispatch lives in `shadow-runtime`: the server thread is a
//! [`ServerRuntime`] polled over a channel of accepted pipes, and
//! [`LiveClient`] wraps a [`ClientDriver`] around whatever
//! [`FrameTransport`] it was given.

use std::error::Error;
use std::fmt;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use shadow_client::{ClientConfig, ClientError, ConnId, FileRef, Notification};
use shadow_netsim::pipe::{duplex, PipeEnd};
use shadow_proto::{JobId, JobStats, RequestId, SubmitOptions, WireError};
use shadow_obs::NodeReport;
use shadow_runtime::{
    Accepted, ClientDriver, ClientOutbound, Clock, EventHook, FeedError, FrameTransport,
    PersistSink, ServerRuntime, SessionAcceptor, ShardedServerRuntime, WallClock,
};
use shadow_server::{ServerConfig, ServerNode};

/// Errors from the live system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// The peer hung up (stream corrupt or otherwise unresumable).
    Disconnected,
    /// The transport closed, with the clean-vs-error distinction
    /// preserved for supervisors deciding whether to redial.
    Closed(shadow_runtime::TransportClosed),
    /// A wait timed out.
    Timeout,
    /// A client command failed.
    Client(ClientError),
    /// A frame failed to decode.
    Wire(WireError),
}

impl LiveError {
    /// The transport-level close carried by this error, if any.
    pub fn closed(&self) -> Option<shadow_runtime::TransportClosed> {
        match self {
            LiveError::Closed(c) => Some(*c),
            _ => None,
        }
    }
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Disconnected => write!(f, "peer disconnected"),
            LiveError::Closed(c) => write!(f, "{c}"),
            LiveError::Timeout => write!(f, "timed out waiting for the server"),
            LiveError::Client(e) => write!(f, "client: {e}"),
            LiveError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl From<shadow_runtime::TransportClosed> for LiveError {
    fn from(c: shadow_runtime::TransportClosed) -> Self {
        LiveError::Closed(c)
    }
}

impl Error for LiveError {}

impl From<ClientError> for LiveError {
    fn from(e: ClientError) -> Self {
        LiveError::Client(e)
    }
}
impl From<WireError> for LiveError {
    fn from(e: WireError) -> Self {
        LiveError::Wire(e)
    }
}
impl From<FeedError> for LiveError {
    fn from(e: FeedError) -> Self {
        match e {
            FeedError::Wire(w) => LiveError::Wire(w),
            // Framed transports deliver whole frames; a short one means
            // the stream is corrupt beyond recovery.
            FeedError::Incomplete => LiveError::Disconnected,
        }
    }
}

/// Accepts sessions from the registrar channel: each new client hands the
/// server its end of a fresh duplex pipe.
struct ChannelAcceptor {
    rx: Receiver<PipeEnd>,
}

impl SessionAcceptor for ChannelAcceptor {
    type Transport = PipeEnd;
    type Error = std::convert::Infallible;

    fn poll_accept(&mut self) -> Result<Accepted<PipeEnd>, Self::Error> {
        Ok(match self.rx.try_recv() {
            Ok(pipe) => Accepted::Session(pipe),
            Err(TryRecvError::Empty) => Accepted::None,
            Err(TryRecvError::Disconnected) => Accepted::Closed,
        })
    }
}

/// A running shadow server thread plus a registrar for new clients.
///
/// # Example
///
/// ```
/// use shadow::{ClientConfig, Deployment, ServerConfig, SubmitOptions, FileRef};
/// use shadow_proto::FileId;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = Deployment::new(ServerConfig::new("superc")).pipes()?;
/// let mut client = system.connect_client(ClientConfig::new("ws1", 1));
/// client.wait_ready(Duration::from_secs(2))?;
///
/// let job = FileRef::new(FileId::new(1), "ws1:/hello.job");
/// client.edit_finished(&job, b"echo hello\n".to_vec());
/// client.submit(&job, &[], SubmitOptions::default())?;
/// let (_, output, _, _) = client.wait_job(Duration::from_secs(5))?;
/// assert_eq!(output, b"hello\n");
/// # drop(client);
/// # system.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LiveSystem {
    handle: Option<JoinHandle<ServerNode>>,
    registrar: Sender<PipeEnd>,
    reports: Sender<Sender<NodeReport>>,
}

impl LiveSystem {
    /// Starts the server thread.
    #[deprecated(note = "use `Deployment::new(config).pipes()`")]
    pub fn start(config: ServerConfig) -> Self {
        Self::start_with(ServerNode::new(config), None)
    }

    /// Starts the server thread around a pre-built node (fresh, or
    /// restored from a durable store) and the sink its storage intents
    /// go to. The [`Deployment`](crate::Deployment) builder is the
    /// public face of this.
    pub(crate) fn start_with(node: ServerNode, sink: Option<Box<dyn PersistSink>>) -> Self {
        let (registrar, reg_rx) = unbounded::<PipeEnd>();
        let (reports, report_rx) = unbounded::<Sender<NodeReport>>();
        let handle = std::thread::Builder::new()
            .name("shadow-server".to_string())
            .spawn(move || {
                let mut runtime =
                    ServerRuntime::new(node, ChannelAcceptor { rx: reg_rx }, WallClock::new());
                if let Some(sink) = sink {
                    runtime = runtime.with_sink(sink);
                }
                loop {
                    let Ok(busy) = runtime.poll_once();
                    while let Ok(reply) = report_rx.try_recv() {
                        let _ = reply.send(runtime.report());
                    }
                    // Exit once no new clients can arrive and all work
                    // (sessions, pending timers) has drained.
                    if runtime.acceptor_closed() && runtime.idle() {
                        return runtime.into_node();
                    }
                    if !busy {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
            .expect("spawn server thread");
        LiveSystem {
            handle: Some(handle),
            registrar,
            reports,
        }
    }

    /// The live server report (protocol metrics, cache behaviour, poll
    /// loop counters). `None` once the system has begun shutting down.
    pub fn report(&self) -> Option<NodeReport> {
        let (reply_tx, reply_rx) = unbounded();
        self.reports.send(reply_tx).ok()?;
        reply_rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// Connects a new client: sends the `Hello` immediately.
    pub fn connect_client(&self, config: ClientConfig) -> LiveClient {
        let (client_end, server_end) = duplex();
        self.registrar
            .send(server_end)
            .expect("server thread is running");
        LiveClient::over_transport(config, client_end)
            .expect("hello on a fresh pipe cannot fail")
    }

    /// Establishes a fresh transport without building a client — the
    /// redial path for an existing [`LiveClient`] resuming after a
    /// dropped link ([`LiveClient::resume_over`]).
    pub fn connect_transport(&self) -> PipeEnd {
        let (client_end, server_end) = duplex();
        self.registrar
            .send(server_end)
            .expect("server thread is running");
        client_end
    }

    /// Stops accepting clients and waits for the server thread to finish
    /// (all clients must have been dropped), returning the final server
    /// state for inspection.
    pub fn shutdown(mut self) -> ServerNode {
        drop(self.registrar);
        self.handle
            .take()
            .expect("not yet shut down")
            .join()
            .expect("server thread panicked")
    }

    /// Starts a **sharded** deployment: `shards` worker threads, each
    /// owning its own `ServerNode`, behind a routing acceptor thread
    /// that assigns every session to the shard owning its naming
    /// domain. See [`ShardedLiveSystem`].
    #[deprecated(note = "use `Deployment::new(config).shards(n).pipes()`")]
    #[allow(deprecated)]
    pub fn sharded(config: ServerConfig, shards: usize) -> ShardedLiveSystem {
        ShardedLiveSystem::start(config, shards)
    }
}

/// A running sharded shadow server — the scale-out sibling of
/// [`LiveSystem`].
///
/// The acceptor thread runs a
/// [`ShardedServerRuntime`](shadow_runtime::ShardedServerRuntime) over
/// the same registrar channel a [`LiveSystem`] uses: each new client
/// hands over its end of a duplex pipe, the router peeks the `Hello`
/// frame for the client's domain id, and the session is moved — frames
/// intact — to the worker shard that owns that domain. Clients are
/// oblivious: [`LiveClient`] works identically against either system.
///
/// # Example
///
/// ```
/// use shadow::{ClientConfig, Deployment, ServerConfig, SubmitOptions, FileRef};
/// use shadow_proto::FileId;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let system = Deployment::new(ServerConfig::new("superc")).shards(4).pipes()?;
/// let mut client = system.connect_client(ClientConfig::new("ws1", 1));
/// client.wait_ready(Duration::from_secs(2))?;
///
/// let job = FileRef::new(FileId::new(1), "ws1:/hello.job");
/// client.edit_finished(&job, b"echo hello\n".to_vec());
/// client.submit(&job, &[], SubmitOptions::default())?;
/// let (_, output, _, _) = client.wait_job(Duration::from_secs(5))?;
/// assert_eq!(output, b"hello\n");
/// # drop(client);
/// # system.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedLiveSystem {
    handle: Option<JoinHandle<Vec<ServerNode>>>,
    registrar: Sender<PipeEnd>,
    reports: Sender<Sender<NodeReport>>,
}

impl ShardedLiveSystem {
    /// Starts the router thread and its worker shards.
    #[deprecated(note = "use `Deployment::new(config).shards(n).pipes()`")]
    pub fn start(config: ServerConfig, shards: usize) -> Self {
        Self::start_with_parts(
            (0..shards.max(1))
                .map(|_| (ServerNode::new(config.clone()), None))
                .collect(),
        )
    }

    /// Starts the router thread over pre-built shards — each its
    /// (possibly journal-restored) node plus the sink that shard's
    /// storage intents go to. The [`Deployment`](crate::Deployment)
    /// builder is the public face of this.
    pub(crate) fn start_with_parts(
        parts: Vec<(ServerNode, Option<Box<dyn PersistSink>>)>,
    ) -> Self {
        let (registrar, reg_rx) = unbounded::<PipeEnd>();
        let (reports, report_rx) = unbounded::<Sender<NodeReport>>();
        let handle = std::thread::Builder::new()
            .name("shadow-shard-router".to_string())
            .spawn(move || {
                let mut runtime = ShardedServerRuntime::from_parts(
                    parts,
                    ChannelAcceptor { rx: reg_rx },
                    WallClock::new(),
                );
                loop {
                    let Ok(busy) = runtime.poll_once();
                    while let Ok(reply) = report_rx.try_recv() {
                        let _ = reply.send(runtime.report());
                    }
                    // Exit once no new clients can arrive and every
                    // accepted session has been routed; the shards then
                    // drain their own sessions and timers.
                    if runtime.router_idle() {
                        return runtime.shutdown();
                    }
                    if !busy {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
            .expect("spawn shard router thread");
        ShardedLiveSystem {
            handle: Some(handle),
            registrar,
            reports,
        }
    }

    /// Connects a new client: sends the `Hello` immediately. Identical
    /// to [`LiveSystem::connect_client`]; the sharding is invisible to
    /// the client.
    pub fn connect_client(&self, config: ClientConfig) -> LiveClient {
        let (client_end, server_end) = duplex();
        self.registrar
            .send(server_end)
            .expect("router thread is running");
        LiveClient::over_transport(config, client_end)
            .expect("hello on a fresh pipe cannot fail")
    }

    /// Establishes a fresh transport without building a client — the
    /// redial path for an existing [`LiveClient`] resuming after a
    /// dropped link. The resume `Hello` carries the client's domain, so
    /// the router lands the new session on the same shard that holds
    /// the cached versions.
    pub fn connect_transport(&self) -> PipeEnd {
        let (client_end, server_end) = duplex();
        self.registrar
            .send(server_end)
            .expect("router thread is running");
        client_end
    }

    /// The aggregate server report: per-shard [`NodeReport`]s merged
    /// value-wise plus `shards`/`shardN` breakdown sections (see
    /// [`ShardedServerRuntime::report`]). `None` once the system has
    /// begun shutting down.
    pub fn report(&self) -> Option<NodeReport> {
        let (reply_tx, reply_rx) = unbounded();
        self.reports.send(reply_tx).ok()?;
        reply_rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// Stops accepting clients, drains every shard (all clients must
    /// eventually be dropped), and returns each shard's final protocol
    /// state, in shard-index order.
    pub fn shutdown(mut self) -> Vec<ServerNode> {
        drop(self.registrar);
        self.handle
            .take()
            .expect("not yet shut down")
            .join()
            .expect("shard router thread panicked")
    }
}

/// A client of a live deployment, driven by the calling thread; generic
/// over the frame transport (in-process pipe or TCP).
pub struct LiveClient<T: FrameTransport = PipeEnd> {
    driver: ClientDriver,
    transport: T,
    conn: ConnId,
    clock: WallClock,
}

// Manual impl: transports need not be `Debug`.
impl<T: FrameTransport> std::fmt::Debug for LiveClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveClient")
            .field("driver", &self.driver)
            .field("conn", &self.conn)
            .finish_non_exhaustive()
    }
}

impl<T: FrameTransport> LiveClient<T> {
    /// Builds a client over an established transport and sends the
    /// `Hello`.
    ///
    /// # Errors
    ///
    /// Transport failures sending the handshake.
    pub fn over_transport(config: ClientConfig, transport: T) -> Result<Self, LiveError> {
        let mut client = LiveClient {
            driver: ClientDriver::new(shadow_client::ClientNode::new(config)),
            transport,
            conn: ConnId::new(0),
            clock: WallClock::new(),
        };
        let now_ms = client.clock.now_ms();
        let out = client.driver.connect(client.conn, now_ms);
        client.transmit(out)?;
        Ok(client)
    }

    /// Installs an instrumentation tap observing every frame this client
    /// sends or receives.
    pub fn set_event_hook(&mut self, hook: EventHook) {
        self.driver.set_event_hook(hook);
    }

    fn transmit(&mut self, out: Vec<ClientOutbound>) -> Result<(), LiveError> {
        for o in out {
            self.transport.send_frame(o.frame).map_err(LiveError::from)?;
        }
        Ok(())
    }

    fn feed(&mut self, frame: &[u8]) -> Result<(), LiveError> {
        let now_ms = self.clock.now_ms();
        let out = self.driver.feed_frame(self.conn, frame, now_ms)?;
        self.transmit(out)
    }

    /// Processes any frames that have arrived; returns how many.
    ///
    /// # Errors
    ///
    /// [`LiveError::Disconnected`] when the server is gone.
    pub fn pump(&mut self) -> Result<usize, LiveError> {
        let mut n = 0;
        while let Some(frame) = self
            .transport
            .recv_frame(Duration::ZERO)
            .map_err(LiveError::from)?
        {
            self.feed(&frame)?;
            n += 1;
        }
        Ok(n)
    }

    /// Pumps until `pred` matches a queued notification (which is removed
    /// and returned) or the timeout elapses.
    ///
    /// # Errors
    ///
    /// [`LiveError::Timeout`] or [`LiveError::Disconnected`].
    pub fn wait_for(
        &mut self,
        timeout: Duration,
        mut pred: impl FnMut(&Notification) -> bool,
    ) -> Result<Notification, LiveError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(n) = self.driver.take_notification_matching(&mut pred) {
                return Ok(n);
            }
            if Instant::now() >= deadline {
                return Err(LiveError::Timeout);
            }
            match self.transport.recv_frame(Duration::from_millis(10)) {
                Ok(Some(frame)) => self.feed(&frame)?,
                Ok(None) => {}
                Err(c) => return Err(LiveError::Closed(c)),
            }
        }
    }

    /// Waits for the session handshake to complete.
    ///
    /// # Errors
    ///
    /// [`LiveError::Timeout`] or [`LiveError::Disconnected`].
    pub fn wait_ready(&mut self, timeout: Duration) -> Result<(), LiveError> {
        self.wait_for(timeout, |n| matches!(n, Notification::SessionReady { .. }))
            .map(|_| ())
    }

    /// The link is gone but the session may yet be resumed: marks the
    /// connection down in the protocol state machine, keeping version
    /// chains and acked knowledge for the resume handshake.
    pub fn link_down(&mut self) {
        let now_ms = self.clock.now_ms();
        self.driver.link_down(self.conn, now_ms);
    }

    /// Resumes the session over a freshly dialed transport: swaps the
    /// transport and sends the resume `Hello` carrying the client's
    /// shadow-cache digest summary. Follow with
    /// [`wait_ready`](Self::wait_ready) to learn what the server
    /// retained.
    ///
    /// # Errors
    ///
    /// Transport failures sending the resume handshake.
    pub fn resume_over(&mut self, transport: T) -> Result<(), LiveError> {
        self.transport = transport;
        let now_ms = self.clock.now_ms();
        let out = self.driver.reconnect(self.conn, now_ms);
        self.transmit(out)
    }

    /// Sends a heartbeat ping; the pong surfaces as
    /// [`Notification::Pong`] via the notification queue.
    ///
    /// # Errors
    ///
    /// Client-command or transport failures.
    pub fn ping(&mut self, nonce: u64) -> Result<(), LiveError> {
        let now_ms = self.clock.now_ms();
        let out = self.driver.ping(self.conn, nonce, now_ms)?;
        self.transmit(out)
    }

    /// Records an editing session's result (the shadow post-processor).
    pub fn edit_finished(&mut self, file: &FileRef, content: Vec<u8>) {
        let now_ms = self.clock.now_ms();
        let (_, out) = self.driver.edit_finished(file, content, now_ms);
        // A send failure surfaces on the next pump.
        let _ = self.transmit(out);
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// Client-command or transport failures.
    pub fn submit(
        &mut self,
        job_file: &FileRef,
        data_files: &[FileRef],
        options: SubmitOptions,
    ) -> Result<RequestId, LiveError> {
        let now_ms = self.clock.now_ms();
        let (request, out) = self
            .driver
            .submit(self.conn, job_file, data_files, options, now_ms)?;
        self.transmit(out)?;
        Ok(request)
    }

    /// Queries job status.
    ///
    /// # Errors
    ///
    /// Client-command or transport failures.
    pub fn status(&mut self, job: Option<JobId>) -> Result<RequestId, LiveError> {
        let now_ms = self.clock.now_ms();
        let (request, out) = self.driver.status(self.conn, job, now_ms)?;
        self.transmit(out)?;
        Ok(request)
    }

    /// Waits for the next completed job, returning
    /// `(job, output, errors, stats)`.
    ///
    /// # Errors
    ///
    /// [`LiveError::Timeout`] or [`LiveError::Disconnected`].
    pub fn wait_job(
        &mut self,
        timeout: Duration,
    ) -> Result<(JobId, Vec<u8>, Vec<u8>, JobStats), LiveError> {
        let n = self.wait_for(timeout, |n| matches!(n, Notification::JobFinished { .. }))?;
        match n {
            Notification::JobFinished {
                job,
                output,
                errors,
                stats,
                ..
            } => Ok((job, output, errors, stats)),
            _ => unreachable!("predicate matched JobFinished"),
        }
    }

    /// Removes and returns all queued notifications.
    pub fn take_notifications(&mut self) -> Vec<Notification> {
        self.driver
            .take_notifications()
            .into_iter()
            .map(|(_, n)| n)
            .collect()
    }

    /// The client's traffic counters.
    #[deprecated(note = "use `report()` and read the \"client\" section")]
    #[allow(deprecated)]
    pub fn metrics(&self) -> shadow_client::ClientMetrics {
        self.driver.metrics()
    }

    /// The client's full report: protocol metrics, version-store
    /// occupancy, and driver wire counters as one aggregate.
    pub fn report(&self) -> shadow_obs::NodeReport {
        self.driver.report()
    }

    /// Direct access to the protocol node (persistence, diagnostics).
    pub fn node(&self) -> &shadow_client::ClientNode {
        self.driver.node()
    }

    /// Mutable access to the protocol node (restoring persisted version
    /// chains before use).
    pub fn node_mut(&mut self) -> &mut shadow_client::ClientNode {
        self.driver.node_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use shadow_proto::FileId;

    fn fref(id: u64, name: &str) -> FileRef {
        FileRef::new(FileId::new(id), name)
    }

    #[test]
    fn live_round_trip_runs_a_job() {
        let system = Deployment::new(ServerConfig::new("sc")).pipes().unwrap();
        let mut client = system.connect_client(ClientConfig::new("ws1", 1));
        client.wait_ready(Duration::from_secs(5)).unwrap();

        let job = fref(1, "ws1:/hello.job");
        client.edit_finished(&job, b"echo live\n".to_vec());
        client.submit(&job, &[], SubmitOptions::default()).unwrap();
        let (_, output, errors, stats) = client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(output, b"live\n");
        assert!(errors.is_empty());
        assert_eq!(stats.exit_code, 0);
        drop(client);
        let server = system.shutdown().remove(0);
        assert_eq!(server.report().counter("server", "jobs_completed"), 1);
    }

    #[test]
    fn live_resubmission_uses_delta() {
        let system = Deployment::new(ServerConfig::new("sc")).pipes().unwrap();
        let mut client = system.connect_client(ClientConfig::new("ws1", 1));
        client.wait_ready(Duration::from_secs(5)).unwrap();

        let data = fref(2, "ws1:/data");
        let job = fref(1, "ws1:/job");
        let content: Vec<u8> = (0..500)
            .flat_map(|i| format!("row {i}\n").into_bytes())
            .collect();
        client.edit_finished(&data, content.clone());
        client.edit_finished(&job, b"wc ws1:/data\n".to_vec());
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();

        let mut edited = content.clone();
        edited.extend_from_slice(b"one more row\n");
        client.edit_finished(&data, edited);
        client
            .submit(&job, std::slice::from_ref(&data), SubmitOptions::default())
            .unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(client.report().counter("client", "deltas_sent"), 1);

        drop(client);
        let server = system.shutdown().remove(0);
        assert_eq!(server.report().counter("server", "delta_updates"), 1);
        assert_eq!(server.report().counter("server", "jobs_completed"), 2);
    }

    #[test]
    fn multiple_live_clients_share_a_server() {
        let system = Deployment::new(ServerConfig::new("sc").with_max_running(2))
            .pipes()
            .unwrap();
        let mut c1 = system.connect_client(ClientConfig::new("ws1", 1));
        let mut c2 = system.connect_client(ClientConfig::new("ws2", 1));
        c1.wait_ready(Duration::from_secs(5)).unwrap();
        c2.wait_ready(Duration::from_secs(5)).unwrap();

        // Distinct files get distinct ids within the shared domain (name
        // resolution guarantees this; here we assign them by hand).
        let j1 = fref(1, "ws1:/a.job");
        let j2 = fref(2, "ws2:/b.job");
        c1.edit_finished(&j1, b"echo from ws1\n".to_vec());
        c2.edit_finished(&j2, b"echo from ws2\n".to_vec());
        c1.submit(&j1, &[], SubmitOptions::default()).unwrap();
        c2.submit(&j2, &[], SubmitOptions::default()).unwrap();
        let (_, o1, _, _) = c1.wait_job(Duration::from_secs(10)).unwrap();
        let (_, o2, _, _) = c2.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(o1, b"from ws1\n");
        assert_eq!(o2, b"from ws2\n");
        drop(c1);
        drop(c2);
        let server = system.shutdown().remove(0);
        assert_eq!(server.report().counter("server", "jobs_completed"), 2);
    }

    #[test]
    fn sharded_live_routes_domains_and_runs_jobs() {
        let system = Deployment::new(ServerConfig::new("sc"))
            .shards(4)
            .pipes()
            .unwrap();
        let mut clients: Vec<LiveClient> = (1..=4u64)
            .map(|d| {
                system.connect_client(ClientConfig::new(format!("ws{d}"), d))
            })
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.wait_ready(Duration::from_secs(5)).unwrap();
            let job = fref(1, "ws:/job");
            c.edit_finished(&job, format!("echo shard {i}\n").into_bytes());
            c.submit(&job, &[], SubmitOptions::default()).unwrap();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let (_, output, _, _) = c.wait_job(Duration::from_secs(10)).unwrap();
            assert_eq!(output, format!("shard {i}\n").into_bytes());
        }

        let report = system.report().expect("router still running");
        assert_eq!(report.counter("shards", "routed"), 4);
        assert_eq!(report.counter("shards", "refused"), 0);
        assert_eq!(report.counter("server", "jobs_completed"), 4);

        drop(clients);
        let nodes = system.shutdown();
        assert_eq!(nodes.len(), 4);
        let total: u64 = nodes
            .iter()
            .map(|n| n.report().counter("server", "jobs_completed"))
            .sum();
        assert_eq!(total, 4);
    }

    #[test]
    #[allow(deprecated)]
    fn sharded_live_with_one_shard_matches_single_server_behaviour() {
        // Deliberately exercises the deprecated entry point so the thin
        // wrapper keeps working until it is removed.
        let system = LiveSystem::sharded(ServerConfig::new("sc"), 1);
        let mut client = system.connect_client(ClientConfig::new("ws1", 7));
        client.wait_ready(Duration::from_secs(5)).unwrap();
        let job = fref(1, "ws1:/hello.job");
        client.edit_finished(&job, b"echo one\n".to_vec());
        client.submit(&job, &[], SubmitOptions::default()).unwrap();
        let (_, output, _, _) = client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(output, b"one\n");
        drop(client);
        let nodes = system.shutdown();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].report().counter("server", "jobs_completed"), 1);
    }
}
