//! `shadowd` — the shadow server daemon.
//!
//! Listens at a well-known TCP port (the paper's prototype shape) and
//! serves shadow clients: caches their files, runs their batch jobs,
//! returns output.
//!
//! ```text
//! shadowd [--listen ADDR:PORT] [--name HOST] [--cache-bytes N]
//!         [--eviction lru|fifo|lfu|largest] [--flow eager|lazy|request]
//!         [--slots N]
//! ```

use std::process::ExitCode;

use shadow::{EvictionPolicy, FlowControl, ServerConfig, TcpServerRuntime};

struct Options {
    listen: String,
    name: String,
    cache_bytes: usize,
    eviction: EvictionPolicy,
    flow: FlowControl,
    slots: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: shadowd [--listen ADDR:PORT] [--name HOST] [--cache-bytes N]\n\
         \x20              [--eviction lru|fifo|lfu|largest] [--flow eager|lazy|request]\n\
         \x20              [--slots N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        listen: "127.0.0.1:4411".to_string(),
        name: "shadowd".to_string(),
        cache_bytes: 64 << 20,
        eviction: EvictionPolicy::Lru,
        flow: FlowControl::DemandEager,
        slots: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("shadowd: {what} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen"),
            "--name" => opts.name = value("--name"),
            "--cache-bytes" => {
                opts.cache_bytes = value("--cache-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--eviction" => {
                opts.eviction = match value("--eviction").as_str() {
                    "lru" => EvictionPolicy::Lru,
                    "fifo" => EvictionPolicy::Fifo,
                    "lfu" => EvictionPolicy::Lfu,
                    "largest" => EvictionPolicy::LargestFirst,
                    _ => usage(),
                }
            }
            "--flow" => {
                opts.flow = match value("--flow").as_str() {
                    "eager" => FlowControl::DemandEager,
                    "lazy" => FlowControl::DemandLazy,
                    "request" => FlowControl::RequestDriven,
                    _ => usage(),
                }
            }
            "--slots" => opts.slots = value("--slots").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("shadowd: unknown argument {other:?}");
                usage()
            }
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let config = ServerConfig::new(opts.name.clone())
        .with_cache_budget(opts.cache_bytes)
        .with_eviction(opts.eviction)
        .with_flow(opts.flow)
        .with_max_running(opts.slots.max(1));
    let runtime = match TcpServerRuntime::bind(&opts.listen, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("shadowd: cannot bind {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    match runtime.local_addr() {
        Ok(addr) => eprintln!(
            "shadowd: serving as {:?} on {addr} (cache {} bytes, {} slot(s))",
            opts.name, opts.cache_bytes, opts.slots
        ),
        Err(e) => eprintln!("shadowd: {e}"),
    }
    if let Err(e) = runtime.run_forever() {
        eprintln!("shadowd: fatal: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
