//! `shadowd` — the shadow server daemon.
//!
//! Listens at a well-known TCP port (the paper's prototype shape) and
//! serves shadow clients: caches their files, runs their batch jobs,
//! returns output.
//!
//! ```text
//! shadowd [--listen ADDR:PORT] [--name HOST] [--cache-bytes N]
//!         [--eviction lru|fifo|lfu|largest] [--flow eager|lazy|request]
//!         [--slots N] [--shards N] [--store DIR]
//! ```
//!
//! With `--store DIR` the shadow store is durable: every cache and
//! output mutation is journaled under `DIR` and replayed on the next
//! start, so clients resume delta transfers across daemon restarts.

use std::process::ExitCode;

use shadow::{Deployment, EvictionPolicy, FlowControl, ServerConfig};

struct Options {
    listen: String,
    name: String,
    cache_bytes: usize,
    eviction: EvictionPolicy,
    flow: FlowControl,
    slots: usize,
    shards: usize,
    store: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: shadowd [--listen ADDR:PORT] [--name HOST] [--cache-bytes N]\n\
         \x20              [--eviction lru|fifo|lfu|largest] [--flow eager|lazy|request]\n\
         \x20              [--slots N] [--shards N] [--store DIR]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        listen: "127.0.0.1:4411".to_string(),
        name: "shadowd".to_string(),
        cache_bytes: 64 << 20,
        eviction: EvictionPolicy::Lru,
        flow: FlowControl::DemandEager,
        slots: 1,
        shards: 1,
        store: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("shadowd: {what} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen"),
            "--name" => opts.name = value("--name"),
            "--cache-bytes" => {
                opts.cache_bytes = value("--cache-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--eviction" => {
                opts.eviction = match value("--eviction").as_str() {
                    "lru" => EvictionPolicy::Lru,
                    "fifo" => EvictionPolicy::Fifo,
                    "lfu" => EvictionPolicy::Lfu,
                    "largest" => EvictionPolicy::LargestFirst,
                    _ => usage(),
                }
            }
            "--flow" => {
                opts.flow = match value("--flow").as_str() {
                    "eager" => FlowControl::DemandEager,
                    "lazy" => FlowControl::DemandLazy,
                    "request" => FlowControl::RequestDriven,
                    _ => usage(),
                }
            }
            "--slots" => opts.slots = value("--slots").parse().unwrap_or_else(|_| usage()),
            "--shards" => opts.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--store" => opts.store = Some(value("--store")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("shadowd: unknown argument {other:?}");
                usage()
            }
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let config = ServerConfig::new(opts.name.clone())
        .with_cache_budget(opts.cache_bytes)
        .with_eviction(opts.eviction)
        .with_flow(opts.flow)
        .with_max_running(opts.slots.max(1));
    let mut deployment = Deployment::new(config).shards(opts.shards.max(1));
    if let Some(dir) = &opts.store {
        deployment = deployment.durable(dir);
    }
    let runtime = match deployment.tcp(&opts.listen) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("shadowd: cannot deploy on {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    let recovery = runtime.recovery();
    if opts.store.is_some() {
        eprintln!(
            "shadowd: store replayed {} record(s) across {} domain(s){}",
            recovery.replayed(),
            recovery.domains,
            if recovery.degraded() {
                " (degraded: torn or corrupt segments were truncated)"
            } else {
                ""
            }
        );
    }
    match runtime.local_addr() {
        Ok(addr) => eprintln!(
            "shadowd: serving as {:?} on {addr} (cache {} bytes, {} slot(s), {} shard(s))",
            opts.name, opts.cache_bytes, opts.slots, opts.shards
        ),
        Err(e) => eprintln!("shadowd: {e}"),
    }
    if let Err(e) = runtime.run_forever() {
        eprintln!("shadowd: fatal: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
