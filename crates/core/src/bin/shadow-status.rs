//! `shadow-status` — the paper's `status` command (§6.2).
//!
//! "The status command, which accepts a job identifier as an argument,
//! allows a user to find out the status of a job submitted earlier."
//!
//! ```text
//! shadow-status --server ADDR:PORT [JOBID] [--domain N] [--host NAME]
//! ```

use std::process::ExitCode;
use std::time::Duration;

use shadow::{connect_tcp, ClientConfig, JobId, Notification};

fn usage() -> ! {
    eprintln!("usage: shadow-status --server ADDR:PORT [JOBID] [--domain N] [--host NAME]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut server = String::new();
    let mut job: Option<u64> = None;
    let mut domain = 1u64;
    let mut host = std::env::var("HOSTNAME").unwrap_or_else(|_| "localhost".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server" => server = args.next().unwrap_or_else(|| usage()),
            "--domain" => {
                domain = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--host" => host = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            id if !id.starts_with('-') => job = Some(id.parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    if server.is_empty() {
        usage()
    }
    match run(&server, job.map(JobId::new), domain, &host) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shadow-status: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(
    server: &str,
    job: Option<JobId>,
    domain: u64,
    host: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = connect_tcp(ClientConfig::new(host, domain), server)?;
    client.wait_ready(Duration::from_secs(10))?;
    client.status(job)?;
    let n = client.wait_for(Duration::from_secs(10), |n| {
        matches!(n, Notification::StatusReport { .. })
    })?;
    if let Notification::StatusReport { entries, .. } = n {
        if entries.is_empty() {
            println!("no pending jobs for this session");
        }
        for e in entries {
            println!("{}\t{}\tsubmitted at {} ms", e.job, e.status, e.submitted_at_ms);
        }
    }
    Ok(())
}
