//! `shadow-submit` — the paper's `submit` command (§6.2).
//!
//! "The submit command accepts a list of file names, the name of a job
//! command file and a few optional arguments … The submit command returns
//! a job identifier … After a job is executed, the output and the errors
//! (if any) are returned automatically. The optional arguments allow the
//! user to specify the names of files into which the system stores output
//! and error messages."
//!
//! ```text
//! shadow-submit --server ADDR:PORT JOBFILE [DATAFILE...]
//!               [--output FILE] [--errors FILE] [--deliver-to HOST]
//!               [--priority N] [--shadow-output] [--timeout SECS]
//!               [--state-dir DIR] [--domain N] [--host NAME]
//! ```
//!
//! Version chains persist in `--state-dir` (default `.shadow-state`), so a
//! later `shadow-submit` of an edited file travels as a delta — run it
//! twice and watch the payload collapse.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use shadow::persist;
use shadow::{
    connect_tcp, ClientConfig, ContentDigest, FileId, FileRef, HostName, SubmitOptions,
};

struct Options {
    server: String,
    job_file: Option<PathBuf>,
    data_files: Vec<PathBuf>,
    output: Option<PathBuf>,
    errors: Option<PathBuf>,
    deliver_to: Option<String>,
    priority: u8,
    shadow_output: bool,
    timeout: u64,
    state_dir: PathBuf,
    domain: u64,
    host: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: shadow-submit --server ADDR:PORT JOBFILE [DATAFILE...]\n\
         \x20                 [--output FILE] [--errors FILE] [--deliver-to HOST]\n\
         \x20                 [--priority N] [--shadow-output] [--timeout SECS]\n\
         \x20                 [--state-dir DIR] [--domain N] [--host NAME]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        server: String::new(),
        job_file: None,
        data_files: Vec::new(),
        output: None,
        errors: None,
        deliver_to: None,
        priority: 0,
        shadow_output: false,
        timeout: 60,
        state_dir: PathBuf::from(".shadow-state"),
        domain: 1,
        host: hostname(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("shadow-submit: {what} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--server" => opts.server = value("--server"),
            "--output" => opts.output = Some(PathBuf::from(value("--output"))),
            "--errors" => opts.errors = Some(PathBuf::from(value("--errors"))),
            "--deliver-to" => opts.deliver_to = Some(value("--deliver-to")),
            "--priority" => {
                opts.priority = value("--priority").parse().unwrap_or_else(|_| usage())
            }
            "--shadow-output" => opts.shadow_output = true,
            "--timeout" => opts.timeout = value("--timeout").parse().unwrap_or_else(|_| usage()),
            "--state-dir" => opts.state_dir = PathBuf::from(value("--state-dir")),
            "--domain" => opts.domain = value("--domain").parse().unwrap_or_else(|_| usage()),
            "--host" => opts.host = value("--host"),
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') => {
                if opts.job_file.is_none() {
                    opts.job_file = Some(PathBuf::from(path));
                } else {
                    opts.data_files.push(PathBuf::from(path));
                }
            }
            other => {
                eprintln!("shadow-submit: unknown argument {other:?}");
                usage()
            }
        }
    }
    if opts.server.is_empty() || opts.job_file.is_none() {
        usage()
    }
    opts
}

fn hostname() -> String {
    std::env::var("HOSTNAME").unwrap_or_else(|_| "localhost".to_string())
}

/// The CLI's name resolution: canonicalize the path on this host (the
/// OS resolves symlinks — the real-filesystem analogue of §6.5) and derive
/// the domain-unique file id from `host NUL path`.
fn file_ref(host: &str, path: &Path) -> std::io::Result<FileRef> {
    let canonical = std::fs::canonicalize(path)?;
    let name = format!("{host}:{}", canonical.display());
    let digest = ContentDigest::of(format!("{host}\u{0}{}", canonical.display()).as_bytes());
    Ok(FileRef::new(FileId::new(digest.as_u64()), name))
}

fn main() -> ExitCode {
    let opts = parse_args();
    match run(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("shadow-submit: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut client = connect_tcp(
        ClientConfig::new(opts.host.clone(), opts.domain),
        &opts.server,
    )?;
    let loaded = persist::load_state(&opts.state_dir, client.node_mut())?;
    if loaded.restored > 0 {
        eprintln!(
            "shadow-submit: restored {} shadow version(s) from {}",
            loaded.restored,
            opts.state_dir.display()
        );
    }
    if loaded.degraded() {
        eprintln!(
            "shadow-submit: warning: skipped {} corrupt state entr(y/ies) in {}",
            loaded.skipped,
            opts.state_dir.display()
        );
    }
    client.wait_ready(Duration::from_secs(10))?;

    // Register the current contents of every file (the shadow editor's
    // post-processing step, batched).
    let job_path = opts.job_file.as_deref().expect("validated");
    let job_ref = file_ref(&opts.host, job_path)?;
    client.edit_finished(&job_ref, std::fs::read(job_path)?);
    let mut data_refs = Vec::new();
    for path in &opts.data_files {
        let fref = file_ref(&opts.host, path)?;
        eprintln!("shadow-submit: data file {} → {}", path.display(), fref.name);
        client.edit_finished(&fref, std::fs::read(path)?);
        data_refs.push(fref);
    }

    let request = client.submit(
        &job_ref,
        &data_refs,
        SubmitOptions {
            output_file: opts.output.as_ref().map(|p| p.display().to_string()),
            error_file: opts.errors.as_ref().map(|p| p.display().to_string()),
            deliver_to: opts.deliver_to.clone().map(HostName::new),
            priority: opts.priority,
            shadow_output: opts.shadow_output,
        },
    )?;
    eprintln!("shadow-submit: submitted as {request}");

    let (job, output, errors, stats) =
        client.wait_job(Duration::from_secs(opts.timeout))?;
    eprintln!(
        "shadow-submit: {job} finished (exit {}, ran {} ms, waited {} ms)",
        stats.exit_code, stats.running_ms, stats.waiting_ms
    );
    let m = client.report();
    eprintln!(
        "shadow-submit: traffic: {} delta(s), {} full transfer(s), {} payload bytes",
        m.counter("client", "deltas_sent"),
        m.counter("client", "fulls_sent"),
        m.counter("client", "update_payload_bytes")
    );

    match &opts.output {
        Some(path) => std::fs::write(path, &output)?,
        None => {
            use std::io::Write;
            std::io::stdout().write_all(&output)?;
        }
    }
    if !errors.is_empty() {
        match &opts.errors {
            Some(path) => std::fs::write(path, &errors)?,
            None => {
                use std::io::Write;
                std::io::stderr().write_all(&errors)?;
            }
        }
    }

    persist::save_state(&opts.state_dir, client.node())?;
    Ok(if stats.exit_code == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
