//! `shadow-editor` — the paper's shadow editor wrapper (§6.2), CLI form.
//!
//! "Shadow Editor encapsulates a conventional editor of the user's choice
//! (specified through an environment variable). It does not modify an
//! existing editor and the user's view of the editor remains unchanged. It
//! contains a postprocessor responsible for carrying out tasks related to
//! shadow processing at the end of an editing session."
//!
//! This wrapper launches `$SHADOW_EDITOR` (falling back to `$EDITOR`, then
//! `vi`) on a real file, and when the editor exits it runs the shadow
//! post-processing: the new content is versioned into the local state
//! directory, so the *next* `shadow-submit` answers the server's update
//! request with a delta computed against exactly the version the server
//! holds.
//!
//! ```text
//! shadow-editor FILE [--state-dir DIR] [--host NAME] [--domain N]
//!               [--editor CMD]
//! ```

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use shadow::persist;
use shadow::{ClientConfig, ClientNode, ContentDigest, FileId, FileRef};

fn usage() -> ! {
    eprintln!(
        "usage: shadow-editor FILE [--state-dir DIR] [--host NAME] [--domain N] [--editor CMD]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut state_dir = PathBuf::from(".shadow-state");
    let mut host = std::env::var("HOSTNAME").unwrap_or_else(|_| "localhost".to_string());
    let mut domain = 1u64;
    let mut editor = std::env::var("SHADOW_EDITOR")
        .or_else(|_| std::env::var("EDITOR"))
        .unwrap_or_else(|_| "vi".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state-dir" => state_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--host" => host = args.next().unwrap_or_else(|| usage()),
            "--domain" => {
                domain = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--editor" => editor = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') => file = Some(PathBuf::from(path)),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    match run(&file, &state_dir, &host, domain, &editor) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("shadow-editor: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(
    file: &Path,
    state_dir: &Path,
    host: &str,
    domain: u64,
    editor: &str,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    // The user's view of the editor remains unchanged: launch it directly
    // on the real file.
    let status = Command::new(editor).arg(file).status()?;
    if !status.success() {
        eprintln!("shadow-editor: editor exited with {status}; skipping shadow processing");
        return Ok(ExitCode::FAILURE);
    }

    // Post-processor: version the result into the shadow environment.
    let mut node = ClientNode::new(ClientConfig::new(host, domain));
    let loaded = persist::load_state(state_dir, &mut node)?;
    if loaded.degraded() {
        eprintln!(
            "shadow-editor: warning: skipped {} corrupt state entr(y/ies) in {}",
            loaded.skipped,
            state_dir.display()
        );
    }
    let canonical = std::fs::canonicalize(file)?;
    let name = format!("{host}:{}", canonical.display());
    let digest = ContentDigest::of(format!("{host}\u{0}{}", canonical.display()).as_bytes());
    let fref = FileRef::new(FileId::new(digest.as_u64()), name.clone());
    let content = std::fs::read(file)?;
    let (version, _) = node.edit_finished(&fref, content);
    persist::save_state(state_dir, &node)?;
    eprintln!("shadow-editor: {name} is now {version} in {}", state_dir.display());
    Ok(ExitCode::SUCCESS)
}
