//! The CPU cost model for simulated nodes.

use shadow_netsim::SimTime;

/// Processing costs of the 1987-era machines in the evaluation.
///
/// The paper's speedup table (Figure 3) saturates — 24.2× at 100 KB vs
/// 24.9× at 500 KB for 1%-modified files — because shadow processing pays
/// a per-byte *CPU* cost (running `diff` over the whole file at the
/// workstation) even when almost nothing travels. This model charges:
///
/// * `diff_bytes_per_sec` at the client when an update is answered with a
///   delta (the differential comparison reads the entire file);
/// * `apply_bytes_per_sec` at the server when a delta is applied;
/// * `per_message_ms` of fixed protocol handling for every message.
///
/// The defaults are calibrated to a Sun-3-class workstation (the paper's
/// environment) and reproduce Figure 3's saturation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Client differential-comparison throughput, bytes/second.
    pub diff_bytes_per_sec: u64,
    /// Server delta-application throughput, bytes/second.
    pub apply_bytes_per_sec: u64,
    /// Fixed processing per message, milliseconds.
    pub per_message_ms: u64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            diff_bytes_per_sec: 30_000,
            apply_bytes_per_sec: 120_000,
            per_message_ms: 50,
        }
    }
}

impl CpuModel {
    /// A model with negligible CPU costs (for functional tests where only
    /// protocol behaviour matters).
    pub fn instant() -> Self {
        CpuModel {
            diff_bytes_per_sec: u64::MAX,
            apply_bytes_per_sec: u64::MAX,
            per_message_ms: 0,
        }
    }

    /// Time to diff a file of `bytes` at the client.
    pub fn diff_time(&self, bytes: usize) -> SimTime {
        SimTime::from_millis(self.per_message_ms)
            + SimTime::from_secs_f64(bytes as f64 / self.diff_bytes_per_sec as f64)
    }

    /// Time to apply a delta reconstructing `bytes` at the server.
    pub fn apply_time(&self, bytes: usize) -> SimTime {
        SimTime::from_millis(self.per_message_ms)
            + SimTime::from_secs_f64(bytes as f64 / self.apply_bytes_per_sec as f64)
    }

    /// Fixed handling time for one message.
    pub fn message_time(&self) -> SimTime {
        SimTime::from_millis(self.per_message_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_diff_of_500k_is_about_17_seconds() {
        let t = CpuModel::default().diff_time(500_000).as_secs_f64();
        assert!((15.0..20.0).contains(&t), "t = {t}");
    }

    #[test]
    fn instant_model_is_negligible() {
        let m = CpuModel::instant();
        assert_eq!(m.diff_time(1 << 30).as_micros(), 0);
        assert_eq!(m.message_time().as_micros(), 0);
    }

    #[test]
    fn apply_is_cheaper_than_diff() {
        let m = CpuModel::default();
        assert!(m.apply_time(100_000) < m.diff_time(100_000));
    }
}
