//! The deterministic simulation driver.
//!
//! Owns the virtual file system, the discrete-event network, and any
//! number of client/server state machines; routes encoded frames between
//! them with realistic transmission times and charges the [`CpuModel`] for
//! diff/apply work. Identical inputs produce identical timelines.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use shadow_client::{
    ClientAction, ClientConfig, ClientError, ClientEvent, ClientNode, ConnId, Editor, FileRef,
    FnEditor, Notification, ShadowEditor,
};
use shadow_netsim::{Delivery, LinkProfile, LinkStats, NetError, NodeId, SimEvent, SimNet, SimTime};
use shadow_proto::{
    ClientMessage, Frame, JobId, JobStats, RequestId, ServerMessage, SubmitOptions,
    UpdatePayload, WireError,
};
use shadow_server::{ServerAction, ServerConfig, ServerEvent, ServerNode, SessionId, TimerToken};
use shadow_vfs::{Vfs, VfsError};

use crate::CpuModel;

/// Handle for a client in a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(usize);

/// Handle for a server in a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId(usize);

/// A delivered, reconstructed job result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedJob {
    /// The connection the completion arrived on.
    pub conn: ConnId,
    /// The job.
    pub job: JobId,
    /// Standard output.
    pub output: Vec<u8>,
    /// Error output.
    pub errors: Vec<u8>,
    /// Server-side accounting.
    pub stats: JobStats,
    /// Simulated time of delivery.
    pub at: SimTime,
}

/// Simulation-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A virtual file-system operation failed.
    Vfs(VfsError),
    /// A client command failed.
    Client(ClientError),
    /// A network operation failed.
    Net(NetError),
    /// A frame failed to decode (internal wiring bug or corruption).
    Wire(WireError),
    /// The named client/server pair is already connected.
    AlreadyConnected,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Vfs(e) => write!(f, "file system: {e}"),
            SimError::Client(e) => write!(f, "client: {e}"),
            SimError::Net(e) => write!(f, "network: {e}"),
            SimError::Wire(e) => write!(f, "wire: {e}"),
            SimError::AlreadyConnected => write!(f, "pair is already connected"),
        }
    }
}

impl Error for SimError {}

impl From<VfsError> for SimError {
    fn from(e: VfsError) -> Self {
        SimError::Vfs(e)
    }
}
impl From<ClientError> for SimError {
    fn from(e: ClientError) -> Self {
        SimError::Client(e)
    }
}
impl From<NetError> for SimError {
    fn from(e: NetError) -> Self {
        SimError::Net(e)
    }
}
impl From<WireError> for SimError {
    fn from(e: WireError) -> Self {
        SimError::Wire(e)
    }
}

#[derive(Debug, Clone, Copy)]
enum Endpoint {
    Client(ClientId),
    Server(ServerId),
}

struct ClientRt {
    node: ClientNode,
    net: NodeId,
    host: String,
    notifications: Vec<(SimTime, Notification)>,
    finished: Vec<FinishedJob>,
    request_options: HashMap<RequestId, SubmitOptions>,
    job_options: HashMap<JobId, SubmitOptions>,
    next_conn: u64,
}

struct ServerRt {
    node: ServerNode,
    net: NodeId,
    sessions: HashMap<SessionId, (ClientId, ConnId)>,
    next_session: u64,
    timers: HashMap<u64, TimerToken>,
    next_timer: u64,
}

/// The deterministic multi-node simulation. See the
/// [crate quickstart](crate) for an end-to-end example.
pub struct Simulation {
    net: SimNet,
    vfs: Vfs,
    clients: Vec<ClientRt>,
    servers: Vec<ServerRt>,
    endpoints: HashMap<NodeId, Endpoint>,
    /// One connection per (client, server) pair.
    pairs: HashMap<(usize, usize), (ConnId, SessionId)>,
    cpu: CpuModel,
}

impl Simulation {
    /// Creates a simulation whose clients share naming domain `domain`,
    /// with negligible CPU costs (functional default). Use
    /// [`with_cpu`](Self::with_cpu) for calibrated performance runs.
    pub fn new(domain: u64) -> Self {
        Simulation {
            net: SimNet::new(),
            vfs: Vfs::new(shadow_proto::DomainId::new(domain)),
            clients: Vec::new(),
            servers: Vec::new(),
            endpoints: HashMap::new(),
            pairs: HashMap::new(),
            cpu: CpuModel::instant(),
        }
    }

    /// Sets the CPU cost model.
    #[must_use]
    pub fn with_cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The shared virtual file system.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Mutable access to the virtual file system (for topology setup:
    /// mounts, symlinks, extra hosts).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    /// Adds a shadow server (its name also becomes its net node name).
    pub fn add_server(&mut self, name: &str, config: ServerConfig) -> ServerId {
        let net = self.net.add_node(name);
        let id = ServerId(self.servers.len());
        self.servers.push(ServerRt {
            node: ServerNode::new(config),
            net,
            sessions: HashMap::new(),
            next_session: 0,
            timers: HashMap::new(),
            next_timer: 0,
        });
        self.endpoints.insert(net, Endpoint::Server(id));
        id
    }

    /// Adds a client workstation; `host` is created in the virtual file
    /// system (it must match `config.host` for name resolution to work).
    pub fn add_client(&mut self, host: &str, config: ClientConfig) -> ClientId {
        let net = self.net.add_node(host);
        // Tolerate pre-created hosts (topology set up via vfs_mut first).
        let _ = self.vfs.add_host(host);
        let id = ClientId(self.clients.len());
        self.clients.push(ClientRt {
            node: ClientNode::new(config),
            net,
            host: host.to_string(),
            notifications: Vec::new(),
            finished: Vec::new(),
            request_options: HashMap::new(),
            job_options: HashMap::new(),
            next_conn: 0,
        });
        self.endpoints.insert(net, Endpoint::Client(id));
        id
    }

    /// Connects a client to a server over `profile` and completes the
    /// session handshake. One connection per pair.
    ///
    /// # Errors
    ///
    /// [`SimError::AlreadyConnected`] when the pair has a connection.
    pub fn connect(
        &mut self,
        client: ClientId,
        server: ServerId,
        profile: LinkProfile,
    ) -> Result<ConnId, SimError> {
        if self.pairs.contains_key(&(client.0, server.0)) {
            return Err(SimError::AlreadyConnected);
        }
        let (c_net, s_net) = (self.clients[client.0].net, self.servers[server.0].net);
        self.net.connect(c_net, s_net, profile);

        let conn = ConnId::new(self.clients[client.0].next_conn);
        self.clients[client.0].next_conn += 1;
        let session = SessionId::new(self.servers[server.0].next_session);
        self.servers[server.0].next_session += 1;
        self.servers[server.0]
            .sessions
            .insert(session, (client, conn));
        self.pairs.insert((client.0, server.0), (conn, session));

        let now = self.net.now();
        self.servers[server.0].node.handle(ServerEvent::Connected {
            session,
            now_ms: now.as_millis(),
        });
        let actions = self.clients[client.0].node.connect(conn);
        self.process_client_actions(client, actions, now)?;
        self.run_until_quiet();
        Ok(conn)
    }

    /// Tears down a client↔server connection (transport loss).
    pub fn drop_connection(&mut self, client: ClientId, server: ServerId) {
        if let Some((conn, session)) = self.pairs.remove(&(client.0, server.0)) {
            self.clients[client.0].node.disconnect(conn);
            let now = self.net.now().as_millis();
            self.servers[server.0].node.handle(ServerEvent::Disconnected {
                session,
                now_ms: now,
            });
            self.servers[server.0].sessions.remove(&session);
        }
    }

    /// Runs one shadow editing session on the client's file: read, apply
    /// `edit`, write back, then run the shadow post-processor (version +
    /// background notifications).
    ///
    /// # Errors
    ///
    /// File-system errors from the edit.
    pub fn edit_file(
        &mut self,
        client: ClientId,
        path: &str,
        edit: impl FnMut(Vec<u8>) -> Vec<u8>,
    ) -> Result<FileRef, SimError> {
        let mut editor = FnEditor::new(edit);
        self.edit_file_with(client, path, &mut editor)
    }

    /// Like [`edit_file`](Self::edit_file) with an explicit [`Editor`].
    ///
    /// # Errors
    ///
    /// File-system errors from the edit.
    pub fn edit_file_with(
        &mut self,
        client: ClientId,
        path: &str,
        editor: &mut dyn Editor,
    ) -> Result<FileRef, SimError> {
        let host = self.clients[client.0].host.clone();
        let outcome = ShadowEditor::edit_file(&mut self.vfs, &host, path, editor)?;
        let fref = FileRef::new(
            outcome.name.file_id,
            format!("{}:{}", outcome.name.host, outcome.name.path),
        );
        let (_, actions) = self.clients[client.0]
            .node
            .edit_finished(&fref, outcome.content);
        let depart = self.net.now() + self.cpu.message_time();
        self.process_client_actions_at(client, actions, depart)?;
        Ok(fref)
    }

    /// The canonical wire name of a file as seen from a client — the name
    /// job command files must use to reference data files.
    ///
    /// # Errors
    ///
    /// Name-resolution failures.
    pub fn canonical_name(&self, client: ClientId, path: &str) -> Result<String, SimError> {
        let host = &self.clients[client.0].host;
        let name = self.vfs.resolve(host, path)?;
        Ok(format!("{}:{}", name.host, name.path))
    }

    /// Submits a job: `job_path` is the command file, `data_paths` the data
    /// files; all are registered (versioned) from their current VFS
    /// content first.
    ///
    /// # Errors
    ///
    /// Resolution or client-command failures.
    pub fn submit(
        &mut self,
        client: ClientId,
        conn: ConnId,
        job_path: &str,
        data_paths: &[&str],
        options: SubmitOptions,
    ) -> Result<RequestId, SimError> {
        let host = self.clients[client.0].host.clone();
        let mut refs = Vec::with_capacity(1 + data_paths.len());
        for path in std::iter::once(&job_path).chain(data_paths) {
            let name = self.vfs.resolve(&host, path)?;
            let content = self.vfs.read_file(&host, path)?;
            let fref = FileRef::new(name.file_id, format!("{}:{}", name.host, name.path));
            // Register current content (deduped if unchanged); background
            // notifications may flow.
            let (_, actions) = self.clients[client.0].node.edit_finished(&fref, content);
            let depart = self.net.now() + self.cpu.message_time();
            self.process_client_actions_at(client, actions, depart)?;
            refs.push(fref);
        }
        let (request, actions) =
            self.clients[client.0]
                .node
                .submit(conn, &refs[0], &refs[1..], options.clone())?;
        self.clients[client.0]
            .request_options
            .insert(request, options);
        let depart = self.net.now() + self.cpu.message_time();
        self.process_client_actions_at(client, actions, depart)?;
        Ok(request)
    }

    /// Issues a status query.
    ///
    /// # Errors
    ///
    /// Client-command failures.
    pub fn status(
        &mut self,
        client: ClientId,
        conn: ConnId,
        job: Option<JobId>,
    ) -> Result<RequestId, SimError> {
        let (request, actions) = self.clients[client.0].node.status(conn, job)?;
        let depart = self.net.now() + self.cpu.message_time();
        self.process_client_actions_at(client, actions, depart)?;
        Ok(request)
    }

    /// Drains every pending event; returns the number processed.
    pub fn run_until_quiet(&mut self) -> usize {
        let mut n = 0;
        while let Some(delivery) = self.net.next() {
            self.dispatch(delivery);
            n += 1;
        }
        n
    }

    /// Runs events up to and including `deadline` (events scheduled after
    /// it stay queued); returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> usize {
        let mut n = 0;
        while self.net.peek_time().is_some_and(|t| t <= deadline) {
            let delivery = self.net.next().expect("peeked event exists");
            self.dispatch(delivery);
            n += 1;
        }
        n
    }

    fn dispatch(&mut self, delivery: Delivery) {
        match delivery.event {
            SimEvent::Message { to, from, payload } => {
                match self.endpoints[&to] {
                    Endpoint::Server(s) => self.deliver_to_server(delivery.at, s, from, &payload),
                    Endpoint::Client(c) => self.deliver_to_client(delivery.at, c, from, &payload),
                }
            }
            SimEvent::Timer { node, token } => {
                if let Endpoint::Server(s) = self.endpoints[&node] {
                    let tok = self.servers[s.0]
                        .timers
                        .remove(&token)
                        .expect("timer token registered");
                    let actions = self.servers[s.0].node.handle(ServerEvent::Timer {
                        token: tok,
                        now_ms: delivery.at.as_millis(),
                    });
                    let depart = delivery.at + self.cpu.message_time();
                    self.process_server_actions(s, actions, depart);
                }
            }
        }
    }

    fn deliver_to_server(&mut self, at: SimTime, server: ServerId, from: NodeId, payload: &[u8]) {
        let Endpoint::Client(client) = self.endpoints[&from] else {
            panic!("server received frame from a non-client node");
        };
        let (_, session) = self.pairs[&(client.0, server.0)];
        let (message, _) = Frame::decode::<ClientMessage>(payload)
            .expect("well-formed frame")
            .expect("complete frame");
        // Processing cost: applying an update dominates; everything else
        // is fixed per-message handling.
        let cost = match &message {
            ClientMessage::Update { payload, .. } => self.cpu.apply_time(payload.data_len()),
            _ => self.cpu.message_time(),
        };
        let actions = self.servers[server.0].node.handle(ServerEvent::Message {
            session,
            message,
            now_ms: at.as_millis(),
        });
        self.process_server_actions(server, actions, at + cost);
    }

    fn deliver_to_client(&mut self, at: SimTime, client: ClientId, from: NodeId, payload: &[u8]) {
        let Endpoint::Server(server) = self.endpoints[&from] else {
            panic!("client received frame from a non-server node");
        };
        let (conn, _) = self.pairs[&(client.0, server.0)];
        let (message, _) = Frame::decode::<ServerMessage>(payload)
            .expect("well-formed frame")
            .expect("complete frame");
        let actions = self.clients[client.0].node.handle(ClientEvent::Message {
            conn,
            message,
            now_ms: at.as_millis(),
        });
        // Cost: answering an update request with a delta means running the
        // differential comparison over the whole file at the workstation.
        let mut depart = at + self.cpu.message_time();
        for a in &actions {
            if let ClientAction::Send {
                message: ClientMessage::Update { file, payload, .. },
                ..
            } = a
            {
                depart = at
                    + match payload {
                        UpdatePayload::Delta { .. } => {
                            let size = self.clients[client.0]
                                .node
                                .file_size(*file)
                                .unwrap_or(payload.data_len());
                            self.cpu.diff_time(size)
                        }
                        UpdatePayload::Full { .. } => self.cpu.message_time(),
                    };
            }
        }
        self.process_client_actions_at(client, actions, depart)
            .expect("routing of client actions");
    }

    fn process_client_actions(
        &mut self,
        client: ClientId,
        actions: Vec<ClientAction>,
        depart: SimTime,
    ) -> Result<(), SimError> {
        self.process_client_actions_at(client, actions, depart)
    }

    fn process_client_actions_at(
        &mut self,
        client: ClientId,
        actions: Vec<ClientAction>,
        depart: SimTime,
    ) -> Result<(), SimError> {
        for action in actions {
            match action {
                ClientAction::Send { conn, message } => {
                    let server = self
                        .pairs
                        .iter()
                        .find(|((c, _), (k, _))| *c == client.0 && *k == conn)
                        .map(|((_, s), _)| ServerId(*s))
                        .expect("conn belongs to a connected pair");
                    let frame = Frame::encode(&message);
                    let (c_net, s_net) = (self.clients[client.0].net, self.servers[server.0].net);
                    let depart = depart.max(self.net.now());
                    self.net.send_at(depart, c_net, s_net, frame)?;
                }
                ClientAction::Notify(n) => self.record_notification(client, n),
            }
        }
        Ok(())
    }

    fn record_notification(&mut self, client: ClientId, n: Notification) {
        let at = self.net.now();
        if let Notification::JobAccepted { request, job, .. } = &n {
            if let Some(options) = self.clients[client.0].request_options.remove(request) {
                self.clients[client.0].job_options.insert(*job, options);
            }
        }
        if let Notification::JobFinished {
            conn,
            job,
            output,
            errors,
            stats,
        } = &n
        {
            self.clients[client.0].finished.push(FinishedJob {
                conn: *conn,
                job: *job,
                output: output.clone(),
                errors: errors.clone(),
                stats: *stats,
                at,
            });
            // Transparency: place output/errors into the user's files when
            // the submit asked for it.
            let host = self.clients[client.0].host.clone();
            let options = self.clients[client.0].job_options.get(job).cloned();
            if let Some(options) = options {
                if let Some(out_path) = &options.output_file {
                    let _ = self.vfs.write_file(&host, out_path, output.clone());
                }
                if let Some(err_path) = &options.error_file {
                    let _ = self.vfs.write_file(&host, err_path, errors.clone());
                }
            }
        }
        self.clients[client.0].notifications.push((at, n));
    }

    fn process_server_actions(
        &mut self,
        server: ServerId,
        actions: Vec<ServerAction>,
        depart: SimTime,
    ) {
        for action in actions {
            match action {
                ServerAction::Send { session, message } => {
                    let (client, _) = self.servers[server.0].sessions[&session];
                    let frame = Frame::encode(&message);
                    let (s_net, c_net) = (self.servers[server.0].net, self.clients[client.0].net);
                    let depart = depart.max(self.net.now());
                    self.net
                        .send_at(depart, s_net, c_net, frame)
                        .expect("connected pair has a link");
                }
                ServerAction::SetTimer { delay_ms, token } => {
                    let rt = &mut self.servers[server.0];
                    rt.next_timer += 1;
                    let raw = rt.next_timer;
                    rt.timers.insert(raw, token);
                    let delay = depart.saturating_sub(self.net.now())
                        + SimTime::from_millis(delay_ms);
                    self.net.schedule_timer(rt.net, delay, raw);
                }
            }
        }
    }

    /// All notifications a client has received, in delivery order.
    pub fn notifications(&self, client: ClientId) -> &[(SimTime, Notification)] {
        &self.clients[client.0].notifications
    }

    /// All finished jobs a client has received.
    pub fn finished_jobs(&self, client: ClientId) -> Vec<FinishedJob> {
        self.clients[client.0].finished.clone()
    }

    /// Clears a client's recorded notifications and finished jobs.
    pub fn clear_notifications(&mut self, client: ClientId) {
        self.clients[client.0].notifications.clear();
        self.clients[client.0].finished.clear();
    }

    /// Traffic between a client and a server: `(client→server, server→client)`.
    pub fn link_stats(&self, client: ClientId, server: ServerId) -> (LinkStats, LinkStats) {
        let (c_net, s_net) = (self.clients[client.0].net, self.servers[server.0].net);
        (self.net.stats(c_net, s_net), self.net.stats(s_net, c_net))
    }

    /// A server's behaviour counters.
    pub fn server_metrics(&self, server: ServerId) -> shadow_server::ServerMetrics {
        self.servers[server.0].node.metrics()
    }

    /// A server's shadow-cache counters.
    pub fn cache_stats(&self, server: ServerId) -> shadow_cache::CacheStats {
        self.servers[server.0].node.cache_stats()
    }

    /// A client's traffic counters.
    pub fn client_metrics(&self, client: ClientId) -> shadow_client::ClientMetrics {
        self.clients[client.0].node.metrics()
    }

    /// A client's version-store summary (retention diagnostics).
    pub fn client_version_stats(&self, client: ClientId) -> shadow_version::VersionStoreStats {
        self.clients[client.0].node.version_stats()
    }

    /// Fault injection: the server loses its shadow disk (§5.1).
    pub fn drop_server_cache(&mut self, server: ServerId) {
        self.servers[server.0].node.drop_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_netsim::profiles;

    fn basic() -> (Simulation, ClientId, ServerId, ConnId) {
        let mut sim = Simulation::new(1);
        let server = sim.add_server("sc", ServerConfig::new("sc"));
        let client = sim.add_client("ws1", ClientConfig::new("ws1", 1));
        let conn = sim.connect(client, server, profiles::lan()).unwrap();
        (sim, client, server, conn)
    }

    #[test]
    fn session_handshake_completes() {
        let (sim, client, _, _) = basic();
        assert!(sim
            .notifications(client)
            .iter()
            .any(|(_, n)| matches!(n, Notification::SessionReady { .. })));
    }

    #[test]
    fn end_to_end_job_runs() {
        let (mut sim, client, _, conn) = basic();
        sim.edit_file(client, "/job.cmd", |_| b"echo it works\n".to_vec())
            .unwrap();
        sim.submit(client, conn, "/job.cmd", &[], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let jobs = sim.finished_jobs(client);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].output, b"it works\n");
        assert_eq!(jobs[0].stats.exit_code, 0);
    }

    #[test]
    fn data_files_travel_and_are_processed() {
        let (mut sim, client, server, conn) = basic();
        sim.edit_file(client, "/data.txt", |_| b"3\n1\n2\n".to_vec())
            .unwrap();
        let data_name = sim.canonical_name(client, "/data.txt").unwrap();
        sim.edit_file(client, "/job.cmd", move |_| {
            format!("sort {data_name}\n").into_bytes()
        })
        .unwrap();
        sim.submit(
            client,
            conn,
            "/job.cmd",
            &["/data.txt"],
            SubmitOptions::default(),
        )
        .unwrap();
        sim.run_until_quiet();
        let jobs = sim.finished_jobs(client);
        assert_eq!(jobs[0].output, b"1\n2\n3\n");
        assert!(sim.server_metrics(server).full_updates >= 2);
    }

    #[test]
    fn resubmission_after_edit_sends_delta_not_full() {
        let (mut sim, client, server, conn) = basic();
        let base: Vec<u8> = (0..2000)
            .flat_map(|i| format!("record {i}\n").into_bytes())
            .collect();
        let base2 = base.clone();
        sim.edit_file(client, "/data.txt", move |_| base2.clone())
            .unwrap();
        let data_name = sim.canonical_name(client, "/data.txt").unwrap();
        sim.edit_file(client, "/job.cmd", move |_| {
            format!("wc {data_name}\n").into_bytes()
        })
        .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/data.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let before = sim.client_metrics(client);
        assert_eq!(before.deltas_sent, 0);

        // Edit a single record and resubmit.
        sim.edit_file(client, "/data.txt", |c| {
            let text = String::from_utf8(c).unwrap();
            text.replace("record 1000", "record one thousand").into_bytes()
        })
        .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/data.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let after = sim.client_metrics(client);
        assert_eq!(after.deltas_sent, 1, "the edit should travel as a delta");
        assert_eq!(after.fulls_sent, before.fulls_sent, "no new full transfers");
        assert_eq!(sim.finished_jobs(client).len(), 2);
        assert_eq!(sim.server_metrics(server).delta_updates, 1);
    }

    #[test]
    fn background_update_flows_before_submit() {
        let (mut sim, client, server, conn) = basic();
        sim.edit_file(client, "/f.txt", |_| b"v1 content\n".to_vec())
            .unwrap();
        let name = sim.canonical_name(client, "/f.txt").unwrap();
        sim.edit_file(client, "/job.cmd", move |_| format!("cat {name}\n").into_bytes())
            .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/f.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        sim.clear_notifications(client);

        // Edit WITHOUT submitting: the eager server pulls in background.
        sim.edit_file(client, "/f.txt", |_| b"v2 content\n".to_vec())
            .unwrap();
        sim.run_until_quiet();
        let key = shadow_proto::FileKey::new(
            shadow_proto::DomainId::new(1),
            sim.vfs().resolve("ws1", "/f.txt").unwrap().file_id,
        );
        let _ = server;
        assert_eq!(
            sim.servers[0].node.cached_version(key),
            Some(shadow_proto::VersionNumber::new(2)),
            "background update should land without a submit"
        );
    }

    #[test]
    fn output_files_are_written_on_completion() {
        let (mut sim, client, _, conn) = basic();
        sim.edit_file(client, "/job.cmd", |_| b"echo into file\n".to_vec())
            .unwrap();
        let options = SubmitOptions {
            output_file: Some("/results/run.out".to_string()),
            error_file: Some("/results/run.err".to_string()),
            ..SubmitOptions::default()
        };
        sim.vfs_mut().mkdir_p("ws1", "/results").unwrap();
        sim.submit(client, conn, "/job.cmd", &[], options).unwrap();
        sim.run_until_quiet();
        assert_eq!(
            sim.vfs().read_file("ws1", "/results/run.out").unwrap(),
            b"into file\n"
        );
        assert_eq!(sim.vfs().read_file("ws1", "/results/run.err").unwrap(), b"");
    }

    #[test]
    fn cache_loss_degrades_to_full_transfer_not_failure() {
        let (mut sim, client, server, conn) = basic();
        sim.edit_file(client, "/data.txt", |_| b"important data\n".to_vec())
            .unwrap();
        let name = sim.canonical_name(client, "/data.txt").unwrap();
        sim.edit_file(client, "/job.cmd", move |_| format!("cat {name}\n").into_bytes())
            .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/data.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();

        sim.drop_server_cache(server);

        sim.edit_file(client, "/data.txt", |_| b"important data v2\n".to_vec())
            .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/data.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let jobs = sim.finished_jobs(client);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].output, b"important data v2\n");
        // The recovery transferred the file whole (no usable base).
        assert!(sim.client_metrics(client).fulls_sent >= 3);
    }

    #[test]
    fn simulated_times_reflect_link_speed() {
        let mut slow = Simulation::new(1);
        let server = slow.add_server("sc", ServerConfig::new("sc"));
        let client = slow.add_client("ws1", ClientConfig::new("ws1", 1));
        let conn = slow.connect(client, server, profiles::cypress()).unwrap();
        let content = shadow_workload::generate_file(&shadow_workload::FileSpec::new(50_000, 1));
        slow.edit_file(client, "/data", move |_| content.clone()).unwrap();
        let name = slow.canonical_name(client, "/data").unwrap();
        slow.edit_file(client, "/job.cmd", move |_| format!("wc {name}\n").into_bytes())
            .unwrap();
        slow.submit(client, conn, "/job.cmd", &["/data"], SubmitOptions::default())
            .unwrap();
        slow.run_until_quiet();
        // 50 KB over ~960 B/s is close to a minute.
        let t = slow.finished_jobs(client)[0].at.as_secs_f64();
        assert!((40.0..120.0).contains(&t), "t = {t}");
    }

    #[test]
    fn two_clients_one_nfs_domain_share_one_shadow() {
        let mut sim = Simulation::new(1);
        let server = sim.add_server("sc", ServerConfig::new("sc"));
        // Set up the NFS topology before adding clients so hosts exist.
        let vfs = sim.vfs_mut();
        vfs.add_host("fileserver").unwrap();
        vfs.add_host("ws1").unwrap();
        vfs.add_host("ws2").unwrap();
        vfs.mkdir_p("fileserver", "/export").unwrap();
        vfs.write_file("fileserver", "/export/shared.dat", b"shared content\n".to_vec())
            .unwrap();
        vfs.mount("ws1", "/proj", "fileserver", "/export").unwrap();
        vfs.mount("ws2", "/work", "fileserver", "/export").unwrap();

        let c1 = sim.add_client("ws1", ClientConfig::new("ws1", 1));
        let c2 = sim.add_client("ws2", ClientConfig::new("ws2", 1));
        let conn1 = sim.connect(c1, server, profiles::lan()).unwrap();
        let conn2 = sim.connect(c2, server, profiles::lan()).unwrap();

        let shared1 = sim.canonical_name(c1, "/proj/shared.dat").unwrap();
        let shared2 = sim.canonical_name(c2, "/work/shared.dat").unwrap();
        assert_eq!(shared1, shared2, "one canonical identity across mounts");

        sim.edit_file(c1, "/job1.cmd", {
            let n = shared1.clone();
            move |_| format!("cat {n}\n").into_bytes()
        })
        .unwrap();
        sim.submit(c1, conn1, "/job1.cmd", &["/proj/shared.dat"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();

        sim.edit_file(c2, "/job2.cmd", {
            let n = shared2.clone();
            move |_| format!("wc {n}\n").into_bytes()
        })
        .unwrap();
        sim.submit(c2, conn2, "/job2.cmd", &["/work/shared.dat"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();

        assert_eq!(sim.finished_jobs(c1).len(), 1);
        assert_eq!(sim.finished_jobs(c2).len(), 1);
        // ws2's submission found the shared file already cached: only one
        // full transfer of shared.dat ever happened (plus 2 job files).
        let m = sim.server_metrics(server);
        assert_eq!(m.full_updates, 3, "shared file cached once: {m:?}");
    }
}
