//! The deterministic simulation driver.
//!
//! Owns the virtual file system, the discrete-event network, and any
//! number of client/server state machines; routes encoded frames between
//! them with realistic transmission times and charges the [`CpuModel`] for
//! diff/apply work. Identical inputs produce identical timelines.
//!
//! Protocol dispatch lives in `shadow-runtime`: each endpoint is a
//! [`ClientDriver`] or [`ServerDriver`], and this module is only the
//! *scheduler* — it decides when frames depart (network + CPU model) and
//! turns armed timer deadlines into discrete events.

use std::cell::Cell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use shadow_client::{
    ClientConfig, ClientError, ConnId, Editor, FileRef, FnEditor, Notification, ShadowEditor,
};
use shadow_netsim::{Delivery, LinkProfile, LinkStats, NetError, NodeId, SimEvent, SimNet, SimTime};
use shadow_proto::{ClientMessage, JobId, JobStats, RequestId, SubmitOptions, WireError};
use shadow_runtime::{ClientDriver, EventHook, FrameInfo, ServerDriver, ServerIo};
use shadow_server::{ServerConfig, ServerNode, SessionId};
use shadow_vfs::{Vfs, VfsError};

use crate::CpuModel;

/// Handle for a client in a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(usize);

/// Handle for a server in a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId(usize);

/// A delivered, reconstructed job result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedJob {
    /// The connection the completion arrived on.
    pub conn: ConnId,
    /// The job.
    pub job: JobId,
    /// Standard output.
    pub output: Vec<u8>,
    /// Error output.
    pub errors: Vec<u8>,
    /// Server-side accounting.
    pub stats: JobStats,
    /// Simulated time of delivery.
    pub at: SimTime,
}

/// Simulation-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A virtual file-system operation failed.
    Vfs(VfsError),
    /// A client command failed.
    Client(ClientError),
    /// A network operation failed.
    Net(NetError),
    /// A frame failed to decode (internal wiring bug or corruption).
    Wire(WireError),
    /// The named client/server pair is already connected.
    AlreadyConnected,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Vfs(e) => write!(f, "file system: {e}"),
            SimError::Client(e) => write!(f, "client: {e}"),
            SimError::Net(e) => write!(f, "network: {e}"),
            SimError::Wire(e) => write!(f, "wire: {e}"),
            SimError::AlreadyConnected => write!(f, "pair is already connected"),
        }
    }
}

impl Error for SimError {}

impl From<VfsError> for SimError {
    fn from(e: VfsError) -> Self {
        SimError::Vfs(e)
    }
}
impl From<ClientError> for SimError {
    fn from(e: ClientError) -> Self {
        SimError::Client(e)
    }
}
impl From<NetError> for SimError {
    fn from(e: NetError) -> Self {
        SimError::Net(e)
    }
}
impl From<WireError> for SimError {
    fn from(e: WireError) -> Self {
        SimError::Wire(e)
    }
}

impl From<shadow_runtime::FeedError> for SimError {
    fn from(e: shadow_runtime::FeedError) -> Self {
        match e {
            shadow_runtime::FeedError::Wire(w) => SimError::Wire(w),
            shadow_runtime::FeedError::Incomplete => SimError::Wire(WireError::Truncated {
                needed: 0,
                available: 0,
            }),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Endpoint {
    Client(ClientId),
    Server(ServerId),
}

struct ClientRt {
    driver: ClientDriver,
    net: NodeId,
    host: String,
    notifications: Vec<(SimTime, Notification)>,
    finished: Vec<FinishedJob>,
    next_conn: u64,
}

struct ServerRt {
    driver: ServerDriver,
    net: NodeId,
    sessions: HashMap<SessionId, (ClientId, ConnId)>,
    next_session: u64,
}

/// The deterministic multi-node simulation. See the
/// [crate quickstart](crate) for an end-to-end example.
pub struct Simulation {
    net: SimNet,
    vfs: Vfs,
    clients: Vec<ClientRt>,
    servers: Vec<ServerRt>,
    endpoints: HashMap<NodeId, Endpoint>,
    /// One connection per (client, server) pair.
    pairs: HashMap<(usize, usize), (ConnId, SessionId)>,
    cpu: CpuModel,
}

// Manual impl: a full dump of every node would be pages long; summarize.
impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers.len())
            .field("pairs", &self.pairs.len())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates a simulation whose clients share naming domain `domain`,
    /// with negligible CPU costs (functional default). Use
    /// [`with_cpu`](Self::with_cpu) for calibrated performance runs.
    pub fn new(domain: u64) -> Self {
        Simulation {
            net: SimNet::new(),
            vfs: Vfs::new(shadow_proto::DomainId::new(domain)),
            clients: Vec::new(),
            servers: Vec::new(),
            endpoints: HashMap::new(),
            pairs: HashMap::new(),
            cpu: CpuModel::instant(),
        }
    }

    /// Sets the CPU cost model.
    #[must_use]
    pub fn with_cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The shared virtual file system.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Mutable access to the virtual file system (for topology setup:
    /// mounts, symlinks, extra hosts).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    /// Adds a shadow server (its name also becomes its net node name).
    pub fn add_server(&mut self, name: &str, config: ServerConfig) -> ServerId {
        let net = self.net.add_node(name);
        let id = ServerId(self.servers.len());
        self.servers.push(ServerRt {
            driver: ServerDriver::new(ServerNode::new(config)),
            net,
            sessions: HashMap::new(),
            next_session: 0,
        });
        self.endpoints.insert(net, Endpoint::Server(id));
        id
    }

    /// Adds a client workstation; `host` is created in the virtual file
    /// system (it must match `config.host` for name resolution to work).
    pub fn add_client(&mut self, host: &str, config: ClientConfig) -> ClientId {
        let net = self.net.add_node(host);
        // Tolerate pre-created hosts (topology set up via vfs_mut first).
        let _ = self.vfs.add_host(host);
        let id = ClientId(self.clients.len());
        self.clients.push(ClientRt {
            driver: ClientDriver::new(shadow_client::ClientNode::new(config)),
            net,
            host: host.to_string(),
            notifications: Vec::new(),
            finished: Vec::new(),
            next_conn: 0,
        });
        self.endpoints.insert(net, Endpoint::Client(id));
        id
    }

    /// Installs an instrumentation tap on a client's driver, observing
    /// every frame it sends or receives.
    pub fn set_client_event_hook(&mut self, client: ClientId, hook: EventHook) {
        self.clients[client.0].driver.set_event_hook(hook);
    }

    /// Installs an instrumentation tap on a server's driver.
    pub fn set_server_event_hook(&mut self, server: ServerId, hook: EventHook) {
        self.servers[server.0].driver.set_event_hook(hook);
    }

    /// Connects a client to a server over `profile` and completes the
    /// session handshake. One connection per pair.
    ///
    /// # Errors
    ///
    /// [`SimError::AlreadyConnected`] when the pair has a connection.
    pub fn connect(
        &mut self,
        client: ClientId,
        server: ServerId,
        profile: LinkProfile,
    ) -> Result<ConnId, SimError> {
        if self.pairs.contains_key(&(client.0, server.0)) {
            return Err(SimError::AlreadyConnected);
        }
        let (c_net, s_net) = (self.clients[client.0].net, self.servers[server.0].net);
        self.net.connect(c_net, s_net, profile);

        let conn = ConnId::new(self.clients[client.0].next_conn);
        self.clients[client.0].next_conn += 1;
        let session = SessionId::new(self.servers[server.0].next_session);
        self.servers[server.0].next_session += 1;
        self.servers[server.0]
            .sessions
            .insert(session, (client, conn));
        self.pairs.insert((client.0, server.0), (conn, session));

        let now = self.net.now();
        let io = self.servers[server.0]
            .driver
            .connected(session, now.as_millis());
        self.route_server_io(server, io, now);
        let out = self.clients[client.0].driver.connect(conn, now.as_millis());
        self.send_client_frames(client, out, now)?;
        self.drain_client(client, now);
        self.run_until_quiet();
        Ok(conn)
    }

    /// Tears down a client↔server connection (transport loss).
    pub fn drop_connection(&mut self, client: ClientId, server: ServerId) {
        if let Some((conn, session)) = self.pairs.remove(&(client.0, server.0)) {
            self.clients[client.0].driver.disconnect(conn);
            let now = self.net.now();
            // Session teardown produces no sends; drop the (empty) io.
            let _ = self.servers[server.0].driver.disconnected(
                session,
                shadow_server::CloseReason::Error,
                now.as_millis(),
            );
            self.servers[server.0].sessions.remove(&session);
        }
    }

    /// Gracefully closes a client↔server connection: the orderly
    /// hang-up a live deployment performs on client drop, so both
    /// worlds account the session under the `clean` close reason.
    pub fn close_connection(&mut self, client: ClientId, server: ServerId) {
        if let Some((conn, session)) = self.pairs.remove(&(client.0, server.0)) {
            self.clients[client.0].driver.disconnect(conn);
            let now = self.net.now();
            let _ = self.servers[server.0].driver.disconnected(
                session,
                shadow_server::CloseReason::Clean,
                now.as_millis(),
            );
            self.servers[server.0].sessions.remove(&session);
        }
    }

    /// Runs one shadow editing session on the client's file: read, apply
    /// `edit`, write back, then run the shadow post-processor (version +
    /// background notifications).
    ///
    /// # Errors
    ///
    /// File-system errors from the edit.
    pub fn edit_file(
        &mut self,
        client: ClientId,
        path: &str,
        edit: impl FnMut(Vec<u8>) -> Vec<u8>,
    ) -> Result<FileRef, SimError> {
        let mut editor = FnEditor::new(edit);
        self.edit_file_with(client, path, &mut editor)
    }

    /// Like [`edit_file`](Self::edit_file) with an explicit [`Editor`].
    ///
    /// # Errors
    ///
    /// File-system errors from the edit.
    pub fn edit_file_with(
        &mut self,
        client: ClientId,
        path: &str,
        editor: &mut dyn Editor,
    ) -> Result<FileRef, SimError> {
        let host = self.clients[client.0].host.clone();
        let outcome = ShadowEditor::edit_file(&mut self.vfs, &host, path, editor)?;
        let fref = FileRef::new(
            outcome.name.file_id,
            format!("{}:{}", outcome.name.host, outcome.name.path),
        );
        let now = self.net.now();
        let (_, out) =
            self.clients[client.0]
                .driver
                .edit_finished(&fref, outcome.content, now.as_millis());
        let depart = now + self.cpu.message_time();
        self.send_client_frames(client, out, depart)?;
        self.drain_client(client, now);
        Ok(fref)
    }

    /// The canonical wire name of a file as seen from a client — the name
    /// job command files must use to reference data files.
    ///
    /// # Errors
    ///
    /// Name-resolution failures.
    pub fn canonical_name(&self, client: ClientId, path: &str) -> Result<String, SimError> {
        let host = &self.clients[client.0].host;
        let name = self.vfs.resolve(host, path)?;
        Ok(format!("{}:{}", name.host, name.path))
    }

    /// Submits a job: `job_path` is the command file, `data_paths` the data
    /// files; all are registered (versioned) from their current VFS
    /// content first.
    ///
    /// # Errors
    ///
    /// Resolution or client-command failures.
    pub fn submit(
        &mut self,
        client: ClientId,
        conn: ConnId,
        job_path: &str,
        data_paths: &[&str],
        options: SubmitOptions,
    ) -> Result<RequestId, SimError> {
        let host = self.clients[client.0].host.clone();
        let mut refs = Vec::with_capacity(1 + data_paths.len());
        for path in std::iter::once(&job_path).chain(data_paths) {
            let name = self.vfs.resolve(&host, path)?;
            let content = self.vfs.read_file(&host, path)?;
            let fref = FileRef::new(name.file_id, format!("{}:{}", name.host, name.path));
            // Register current content (deduped if unchanged); background
            // notifications may flow.
            let now = self.net.now();
            let (_, out) =
                self.clients[client.0]
                    .driver
                    .edit_finished(&fref, content, now.as_millis());
            let depart = now + self.cpu.message_time();
            self.send_client_frames(client, out, depart)?;
            self.drain_client(client, now);
            refs.push(fref);
        }
        let now = self.net.now();
        let (request, out) = self.clients[client.0].driver.submit(
            conn,
            &refs[0],
            &refs[1..],
            options,
            now.as_millis(),
        )?;
        let depart = now + self.cpu.message_time();
        self.send_client_frames(client, out, depart)?;
        self.drain_client(client, now);
        Ok(request)
    }

    /// Issues a status query.
    ///
    /// # Errors
    ///
    /// Client-command failures.
    pub fn status(
        &mut self,
        client: ClientId,
        conn: ConnId,
        job: Option<JobId>,
    ) -> Result<RequestId, SimError> {
        let now = self.net.now();
        let (request, out) = self.clients[client.0]
            .driver
            .status(conn, job, now.as_millis())?;
        let depart = now + self.cpu.message_time();
        self.send_client_frames(client, out, depart)?;
        self.drain_client(client, now);
        Ok(request)
    }

    /// Drains every pending event; returns the number processed.
    pub fn run_until_quiet(&mut self) -> usize {
        let mut n = 0;
        while let Some(delivery) = self.net.next() {
            self.dispatch(delivery);
            n += 1;
        }
        n
    }

    /// Runs events up to and including `deadline` (events scheduled after
    /// it stay queued); returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> usize {
        let mut n = 0;
        while self.net.peek_time().is_some_and(|t| t <= deadline) {
            let delivery = self.net.next().expect("peeked event exists");
            self.dispatch(delivery);
            n += 1;
        }
        n
    }

    fn dispatch(&mut self, delivery: Delivery) {
        match delivery.event {
            SimEvent::Message { to, from, payload } => match self.endpoints[&to] {
                Endpoint::Server(s) => self.deliver_to_server(delivery.at, s, from, &payload),
                Endpoint::Client(c) => self.deliver_to_client(delivery.at, c, from, &payload),
            },
            SimEvent::Timer { node, .. } => {
                if let Endpoint::Server(s) = self.endpoints[&node] {
                    // The driver owns the timer queue; this event is only
                    // a wake-up for whatever is due by now.
                    let at = delivery.at;
                    let io = self.servers[s.0]
                        .driver
                        .fire_due(at.as_millis(), self.cpu.message_time().as_millis());
                    let depart = at + self.cpu.message_time();
                    self.route_server_io(s, io, depart);
                }
            }
        }
    }

    fn deliver_to_server(&mut self, at: SimTime, server: ServerId, from: NodeId, payload: &[u8]) {
        let Endpoint::Client(client) = self.endpoints[&from] else {
            panic!("server received frame from a non-client node");
        };
        let (_, session) = self.pairs[&(client.0, server.0)];
        // Processing cost: applying an update dominates; everything else
        // is fixed per-message handling. The closure prices the decoded
        // message and stashes the exact SimTime cost for frame routing.
        let cost = Cell::new(SimTime::ZERO);
        let cpu = self.cpu;
        let io = self.servers[server.0]
            .driver
            .feed_frame(session, payload, at.as_millis(), |message| {
                let c = match message {
                    ClientMessage::Update { payload, .. } => cpu.apply_time(payload.data_len()),
                    _ => cpu.message_time(),
                };
                cost.set(c);
                c.as_millis()
            })
            .expect("well-formed frame");
        self.route_server_io(server, io, at + cost.get());
    }

    fn deliver_to_client(&mut self, at: SimTime, client: ClientId, from: NodeId, payload: &[u8]) {
        let Endpoint::Server(server) = self.endpoints[&from] else {
            panic!("client received frame from a non-server node");
        };
        let (conn, _) = self.pairs[&(client.0, server.0)];
        let out = self.clients[client.0]
            .driver
            .feed_frame(conn, payload, at.as_millis())
            .expect("well-formed frame");
        // Cost: answering an update request with a delta means running the
        // differential comparison over the whole file at the workstation.
        let mut depart = at + self.cpu.message_time();
        for o in &out {
            match o.info {
                FrameInfo::UpdateDelta { file_size, .. } => {
                    depart = at + self.cpu.diff_time(file_size);
                }
                FrameInfo::UpdateFull { .. } => depart = at + self.cpu.message_time(),
                FrameInfo::Other => {}
            }
        }
        self.send_client_frames(client, out, depart)
            .expect("routing of client actions");
        self.drain_client(client, at);
    }

    /// Schedules a client's encoded frames onto the network, all at
    /// `depart` (clamped to the present).
    fn send_client_frames(
        &mut self,
        client: ClientId,
        out: Vec<shadow_runtime::ClientOutbound>,
        depart: SimTime,
    ) -> Result<(), SimError> {
        for o in out {
            let server = self
                .pairs
                .iter()
                .find(|((c, _), (k, _))| *c == client.0 && *k == o.conn)
                .map(|((_, s), _)| ServerId(*s))
                .expect("conn belongs to a connected pair");
            let (c_net, s_net) = (self.clients[client.0].net, self.servers[server.0].net);
            let depart = depart.max(self.net.now());
            self.net.send_at(depart, c_net, s_net, o.frame)?;
        }
        Ok(())
    }

    /// Schedules a server's frames at `depart` and turns armed timer
    /// deadlines into simulator wake-up events.
    fn route_server_io(&mut self, server: ServerId, io: ServerIo, depart: SimTime) {
        let now = self.net.now();
        for out in io.outbound {
            let (client, _) = self.servers[server.0].sessions[&out.session];
            let (s_net, c_net) = (self.servers[server.0].net, self.clients[client.0].net);
            let depart = depart.max(now);
            self.net
                .send_at(depart, s_net, c_net, out.frame)
                .expect("connected pair has a link");
        }
        for deadline_ms in io.armed {
            let wake = SimTime::from_millis(deadline_ms).saturating_sub(now);
            self.net.schedule_timer(self.servers[server.0].net, wake, 0);
        }
    }

    /// Moves buffered driver notifications into the simulation's log,
    /// stamping them with simulated time and performing output-file
    /// transparency (writing job output into the user's files).
    fn drain_client(&mut self, client: ClientId, at: SimTime) {
        let host = self.clients[client.0].host.clone();
        for job in self.clients[client.0].driver.take_finished() {
            let options = self.clients[client.0].driver.options_for(job.job).cloned();
            if let Some(options) = options {
                if let Some(out_path) = &options.output_file {
                    let _ = self.vfs.write_file(&host, out_path, job.output.clone());
                }
                if let Some(err_path) = &options.error_file {
                    let _ = self.vfs.write_file(&host, err_path, job.errors.clone());
                }
            }
            self.clients[client.0].finished.push(FinishedJob {
                conn: job.conn,
                job: job.job,
                output: job.output,
                errors: job.errors,
                stats: job.stats,
                at,
            });
        }
        let drained = self.clients[client.0].driver.take_notifications();
        self.clients[client.0]
            .notifications
            .extend(drained.into_iter().map(|(_, n)| (at, n)));
    }

    /// All notifications a client has received, in delivery order.
    pub fn notifications(&self, client: ClientId) -> &[(SimTime, Notification)] {
        &self.clients[client.0].notifications
    }

    /// All finished jobs a client has received.
    pub fn finished_jobs(&self, client: ClientId) -> Vec<FinishedJob> {
        self.clients[client.0].finished.clone()
    }

    /// Clears a client's recorded notifications and finished jobs.
    pub fn clear_notifications(&mut self, client: ClientId) {
        self.clients[client.0].notifications.clear();
        self.clients[client.0].finished.clear();
    }

    /// Traffic between a client and a server: `(client→server, server→client)`.
    pub fn link_stats(&self, client: ClientId, server: ServerId) -> (LinkStats, LinkStats) {
        let (c_net, s_net) = (self.clients[client.0].net, self.servers[server.0].net);
        (self.net.stats(c_net, s_net), self.net.stats(s_net, c_net))
    }

    /// A server's behaviour counters.
    #[deprecated(note = "use `server_report()` and read the \"server\" section")]
    #[allow(deprecated)]
    pub fn server_metrics(&self, server: ServerId) -> shadow_server::ServerMetrics {
        self.servers[server.0].driver.metrics()
    }

    /// A server's shadow-cache counters.
    #[deprecated(note = "use `server_report()` and read the \"cache\" section")]
    #[allow(deprecated)]
    pub fn cache_stats(&self, server: ServerId) -> shadow_cache::CacheStats {
        self.servers[server.0].driver.node().cache_stats()
    }

    /// A client's traffic counters.
    #[deprecated(note = "use `client_report()` and read the \"client\" section")]
    #[allow(deprecated)]
    pub fn client_metrics(&self, client: ClientId) -> shadow_client::ClientMetrics {
        self.clients[client.0].driver.metrics()
    }

    /// A client's version-store summary (retention diagnostics).
    #[deprecated(note = "use `client_report()` and read the \"versions\" section")]
    pub fn client_version_stats(&self, client: ClientId) -> shadow_version::VersionStoreStats {
        self.clients[client.0].driver.node().version_stats()
    }

    /// A client's full report: protocol metrics, version-store
    /// occupancy, and driver wire counters as one aggregate.
    pub fn client_report(&self, client: ClientId) -> shadow_obs::NodeReport {
        self.clients[client.0].driver.report()
    }

    /// A server's full report: behaviour counters, shadow-cache
    /// statistics, and driver wire counters as one aggregate.
    pub fn server_report(&self, server: ServerId) -> shadow_obs::NodeReport {
        self.servers[server.0].driver.report()
    }

    /// Fault injection: the server loses its shadow disk (§5.1).
    pub fn drop_server_cache(&mut self, server: ServerId) {
        self.servers[server.0].driver.node_mut().drop_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_netsim::profiles;

    fn basic() -> (Simulation, ClientId, ServerId, ConnId) {
        let mut sim = Simulation::new(1);
        let server = sim.add_server("sc", ServerConfig::new("sc"));
        let client = sim.add_client("ws1", ClientConfig::new("ws1", 1));
        let conn = sim.connect(client, server, profiles::lan()).unwrap();
        (sim, client, server, conn)
    }

    #[test]
    fn session_handshake_completes() {
        let (sim, client, _, _) = basic();
        assert!(sim
            .notifications(client)
            .iter()
            .any(|(_, n)| matches!(n, Notification::SessionReady { .. })));
    }

    #[test]
    fn end_to_end_job_runs() {
        let (mut sim, client, _, conn) = basic();
        sim.edit_file(client, "/job.cmd", |_| b"echo it works\n".to_vec())
            .unwrap();
        sim.submit(client, conn, "/job.cmd", &[], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let jobs = sim.finished_jobs(client);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].output, b"it works\n");
        assert_eq!(jobs[0].stats.exit_code, 0);
    }

    #[test]
    fn data_files_travel_and_are_processed() {
        let (mut sim, client, server, conn) = basic();
        sim.edit_file(client, "/data.txt", |_| b"3\n1\n2\n".to_vec())
            .unwrap();
        let data_name = sim.canonical_name(client, "/data.txt").unwrap();
        sim.edit_file(client, "/job.cmd", move |_| {
            format!("sort {data_name}\n").into_bytes()
        })
        .unwrap();
        sim.submit(
            client,
            conn,
            "/job.cmd",
            &["/data.txt"],
            SubmitOptions::default(),
        )
        .unwrap();
        sim.run_until_quiet();
        let jobs = sim.finished_jobs(client);
        assert_eq!(jobs[0].output, b"1\n2\n3\n");
        assert!(sim.server_report(server).counter("server", "full_updates") >= 2);
    }

    #[test]
    fn resubmission_after_edit_sends_delta_not_full() {
        let (mut sim, client, server, conn) = basic();
        let base: Vec<u8> = (0..2000)
            .flat_map(|i| format!("record {i}\n").into_bytes())
            .collect();
        let base2 = base.clone();
        sim.edit_file(client, "/data.txt", move |_| base2.clone())
            .unwrap();
        let data_name = sim.canonical_name(client, "/data.txt").unwrap();
        sim.edit_file(client, "/job.cmd", move |_| {
            format!("wc {data_name}\n").into_bytes()
        })
        .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/data.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let before = sim.client_report(client);
        assert_eq!(before.counter("client", "deltas_sent"), 0);

        // Edit a single record and resubmit.
        sim.edit_file(client, "/data.txt", |c| {
            let text = String::from_utf8(c).unwrap();
            text.replace("record 1000", "record one thousand").into_bytes()
        })
        .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/data.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let after = sim.client_report(client);
        assert_eq!(
            after.counter("client", "deltas_sent"),
            1,
            "the edit should travel as a delta"
        );
        assert_eq!(
            after.counter("client", "fulls_sent"),
            before.counter("client", "fulls_sent"),
            "no new full transfers"
        );
        assert_eq!(sim.finished_jobs(client).len(), 2);
        assert_eq!(sim.server_report(server).counter("server", "delta_updates"), 1);
    }

    #[test]
    fn background_update_flows_before_submit() {
        let (mut sim, client, server, conn) = basic();
        sim.edit_file(client, "/f.txt", |_| b"v1 content\n".to_vec())
            .unwrap();
        let name = sim.canonical_name(client, "/f.txt").unwrap();
        sim.edit_file(client, "/job.cmd", move |_| format!("cat {name}\n").into_bytes())
            .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/f.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        sim.clear_notifications(client);

        // Edit WITHOUT submitting: the eager server pulls in background.
        sim.edit_file(client, "/f.txt", |_| b"v2 content\n".to_vec())
            .unwrap();
        sim.run_until_quiet();
        let key = shadow_proto::FileKey::new(
            shadow_proto::DomainId::new(1),
            sim.vfs().resolve("ws1", "/f.txt").unwrap().file_id,
        );
        let _ = server;
        assert_eq!(
            sim.servers[0].driver.node().cached_version(key),
            Some(shadow_proto::VersionNumber::new(2)),
            "background update should land without a submit"
        );
    }

    #[test]
    fn output_files_are_written_on_completion() {
        let (mut sim, client, _, conn) = basic();
        sim.edit_file(client, "/job.cmd", |_| b"echo into file\n".to_vec())
            .unwrap();
        let options = SubmitOptions {
            output_file: Some("/results/run.out".to_string()),
            error_file: Some("/results/run.err".to_string()),
            ..SubmitOptions::default()
        };
        sim.vfs_mut().mkdir_p("ws1", "/results").unwrap();
        sim.submit(client, conn, "/job.cmd", &[], options).unwrap();
        sim.run_until_quiet();
        assert_eq!(
            sim.vfs().read_file("ws1", "/results/run.out").unwrap(),
            b"into file\n"
        );
        assert_eq!(sim.vfs().read_file("ws1", "/results/run.err").unwrap(), b"");
    }

    #[test]
    fn cache_loss_degrades_to_full_transfer_not_failure() {
        let (mut sim, client, server, conn) = basic();
        sim.edit_file(client, "/data.txt", |_| b"important data\n".to_vec())
            .unwrap();
        let name = sim.canonical_name(client, "/data.txt").unwrap();
        sim.edit_file(client, "/job.cmd", move |_| format!("cat {name}\n").into_bytes())
            .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/data.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();

        sim.drop_server_cache(server);

        sim.edit_file(client, "/data.txt", |_| b"important data v2\n".to_vec())
            .unwrap();
        sim.submit(client, conn, "/job.cmd", &["/data.txt"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();
        let jobs = sim.finished_jobs(client);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].output, b"important data v2\n");
        // The recovery transferred the file whole (no usable base).
        assert!(sim.client_report(client).counter("client", "fulls_sent") >= 3);
    }

    #[test]
    fn simulated_times_reflect_link_speed() {
        let mut slow = Simulation::new(1);
        let server = slow.add_server("sc", ServerConfig::new("sc"));
        let client = slow.add_client("ws1", ClientConfig::new("ws1", 1));
        let conn = slow.connect(client, server, profiles::cypress()).unwrap();
        let content = shadow_workload::generate_file(&shadow_workload::FileSpec::new(50_000, 1));
        slow.edit_file(client, "/data", move |_| content.clone()).unwrap();
        let name = slow.canonical_name(client, "/data").unwrap();
        slow.edit_file(client, "/job.cmd", move |_| format!("wc {name}\n").into_bytes())
            .unwrap();
        slow.submit(client, conn, "/job.cmd", &["/data"], SubmitOptions::default())
            .unwrap();
        slow.run_until_quiet();
        // 50 KB over ~960 B/s is close to a minute.
        let t = slow.finished_jobs(client)[0].at.as_secs_f64();
        assert!((40.0..120.0).contains(&t), "t = {t}");
    }

    #[test]
    fn two_clients_one_nfs_domain_share_one_shadow() {
        let mut sim = Simulation::new(1);
        let server = sim.add_server("sc", ServerConfig::new("sc"));
        // Set up the NFS topology before adding clients so hosts exist.
        let vfs = sim.vfs_mut();
        vfs.add_host("fileserver").unwrap();
        vfs.add_host("ws1").unwrap();
        vfs.add_host("ws2").unwrap();
        vfs.mkdir_p("fileserver", "/export").unwrap();
        vfs.write_file("fileserver", "/export/shared.dat", b"shared content\n".to_vec())
            .unwrap();
        vfs.mount("ws1", "/proj", "fileserver", "/export").unwrap();
        vfs.mount("ws2", "/work", "fileserver", "/export").unwrap();

        let c1 = sim.add_client("ws1", ClientConfig::new("ws1", 1));
        let c2 = sim.add_client("ws2", ClientConfig::new("ws2", 1));
        let conn1 = sim.connect(c1, server, profiles::lan()).unwrap();
        let conn2 = sim.connect(c2, server, profiles::lan()).unwrap();

        let shared1 = sim.canonical_name(c1, "/proj/shared.dat").unwrap();
        let shared2 = sim.canonical_name(c2, "/work/shared.dat").unwrap();
        assert_eq!(shared1, shared2, "one canonical identity across mounts");

        sim.edit_file(c1, "/job1.cmd", {
            let n = shared1.clone();
            move |_| format!("cat {n}\n").into_bytes()
        })
        .unwrap();
        sim.submit(c1, conn1, "/job1.cmd", &["/proj/shared.dat"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();

        sim.edit_file(c2, "/job2.cmd", {
            let n = shared2.clone();
            move |_| format!("wc {n}\n").into_bytes()
        })
        .unwrap();
        sim.submit(c2, conn2, "/job2.cmd", &["/work/shared.dat"], SubmitOptions::default())
            .unwrap();
        sim.run_until_quiet();

        assert_eq!(sim.finished_jobs(c1).len(), 1);
        assert_eq!(sim.finished_jobs(c2).len(), 1);
        // ws2's submission found the shared file already cached: only one
        // full transfer of shared.dat ever happened (plus 2 job files).
        let m = sim.server_report(server);
        assert_eq!(
            m.counter("server", "full_updates"),
            3,
            "shared file cached once: {m:?}"
        );
    }
}
