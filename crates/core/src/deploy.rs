//! The unified deployment builder.
//!
//! Historically each deployment shape had its own entry point —
//! `LiveSystem::start`, `LiveSystem::sharded`, `TcpServerRuntime::bind`,
//! `ShardedTcpServerRuntime::bind` — and none of them could restore a
//! durable shadow store. [`Deployment`] collapses all four into one
//! fluent builder with durability as an orthogonal axis:
//!
//! ```no_run
//! use shadow::{Deployment, ServerConfig};
//!
//! # fn main() -> Result<(), shadow::DeployError> {
//! // In-process pipes, one server, diskless (was LiveSystem::start):
//! let system = Deployment::new(ServerConfig::new("superc")).pipes()?;
//!
//! // Four shards over TCP, journaling to disk:
//! let daemon = Deployment::new(ServerConfig::new("superc"))
//!     .shards(4)
//!     .durable("/var/lib/shadowd")
//!     .tcp("0.0.0.0:4411")?;
//! # drop(daemon);
//! # system.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! With [`durable`](Deployment::durable), every shard opens its slice of
//! the store ([`DurableStore::open_shard`]), replays its journal into its
//! `ServerNode` *before* serving, and journals every subsequent shadow
//! mutation — so a client that held `vN` before the restart still gets a
//! delta, not a full transfer, afterwards.

use std::error::Error;
use std::fmt;
use std::io;
use std::net::ToSocketAddrs;
use std::path::PathBuf;

use shadow_client::ClientConfig;
use shadow_obs::NodeReport;
use shadow_runtime::PersistSink;
use shadow_server::{ServerConfig, ServerNode};
use shadow_store::{DurableStore, RecoverySummary};

use crate::live::{LiveClient, LiveSystem, ShardedLiveSystem};
use crate::tcpd::{ShardedTcpServerRuntime, TcpServerRuntime};

/// Errors building a deployment.
#[derive(Debug)]
pub enum DeployError {
    /// The builder was configured inconsistently.
    Invalid(&'static str),
    /// Binding the listener or opening the durable store failed.
    Io(io::Error),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Invalid(why) => write!(f, "invalid deployment: {why}"),
            DeployError::Io(e) => write!(f, "deployment i/o: {e}"),
        }
    }
}

impl Error for DeployError {}

impl From<io::Error> for DeployError {
    fn from(e: io::Error) -> Self {
        DeployError::Io(e)
    }
}

/// One pre-built shard: its (possibly journal-restored) node and the
/// sink its storage intents go to.
type ShardParts = (ServerNode, Option<Box<dyn PersistSink>>);

/// The single entry point for standing up a wall-clock deployment.
///
/// Axes:
/// * **shards** — 1 (default) runs the paper's single poll loop;
///   N > 1 runs N domain-affine worker shards behind a routing acceptor.
/// * **durable** — a root directory makes the shadow store survive
///   restarts via per-domain write-ahead journals (`shadow-store`);
///   without it the deployment is diskless, exactly as before.
/// * **transport** — [`pipes`](Self::pipes) for in-process duplex pipes,
///   [`tcp`](Self::tcp) for real sockets.
#[derive(Debug, Clone)]
pub struct Deployment {
    config: ServerConfig,
    shards: usize,
    durable: Option<PathBuf>,
    compact_every: Option<usize>,
}

impl Deployment {
    /// Starts describing a deployment of one server configuration.
    pub fn new(config: ServerConfig) -> Self {
        Deployment {
            config,
            shards: 1,
            durable: None,
            compact_every: None,
        }
    }

    /// Sets the worker-shard count (default 1 = the unsharded shape).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Makes the shadow store durable under `root`: journals are
    /// replayed at build time and appended to while serving. Each shard
    /// owns the subset of per-domain journals its
    /// [`shard_for`](shadow_runtime::shard_for) affinity assigns it.
    #[must_use]
    pub fn durable(mut self, root: impl Into<PathBuf>) -> Self {
        self.durable = Some(root.into());
        self
    }

    /// Overrides the journal's snapshot-compaction interval (appends
    /// per domain between snapshots). Only meaningful with
    /// [`durable`](Self::durable).
    #[must_use]
    pub fn compact_every(mut self, every: usize) -> Self {
        self.compact_every = Some(every);
        self
    }

    /// Builds every shard's node and sink, replaying journals when the
    /// deployment is durable.
    fn parts(&self) -> Result<(Vec<ShardParts>, RecoverySummary), DeployError> {
        if self.shards == 0 {
            return Err(DeployError::Invalid("a deployment needs at least one shard"));
        }
        if self.compact_every.is_some() && self.durable.is_none() {
            return Err(DeployError::Invalid(
                "compact_every only applies to a durable deployment",
            ));
        }
        if self.compact_every == Some(0) {
            return Err(DeployError::Invalid("compact_every must be at least 1"));
        }
        let mut parts = Vec::with_capacity(self.shards);
        let mut recovery = RecoverySummary::default();
        for index in 0..self.shards {
            let mut node = ServerNode::new(self.config.clone());
            let sink = match &self.durable {
                Some(root) => {
                    let mut store = DurableStore::open_shard(root, index, self.shards)?;
                    if let Some(every) = self.compact_every {
                        store = store.with_compact_every(every);
                    }
                    merge_summary(&mut recovery, store.summary());
                    node.restore(&store.recovered());
                    Some(Box::new(store) as Box<dyn PersistSink>)
                }
                None => None,
            };
            parts.push((node, sink));
        }
        Ok((parts, recovery))
    }

    /// Deploys over in-process duplex pipes (threads in this process).
    ///
    /// # Errors
    ///
    /// Invalid builder combinations; store-opening failures when
    /// durable.
    pub fn pipes(self) -> Result<PipeDeployment, DeployError> {
        let (mut parts, recovery) = self.parts()?;
        let inner = if parts.len() == 1 {
            let (node, sink) = parts.remove(0);
            PipeInner::Single(LiveSystem::start_with(node, sink))
        } else {
            PipeInner::Sharded(ShardedLiveSystem::start_with_parts(parts))
        };
        Ok(PipeDeployment { inner, recovery })
    }

    /// Deploys over TCP: binds `addr` and serves real sockets.
    ///
    /// # Errors
    ///
    /// Invalid builder combinations; bind or store-opening failures.
    pub fn tcp(self, addr: impl ToSocketAddrs) -> Result<TcpDeployment, DeployError> {
        let (mut parts, recovery) = self.parts()?;
        let inner = if parts.len() == 1 {
            let (node, sink) = parts.remove(0);
            TcpInner::Single(Box::new(TcpServerRuntime::bind_with(addr, node, sink)?))
        } else {
            TcpInner::Sharded(ShardedTcpServerRuntime::bind_with_parts(addr, parts)?)
        };
        Ok(TcpDeployment { inner, recovery })
    }
}

#[derive(Debug)]
enum PipeInner {
    Single(LiveSystem),
    Sharded(ShardedLiveSystem),
}

/// A running in-process deployment built by [`Deployment::pipes`]: the
/// unified handle over what used to be `LiveSystem` /
/// `ShardedLiveSystem`.
#[derive(Debug)]
pub struct PipeDeployment {
    inner: PipeInner,
    recovery: RecoverySummary,
}

impl PipeDeployment {
    /// What journal replay recovered at build time (all zeros for a
    /// diskless deployment), merged across shards.
    pub fn recovery(&self) -> RecoverySummary {
        self.recovery
    }

    /// Connects a new client: sends the `Hello` immediately.
    pub fn connect_client(&self, config: ClientConfig) -> LiveClient {
        match &self.inner {
            PipeInner::Single(sys) => sys.connect_client(config),
            PipeInner::Sharded(sys) => sys.connect_client(config),
        }
    }

    /// Establishes a fresh transport without building a client — the
    /// redial path for an existing [`LiveClient`] resuming after a
    /// dropped link ([`LiveClient::resume_over`](crate::LiveClient::resume_over)).
    pub fn connect_transport(&self) -> shadow_netsim::pipe::PipeEnd {
        match &self.inner {
            PipeInner::Single(sys) => sys.connect_transport(),
            PipeInner::Sharded(sys) => sys.connect_transport(),
        }
    }

    /// The live server report (merged across shards when sharded).
    /// `None` once the system has begun shutting down.
    pub fn report(&self) -> Option<NodeReport> {
        match &self.inner {
            PipeInner::Single(sys) => sys.report(),
            PipeInner::Sharded(sys) => sys.report(),
        }
    }

    /// Stops accepting clients, drains the server(s), and returns the
    /// final per-shard protocol state (one node when unsharded).
    pub fn shutdown(self) -> Vec<ServerNode> {
        match self.inner {
            PipeInner::Single(sys) => vec![sys.shutdown()],
            PipeInner::Sharded(sys) => sys.shutdown(),
        }
    }
}

#[derive(Debug)]
enum TcpInner {
    Single(Box<TcpServerRuntime>),
    Sharded(ShardedTcpServerRuntime),
}

/// A bound TCP deployment built by [`Deployment::tcp`]: the unified
/// handle over what used to be `TcpServerRuntime` /
/// `ShardedTcpServerRuntime`. Drive it from the owning thread with
/// [`run_forever`](Self::run_forever) (daemon) or
/// [`run_until_idle_for`](Self::run_until_idle_for) (tests).
#[derive(Debug)]
pub struct TcpDeployment {
    inner: TcpInner,
    recovery: RecoverySummary,
}

impl TcpDeployment {
    /// What journal replay recovered at build time (all zeros for a
    /// diskless deployment), merged across shards.
    pub fn recovery(&self) -> RecoverySummary {
        self.recovery
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        match &self.inner {
            TcpInner::Single(rt) => rt.local_addr(),
            TcpInner::Sharded(rt) => rt.local_addr(),
        }
    }

    /// The server report (merged across shards when sharded).
    pub fn report(&self) -> NodeReport {
        match &self.inner {
            TcpInner::Single(rt) => rt.report(),
            TcpInner::Sharded(rt) => rt.report(),
        }
    }

    /// One scheduling round. Returns whether any work was done.
    ///
    /// # Errors
    ///
    /// Listener failures (per-connection errors just drop the session).
    pub fn poll_once(&mut self) -> io::Result<bool> {
        match &mut self.inner {
            TcpInner::Single(rt) => rt.poll_once(),
            TcpInner::Sharded(rt) => rt.poll_once(),
        }
    }

    /// Serves forever (the daemon entry point).
    ///
    /// # Errors
    ///
    /// Listener failures.
    pub fn run_forever(self) -> io::Result<()> {
        match self.inner {
            TcpInner::Single(rt) => rt.run_forever(),
            TcpInner::Sharded(rt) => rt.run_forever(),
        }
    }

    /// Serves until no work has arrived for `idle` and everything has
    /// drained, then returns the final per-shard protocol state (one
    /// node when unsharded).
    ///
    /// # Errors
    ///
    /// Listener failures.
    pub fn run_until_idle_for(self, idle: std::time::Duration) -> io::Result<Vec<ServerNode>> {
        match self.inner {
            TcpInner::Single(rt) => rt.run_until_idle_for(idle).map(|n| vec![n]),
            TcpInner::Sharded(rt) => rt.run_until_idle_for(idle),
        }
    }
}

fn merge_summary(into: &mut RecoverySummary, from: RecoverySummary) {
    into.domains += from.domains;
    into.snapshot_records += from.snapshot_records;
    into.journal_records += from.journal_records;
    into.stale_skipped += from.stale_skipped;
    into.torn_tails += from.torn_tails;
    into.corrupt_segments += from.corrupt_segments;
    into.dropped_records += from.dropped_records;
}
