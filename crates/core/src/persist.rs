//! Persistence of the client's shadow environment across process runs.
//!
//! §6.3.1: "the shadow environment is a database that contains … the
//! information needed for managing the different versions of a file".
//! A long-lived client keeps its [`VersionStore`](shadow_version::VersionStore)
//! in memory; command-line tools (one process per submission) persist the
//! retained version chains to a state directory so a *later* invocation
//! can still answer the server's `UpdateRequest (have: vN)` with a delta.
//!
//! Layout (plain files, no formats to rot):
//!
//! ```text
//! <state>/<file-id-hex>/name          canonical name (one line)
//! <state>/<file-id-hex>/<version>.v   retained content of that version
//! <state>/<file-id-hex>/<version>.sum FNV digest of that content (hex)
//! ```
//!
//! The `.sum` sidecar lets a later load detect a truncated or bit-rotted
//! `.v` file instead of silently restoring garbage into the version
//! chain. State written before the sidecars existed loads unverified.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use shadow_client::{ClientNode, FileRef};
use shadow_proto::{ContentDigest, FileId, VersionNumber};

/// What [`load_state`] found: how much state came back, and how much
/// had to be left behind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSummary {
    /// Version-chain entries restored into the node.
    pub restored: usize,
    /// Entries skipped: unparsable directory or version names, digest
    /// mismatches (truncated or corrupt `.v` files), and versions the
    /// node rejected as out of order.
    pub skipped: usize,
}

impl LoadSummary {
    /// True when anything was left behind.
    pub fn degraded(&self) -> bool {
        self.skipped > 0
    }
}

/// Loads every persisted version chain in `dir` into the client node.
/// A missing directory is an empty state, not an error.
///
/// Corrupt entries (bad names, digest mismatches, out-of-order
/// versions) are skipped, counted in the returned summary, and surfaced
/// in the node's report as the `client` section's `restore_skipped`
/// counter.
///
/// # Errors
///
/// I/O failures reading existing state.
pub fn load_state(dir: &Path, node: &mut ClientNode) -> io::Result<LoadSummary> {
    let mut summary = LoadSummary::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(summary),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let Some(id) = entry
            .file_name()
            .to_str()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
        else {
            summary.skipped += 1;
            continue;
        };
        let file_dir = entry.path();
        let name = fs::read_to_string(file_dir.join("name"))
            .unwrap_or_default()
            .trim()
            .to_string();
        let fref = FileRef::new(FileId::new(id), name);
        let mut versions: Vec<(u64, PathBuf)> = Vec::new();
        for v in fs::read_dir(&file_dir)? {
            let v = v?;
            let path = v.path();
            if path.extension().is_some_and(|e| e == "v") {
                match path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    Some(num) => versions.push((num, path)),
                    None => summary.skipped += 1,
                }
            }
        }
        versions.sort();
        for (num, path) in versions {
            let content = fs::read(&path)?;
            // A `.sum` sidecar pins the expected digest; a mismatch
            // means the `.v` was truncated or corrupted after writing.
            let expected = fs::read_to_string(path.with_extension("sum"))
                .ok()
                .and_then(|s| u64::from_str_radix(s.trim(), 16).ok());
            if let Some(sum) = expected {
                if ContentDigest::of(&content).as_u64() != sum {
                    summary.skipped += 1;
                    continue;
                }
            }
            if node
                .restore_version(&fref, VersionNumber::new(num), content)
                .is_ok()
            {
                summary.restored += 1;
            } else {
                summary.skipped += 1;
            }
        }
    }
    if summary.skipped > 0 {
        node.note_restore_skipped(summary.skipped as u64);
    }
    Ok(summary)
}

/// Persists every retained version chain of the client node into `dir`,
/// replacing previous state for those files.
///
/// # Errors
///
/// I/O failures writing the state.
pub fn save_state(dir: &Path, node: &ClientNode) -> io::Result<usize> {
    let mut saved = 0;
    for fref in node.tracked_files() {
        let file_dir = dir.join(format!("{:016x}", fref.id.as_u64()));
        // Rewrite the chain from scratch so pruned versions disappear.
        if file_dir.exists() {
            fs::remove_dir_all(&file_dir)?;
        }
        fs::create_dir_all(&file_dir)?;
        fs::write(file_dir.join("name"), format!("{}\n", fref.name))?;
        for (version, content) in node.retained_versions(fref.id) {
            fs::write(
                file_dir.join(format!("{}.sum", version.as_u64())),
                format!("{:016x}\n", ContentDigest::of(&content).as_u64()),
            )?;
            fs::write(
                file_dir.join(format!("{}.v", version.as_u64())),
                content,
            )?;
            saved += 1;
        }
    }
    Ok(saved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_client::ClientConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shadow-persist-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_restores_chains_and_names() {
        let dir = temp_dir("round");
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        let f = FileRef::new(FileId::new(42), "ws:/data");
        node.edit_finished(&f, b"v1 content\n".to_vec());
        node.edit_finished(&f, b"v2 content\n".to_vec());
        let saved = save_state(&dir, &node).unwrap();
        assert_eq!(saved, 2);

        let mut fresh = ClientNode::new(ClientConfig::new("ws", 1));
        let summary = load_state(&dir, &mut fresh).unwrap();
        assert_eq!(summary, LoadSummary { restored: 2, skipped: 0 });
        assert!(!summary.degraded());
        assert_eq!(fresh.file_size(f.id), Some(11));
        let files = fresh.tracked_files();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].name, "ws:/data");
        // New edits continue the chain past the restored latest.
        let (v, _) = fresh.edit_finished(&f, b"v3 content!\n".to_vec());
        assert_eq!(v, VersionNumber::new(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty_state() {
        let dir = temp_dir("missing");
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        assert_eq!(load_state(&dir, &mut node).unwrap(), LoadSummary::default());
    }

    #[test]
    fn save_prunes_dropped_versions() {
        let dir = temp_dir("prune");
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        let f = FileRef::new(FileId::new(7), "ws:/f");
        for i in 0..10 {
            node.edit_finished(&f, format!("content {i}\n").into_bytes());
        }
        save_state(&dir, &node).unwrap();
        let mut fresh = ClientNode::new(ClientConfig::new("ws", 1));
        let summary = load_state(&dir, &mut fresh).unwrap();
        // Default retention: latest + 4 older.
        assert_eq!(summary.restored, 5);
        assert_eq!(summary.skipped, 0);
        assert_eq!(fresh.file_size(f.id), Some(10));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_skipped_and_counted() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(dir.join("not-hex")).unwrap();
        fs::create_dir_all(dir.join("00000000000000ff")).unwrap();
        fs::write(dir.join("00000000000000ff/name"), "ws:/x\n").unwrap();
        fs::write(dir.join("00000000000000ff/junk.v"), "ignored").unwrap();
        fs::write(dir.join("00000000000000ff/2.v"), "good\n").unwrap();
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        let summary = load_state(&dir, &mut node).unwrap();
        assert_eq!(summary, LoadSummary { restored: 1, skipped: 2 });
        assert!(summary.degraded());
        assert_eq!(node.file_size(FileId::new(0xff)), Some(5));
        // The degradation is visible in the node's own metrics (and so
        // in any report built over them), not just the return value.
        assert_eq!(node.metrics().restore_skipped, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_version_file_is_detected_and_skipped() {
        let dir = temp_dir("truncated");
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        let f = FileRef::new(FileId::new(9), "ws:/data");
        node.edit_finished(&f, b"first version\n".to_vec());
        node.edit_finished(&f, b"second version, longer\n".to_vec());
        save_state(&dir, &node).unwrap();

        // Truncate the latest version's content; its `.sum` sidecar no
        // longer matches, so the load must not trust the bytes.
        let v2 = dir.join("0000000000000009/2.v");
        let bytes = fs::read(&v2).unwrap();
        fs::write(&v2, &bytes[..bytes.len() / 2]).unwrap();

        let mut fresh = ClientNode::new(ClientConfig::new("ws", 1));
        let summary = load_state(&dir, &mut fresh).unwrap();
        assert_eq!(summary, LoadSummary { restored: 1, skipped: 1 });
        // The intact v1 survived; the truncated v2 did not sneak in.
        assert_eq!(fresh.file_size(f.id), Some(14));
        assert_eq!(fresh.metrics().restore_skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
