//! Persistence of the client's shadow environment across process runs.
//!
//! §6.3.1: "the shadow environment is a database that contains … the
//! information needed for managing the different versions of a file".
//! A long-lived client keeps its [`VersionStore`](shadow_version::VersionStore)
//! in memory; command-line tools (one process per submission) persist the
//! retained version chains to a state directory so a *later* invocation
//! can still answer the server's `UpdateRequest (have: vN)` with a delta.
//!
//! Layout (plain files, no formats to rot):
//!
//! ```text
//! <state>/<file-id-hex>/name        canonical name (one line)
//! <state>/<file-id-hex>/<version>.v retained content of that version
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use shadow_client::{ClientNode, FileRef};
use shadow_proto::{FileId, VersionNumber};

/// Loads every persisted version chain in `dir` into the client node.
/// A missing directory is an empty state, not an error.
///
/// # Errors
///
/// I/O failures reading existing state (corrupt entries are skipped).
pub fn load_state(dir: &Path, node: &mut ClientNode) -> io::Result<usize> {
    let mut restored = 0;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let Some(id) = entry
            .file_name()
            .to_str()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
        else {
            continue;
        };
        let file_dir = entry.path();
        let name = fs::read_to_string(file_dir.join("name"))
            .unwrap_or_default()
            .trim()
            .to_string();
        let fref = FileRef::new(FileId::new(id), name);
        let mut versions: Vec<(u64, PathBuf)> = Vec::new();
        for v in fs::read_dir(&file_dir)? {
            let v = v?;
            let path = v.path();
            if path.extension().is_some_and(|e| e == "v") {
                if let Some(num) = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    versions.push((num, path));
                }
            }
        }
        versions.sort();
        for (num, path) in versions {
            let content = fs::read(&path)?;
            if node
                .restore_version(&fref, VersionNumber::new(num), content)
                .is_ok()
            {
                restored += 1;
            }
        }
    }
    Ok(restored)
}

/// Persists every retained version chain of the client node into `dir`,
/// replacing previous state for those files.
///
/// # Errors
///
/// I/O failures writing the state.
pub fn save_state(dir: &Path, node: &ClientNode) -> io::Result<usize> {
    let mut saved = 0;
    for fref in node.tracked_files() {
        let file_dir = dir.join(format!("{:016x}", fref.id.as_u64()));
        // Rewrite the chain from scratch so pruned versions disappear.
        if file_dir.exists() {
            fs::remove_dir_all(&file_dir)?;
        }
        fs::create_dir_all(&file_dir)?;
        fs::write(file_dir.join("name"), format!("{}\n", fref.name))?;
        for (version, content) in node.retained_versions(fref.id) {
            fs::write(
                file_dir.join(format!("{}.v", version.as_u64())),
                content,
            )?;
            saved += 1;
        }
    }
    Ok(saved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_client::ClientConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shadow-persist-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_restores_chains_and_names() {
        let dir = temp_dir("round");
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        let f = FileRef::new(FileId::new(42), "ws:/data");
        node.edit_finished(&f, b"v1 content\n".to_vec());
        node.edit_finished(&f, b"v2 content\n".to_vec());
        let saved = save_state(&dir, &node).unwrap();
        assert_eq!(saved, 2);

        let mut fresh = ClientNode::new(ClientConfig::new("ws", 1));
        let restored = load_state(&dir, &mut fresh).unwrap();
        assert_eq!(restored, 2);
        assert_eq!(fresh.file_size(f.id), Some(11));
        let files = fresh.tracked_files();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].name, "ws:/data");
        // New edits continue the chain past the restored latest.
        let (v, _) = fresh.edit_finished(&f, b"v3 content!\n".to_vec());
        assert_eq!(v, VersionNumber::new(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty_state() {
        let dir = temp_dir("missing");
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        assert_eq!(load_state(&dir, &mut node).unwrap(), 0);
    }

    #[test]
    fn save_prunes_dropped_versions() {
        let dir = temp_dir("prune");
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        let f = FileRef::new(FileId::new(7), "ws:/f");
        for i in 0..10 {
            node.edit_finished(&f, format!("content {i}\n").into_bytes());
        }
        save_state(&dir, &node).unwrap();
        let mut fresh = ClientNode::new(ClientConfig::new("ws", 1));
        let restored = load_state(&dir, &mut fresh).unwrap();
        // Default retention: latest + 4 older.
        assert_eq!(restored, 5);
        assert_eq!(fresh.file_size(f.id), Some(10));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_skipped() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(dir.join("not-hex")).unwrap();
        fs::create_dir_all(dir.join("00000000000000ff")).unwrap();
        fs::write(dir.join("00000000000000ff/name"), "ws:/x\n").unwrap();
        fs::write(dir.join("00000000000000ff/junk.v"), "ignored").unwrap();
        fs::write(dir.join("00000000000000ff/2.v"), "good\n").unwrap();
        let mut node = ClientNode::new(ClientConfig::new("ws", 1));
        assert_eq!(load_state(&dir, &mut node).unwrap(), 1);
        assert_eq!(node.file_size(FileId::new(0xff)), Some(5));
        let _ = fs::remove_dir_all(&dir);
    }
}
