//! # Shadow editing: a distributed service for supercomputer access
//!
//! A Rust reproduction of Comer, Griffioen & Yavatkar's *Shadow Editing*
//! (Purdue CSD-TR-722, ICDCS 1988): a remote-job-entry service that caches
//! submitted files at the supercomputer site and ships only *differences*
//! between successive editing sessions — turning the scientist's
//! edit-submit-fetch cycle over a 9600-baud line from minutes of file
//! transfer into seconds of delta transfer.
//!
//! This facade crate wires the substrates together:
//!
//! * [`Simulation`] — a deterministic driver running any number of
//!   [`ClientNode`]s and [`ServerNode`]s over the discrete-event network
//!   simulator, with a calibrated [`CpuModel`]; regenerates every figure
//!   and table of the paper's evaluation (see [`experiment`]).
//! * [`Deployment`] — the single builder for every wall-clock shape:
//!   `Deployment::new(config).shards(n).durable(path)` then
//!   [`.pipes()`](Deployment::pipes) (threads + in-process duplex pipes)
//!   or [`.tcp(addr)`](Deployment::tcp) (real sockets, the paper's
//!   prototype shape). `shards(n)` puts N domain-affine worker shards
//!   behind a routing acceptor; `durable(path)` makes the shadow store
//!   survive restarts via per-domain write-ahead journals
//!   (`shadow-store`), replayed before serving.
//! * [`connect_tcp`] — a TCP client for a bound deployment (or
//!   `shadowd`).
//! * Re-exports of the full public API of the component crates.
//!
//! # Module map
//!
//! Protocol *dispatch* is not implemented here. All three deployments are
//! thin adapters over the `shadow-runtime` crate, which owns the single
//! `ClientAction`/`ServerAction` interpreter ([`ClientDriver`] /
//! [`ServerDriver`]), the [`TimerQueue`], the [`FrameTransport`]
//! abstraction, and the generic [`ServerRuntime`] poll loop:
//!
//! | module | role | runtime pieces used |
//! |---|---|---|
//! | `sim`  | discrete-event scheduler + CPU/network cost model | `ClientDriver`, `ServerDriver` (timers become sim events) |
//! | `live` | threads + in-process pipes | `ClientDriver`, `ServerRuntime` over a channel acceptor |
//! | `tcpd` | daemon + sockets | `ClientDriver`, `ServerRuntime` over a TCP acceptor |
//! | `deploy` | the [`Deployment`] builder over `live`/`tcpd` | `shadow-store`'s `DurableStore` as the runtime's `PersistSink` |
//!
//! The sharded variants reuse the same two acceptors, wrapped in
//! `shadow-runtime`'s `ShardedServerRuntime` (one `ServerRuntime` per
//! worker shard, sessions routed by `hash(domain) % N`).
//!
//! What remains in each adapter is only what genuinely differs: how
//! frames move (simulated links, crossbeam pipes, TCP) and how time
//! passes (virtual vs. wall clock).
//!
//! # Quickstart
//!
//! ```
//! use shadow::{Simulation, ServerConfig, ClientConfig, SubmitOptions};
//! use shadow_netsim::profiles;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Simulation::new(1);
//! let server = sim.add_server("superc", ServerConfig::new("superc"));
//! let client = sim.add_client("ws1", ClientConfig::new("ws1", 1));
//! let conn = sim.connect(client, server, profiles::lan())?;
//!
//! sim.edit_file(client, "/sim.job", |_| b"echo hello supercomputer\n".to_vec())?;
//! sim.submit(client, conn, "/sim.job", &[], SubmitOptions::default())?;
//! sim.run_until_quiet();
//!
//! let outputs = sim.finished_jobs(client);
//! assert_eq!(outputs[0].output, b"hello supercomputer\n");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod deploy;
pub mod experiment;
mod live;
pub mod persist;
mod sim;
mod tcpd;

pub use cpu::CpuModel;
pub use deploy::{DeployError, Deployment, PipeDeployment, TcpDeployment};
pub use live::{LiveClient, LiveError, LiveSystem, ShardedLiveSystem};
pub use tcpd::{connect_tcp, ShardedTcpServerRuntime, TcpClient, TcpServerRuntime};
pub use sim::{ClientId, FinishedJob, ServerId, SimError, Simulation};

pub use shadow_store::{DurableStore, RecoverySummary, DEFAULT_COMPACT_EVERY};

pub use shadow_runtime::{
    shard_for, Accepted, ClientDriver, ClientOutbound, Clock, CompletedJob, Connector,
    DriverEvent, DriverStats, EventHook, FeedError, FrameInfo, FrameTransport, PersistSink,
    ServerDriver, ServerIo, ServerOutbound, ServerRuntime, SessionAcceptor, ShardedServerRuntime,
    Supervisor, SupervisorConfig, SupervisorEvent, SupervisorStats, TimerQueue, TransportClosed,
    VirtualClock, WallClock,
};

pub use shadow_cache::{CacheStats, EvictionPolicy, ShadowStore};
pub use shadow_client::{
    ClientAction, ClientConfig, ClientConfigBuilder, ClientError, ClientEvent, ClientMetrics,
    ClientNode, ConfigError as ClientConfigError, ConnId, DeltaPolicy, EditOutcome, Editor,
    EditorCommand, FileRef, FnEditor, JobTracker, Notification, ScriptedEditor, ShadowEditor,
    ShadowEnv, TrackedJob, TransferMode,
};
pub use shadow_compress::{Codec, Lzss, Rle};
pub use shadow_diff::{
    apply_chunk_delta, apply_delta, block_diff, choose_chunk_codec, chunk_delta_into, classify,
    diff, diff_docs, diff_legacy, ApplyError, BlockOp, BlockScript, ChunkDeltaError, ChunkParams,
    ChunkStats, DeltaError, DeltaScript, DiffAlgorithm, DiffScratch, DiffStats, DocBuf, DocShape,
    Document, EdCommand, EdScript, Line,
};
pub use shadow_netsim::{
    pipe, profiles, tcp, ChaosProxy, FaultPlan, FaultStats, FaultTransport, LinkProfile,
    LinkStats, SimNet, SimTime,
};
pub use shadow_proto::{
    ClientMessage, ContentDigest, DeltaCodec, DomainId, FileId, FileKey, Frame, HostName, JobId,
    JobStats, JobStatus, JobStatusEntry, OutputPayload, PersistRecord, RequestId, ServerMessage,
    SubmitOptions, TransferEncoding, UpdatePayload, VersionNumber, WireDecode, WireEncode,
    WireError, PROTOCOL_VERSION,
};
pub use shadow_obs::{
    FlightEntry, FlightRecorder, Histogram, Json, MetricValue, MetricsRegistry, NodeReport,
    Section, Snapshot, TraceSink,
};
pub use shadow_server::{
    exec, ConfigError as ServerConfigError, ExecProfile, FlowControl, ServerAction, ServerConfig,
    ServerConfigBuilder, ServerEvent, ServerNode, SessionId,
};
pub use shadow_version::{VersionStore, VersionStoreStats};
pub use shadow_vfs::{CanonicalName, VPath, Vfs, VfsError};
pub use shadow_workload::{
    delta_cost, edit_sequence, generate_file, EditModel, FileSpec, Locality, PAPER_PERCENTS_FIG1,
    PAPER_PERCENTS_FIG3, PAPER_SIZES_FIG1, PAPER_SIZES_FIG3,
};

/// The types nearly every consumer of the service touches, importable
/// in one line:
///
/// ```
/// use shadow::prelude::*;
/// ```
///
/// Covers file identity ([`FileRef`]), the validated config builders,
/// the deployment front ends ([`Simulation`], the [`Deployment`]
/// builder, [`TcpClient`]), the drivers beneath them, and the unified
/// [`NodeReport`] stats surface.
pub mod prelude {
    pub use crate::deploy::{DeployError, Deployment, PipeDeployment, TcpDeployment};
    pub use crate::live::LiveClient;
    pub use crate::sim::{ClientId, FinishedJob, ServerId, Simulation};
    pub use crate::tcpd::{connect_tcp, TcpClient};
    pub use shadow_client::{
        ClientConfig, ClientConfigBuilder, DeltaPolicy, FileRef, ShadowEnv, TransferMode,
    };
    pub use shadow_netsim::{profiles, LinkProfile, SimTime};
    pub use shadow_obs::{NodeReport, Section, Snapshot};
    pub use shadow_proto::{
        ContentDigest, DomainId, FileId, HostName, JobId, SubmitOptions, TransferEncoding,
        VersionNumber,
    };
    pub use shadow_runtime::{ClientDriver, ServerDriver, ServerRuntime};
    pub use shadow_cache::EvictionPolicy;
    pub use shadow_server::{ExecProfile, FlowControl, ServerConfig, ServerConfigBuilder};
}
