//! The paper's evaluation, reproduced (§8.1, Figures 1–3).
//!
//! "In each experiment, we submitted a job with a data file. After
//! obtaining the results, we edited the data file and resubmitted the same
//! job. We modified the data file by a different amount every time … We
//! measured the total amount of time spent in each case."
//!
//! [`run_cycle`] performs exactly that edit-submit-fetch cycle inside the
//! deterministic simulation and reports the first-submission time (the
//! conventional **F-time** — the whole file travels) and the resubmission
//! time (**S-time** under shadow processing, or F-time again under the
//! conventional baseline). [`figure_rows`] sweeps file sizes and
//! modification percentages for Figures 1–2; [`render_speedup_table`]
//! formats Figure 3's F-time/S-time speedup factors.

use shadow_client::{ClientConfig, TransferMode};
use shadow_netsim::LinkProfile;
use shadow_proto::SubmitOptions;
use shadow_server::ServerConfig;
use shadow_workload::{generate_file, EditModel, FileSpec};

use crate::{CpuModel, Simulation};

/// Fixed parameters of one edit-submit-fetch experiment.
#[derive(Debug, Clone)]
pub struct CycleSetup {
    /// The long-haul link model.
    pub link: LinkProfile,
    /// The machine cost model.
    pub cpu: CpuModel,
    /// Data-file size in bytes.
    pub file_size: usize,
    /// Shadow processing or the conventional baseline.
    pub mode: TransferMode,
    /// Workload seed.
    pub seed: u64,
}

impl CycleSetup {
    /// A setup with the calibrated CPU model and shadow mode.
    pub fn new(link: LinkProfile, file_size: usize) -> Self {
        CycleSetup {
            link,
            cpu: CpuModel::default(),
            file_size,
            mode: TransferMode::Shadow,
            seed: 0x5EED,
        }
    }

    /// Switches to the conventional (full-transfer) baseline.
    #[must_use]
    pub fn conventional(mut self) -> Self {
        self.mode = TransferMode::Conventional;
        self
    }
}

/// Measured times for one cycle, in seconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleResult {
    /// First submission (nothing cached): the full file travels.
    pub first_secs: f64,
    /// Resubmission after editing `fraction` of the file.
    pub resubmit_secs: f64,
    /// Client→server payload bytes during the first submission.
    pub first_bytes: u64,
    /// Client→server payload bytes during the resubmission.
    pub resubmit_bytes: u64,
    /// Client frames sent across the whole cycle (both submissions).
    pub frames: u64,
    /// Full-content updates the client sent across the cycle.
    pub fulls_sent: u64,
    /// Delta updates the client sent across the cycle.
    pub deltas_sent: u64,
    /// Server shadow-cache hit rate at the end of the cycle.
    pub cache_hit_rate: f64,
    /// Sim-clock time when the cycle finished, milliseconds.
    pub makespan_ms: u64,
}

/// Runs one edit-submit-fetch cycle: initial submission, then an editing
/// session touching `fraction` of the data file's bytes, then
/// resubmission of the same job.
pub fn run_cycle(setup: &CycleSetup, fraction: f64) -> CycleResult {
    let mut sim = Simulation::new(1).with_cpu(setup.cpu);
    let server = sim.add_server("superc", ServerConfig::new("superc"));
    let client_config = match setup.mode {
        TransferMode::Shadow => ClientConfig::new("ws", 1),
        TransferMode::Conventional => ClientConfig::new("ws", 1).conventional(),
    };
    let client = sim.add_client("ws", client_config);
    let conn = sim
        .connect(client, server, setup.link.clone())
        .expect("fresh pair connects");

    let content = generate_file(&FileSpec::new(setup.file_size, setup.seed));
    sim.edit_file(client, "/data", {
        let c = content.clone();
        move |_| c.clone()
    })
    .expect("write data file");
    let data_name = sim.canonical_name(client, "/data").expect("resolves");
    sim.edit_file(client, "/run.job", move |_| {
        format!("wc {data_name}\n").into_bytes()
    })
    .expect("write job file");

    // First submission: the whole file must travel.
    let start = sim.now();
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .expect("submit");
    sim.run_until_quiet();
    let first_done = sim
        .finished_jobs(client)
        .last()
        .expect("first job completed")
        .at;
    let first_secs = (first_done - start).as_secs_f64();
    let first_bytes = sim.link_stats(client, server).0.payload_bytes;

    // Edit `fraction` of the file, resubmit the same job, measure the
    // cycle from the end of the editing session to output delivery.
    let model = EditModel::fraction(fraction, setup.seed.wrapping_add(1));
    let restart = sim.now();
    sim.edit_file(client, "/data", move |c| model.apply(&c))
        .expect("edit data file");
    sim.submit(client, conn, "/run.job", &["/data"], SubmitOptions::default())
        .expect("resubmit");
    sim.run_until_quiet();
    let second_done = sim
        .finished_jobs(client)
        .last()
        .expect("second job completed")
        .at;
    let resubmit_secs = (second_done - restart).as_secs_f64();
    let resubmit_bytes = sim.link_stats(client, server).0.payload_bytes - first_bytes;

    let client_report = sim.client_report(client);
    let server_report = sim.server_report(server);
    CycleResult {
        first_secs,
        resubmit_secs,
        first_bytes,
        resubmit_bytes,
        frames: client_report.counter("driver", "frames_sent"),
        fulls_sent: client_report.counter("client", "fulls_sent"),
        deltas_sent: client_report.counter("client", "deltas_sent"),
        cache_hit_rate: server_report.value("cache", "hit_rate"),
        makespan_ms: sim.now().as_millis(),
    }
}

/// One point of Figure 1/2: a file size and modification percentage with
/// the measured S-time and the baseline F-time, plus the wire-level
/// accounting that backs the claim (bytes, frames, cache behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigurePoint {
    /// File size in bytes.
    pub size: usize,
    /// Fraction of the file modified, `0.0..=1.0`.
    pub fraction: f64,
    /// Shadow-processing resubmission time, seconds.
    pub s_time: f64,
    /// Conventional resubmission time, seconds (the horizontal line).
    pub f_time: f64,
    /// Payload bytes of the conventional resubmission (full transfer).
    pub full_bytes: u64,
    /// Payload bytes of the shadow resubmission (delta transfer).
    pub delta_bytes: u64,
    /// Server shadow-cache hit rate at the end of the shadow cycle.
    pub cache_hit_rate: f64,
    /// Client frames sent during the shadow cycle.
    pub frames: u64,
    /// Sim-clock makespan of the shadow cycle, milliseconds.
    pub makespan_ms: u64,
}

impl FigurePoint {
    /// F-time / S-time — the paper's speedup factor (Figure 3 footnote).
    pub fn speedup(&self) -> f64 {
        self.f_time / self.s_time
    }

    /// The point as one machine-readable `BENCH_*.json` row.
    pub fn to_json(&self) -> shadow_obs::Json {
        shadow_obs::Json::object()
            .with("size", self.size)
            .with("fraction", self.fraction)
            .with("s_time_secs", self.s_time)
            .with("f_time_secs", self.f_time)
            .with("speedup", self.speedup())
            .with("full_bytes", self.full_bytes)
            .with("delta_bytes", self.delta_bytes)
            .with("cache_hit_rate", self.cache_hit_rate)
            .with("frames", self.frames)
            .with("makespan_ms", self.makespan_ms)
    }
}

/// Sweeps sizes × fractions over a link, producing every point of a
/// transfer-time figure. For each size the conventional baseline runs
/// once (its time does not depend on the edit fraction).
pub fn figure_rows(
    link: &LinkProfile,
    sizes: &[usize],
    fractions: &[f64],
    cpu: CpuModel,
) -> Vec<FigurePoint> {
    let mut points = Vec::with_capacity(sizes.len() * fractions.len());
    for &size in sizes {
        let mut conventional = CycleSetup::new(link.clone(), size).conventional();
        conventional.cpu = cpu;
        let baseline = run_cycle(&conventional, 0.05);
        let f_time = baseline.resubmit_secs;
        for &fraction in fractions {
            let mut shadow = CycleSetup::new(link.clone(), size);
            shadow.cpu = cpu;
            let r = run_cycle(&shadow, fraction);
            points.push(FigurePoint {
                size,
                fraction,
                s_time: r.resubmit_secs,
                f_time,
                full_bytes: baseline.resubmit_bytes,
                delta_bytes: r.resubmit_bytes,
                cache_hit_rate: r.cache_hit_rate,
                frames: r.frames,
                makespan_ms: r.makespan_ms,
            });
        }
    }
    points
}

/// Renders figure points as an aligned text table (one row per point),
/// the form the bench harnesses print.
pub fn render_figure(title: &str, points: &[FigurePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!(
        "{:>8} {:>6} {:>12} {:>12} {:>9}\n",
        "size", "%mod", "S-time(s)", "F-time(s)", "speedup"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8} {:>6.0} {:>12.1} {:>12.1} {:>9.1}\n",
            p.size,
            p.fraction * 100.0,
            p.s_time,
            p.f_time,
            p.speedup()
        ));
    }
    out
}

/// Renders the Figure 3 speedup table: rows = file sizes, columns =
/// modification percentages.
pub fn render_speedup_table(points: &[FigurePoint], fractions: &[f64]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>10} |", "File Size"));
    for f in fractions {
        out.push_str(&format!(" {:>6.0}% mod", f * 100.0));
    }
    out.push('\n');
    let mut sizes: Vec<usize> = points.iter().map(|p| p.size).collect();
    sizes.dedup();
    for size in sizes {
        out.push_str(&format!("{:>9}k |", size / 1000));
        for f in fractions {
            let p = points
                .iter()
                .find(|p| p.size == size && (p.fraction - f).abs() < 1e-9)
                .expect("point swept");
            out.push_str(&format!(" {:>10.1}", p.speedup()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_netsim::profiles;
    use shadow_workload::{PAPER_PERCENTS_FIG3, PAPER_SIZES_FIG3};

    #[test]
    fn first_submission_times_match_paper_magnitude() {
        // Figure 1: a 100 KB file over Cypress takes on the order of two
        // minutes to ship whole.
        let setup = CycleSetup::new(profiles::cypress(), 100_000);
        let r = run_cycle(&setup, 0.05);
        assert!(
            (90.0..200.0).contains(&r.first_secs),
            "first = {}",
            r.first_secs
        );
        // The resubmission after a 5% edit is far cheaper.
        assert!(r.resubmit_secs < r.first_secs / 3.0, "{r:?}");
        assert!(r.resubmit_bytes < r.first_bytes / 5);
    }

    #[test]
    fn conventional_baseline_pays_full_price_every_time() {
        let setup = CycleSetup::new(profiles::cypress(), 100_000).conventional();
        let r = run_cycle(&setup, 0.05);
        // Resubmission costs about as much as the first submission.
        assert!(
            (r.resubmit_secs / r.first_secs) > 0.8,
            "conventional resubmit should not be cheap: {r:?}"
        );
    }

    #[test]
    fn speedup_grows_with_file_size_and_shrinks_with_edit_fraction() {
        let cpu = CpuModel::default();
        let points = figure_rows(
            &profiles::arpanet(),
            &[10_000, 100_000],
            &[0.01, 0.20],
            cpu,
        );
        let sp = |size: usize, f: f64| {
            points
                .iter()
                .find(|p| p.size == size && (p.fraction - f).abs() < 1e-9)
                .unwrap()
                .speedup()
        };
        assert!(sp(100_000, 0.01) > sp(10_000, 0.01), "size monotonicity");
        assert!(sp(100_000, 0.01) > sp(100_000, 0.20), "fraction monotonicity");
        assert!(sp(10_000, 0.20) > 1.0, "shadow always wins at 20%");
    }

    #[test]
    fn figure3_speedups_are_in_the_paper_band() {
        // Paper (ARPANET): 1% modified → 13.5–24.9×; 20% → 3.7–4.3×.
        // Accept the same order of magnitude: shape, not exact numbers.
        let points = figure_rows(
            &profiles::arpanet(),
            &[PAPER_SIZES_FIG3[0], PAPER_SIZES_FIG3[3]],
            &[PAPER_PERCENTS_FIG3[0], PAPER_PERCENTS_FIG3[3]],
            CpuModel::default(),
        );
        let sp = |size: usize, f: f64| {
            points
                .iter()
                .find(|p| p.size == size && (p.fraction - f).abs() < 1e-9)
                .unwrap()
                .speedup()
        };
        let s_small_1 = sp(10_000, 0.01);
        let s_large_1 = sp(500_000, 0.01);
        let s_small_20 = sp(10_000, 0.20);
        let s_large_20 = sp(500_000, 0.20);
        assert!((5.0..40.0).contains(&s_small_1), "10k@1% = {s_small_1}");
        assert!((12.0..45.0).contains(&s_large_1), "500k@1% = {s_large_1}");
        assert!((2.0..8.0).contains(&s_small_20), "10k@20% = {s_small_20}");
        assert!((2.0..8.0).contains(&s_large_20), "500k@20% = {s_large_20}");
    }

    #[test]
    fn renderers_produce_rows() {
        let points = vec![FigurePoint {
            size: 100_000,
            fraction: 0.05,
            s_time: 30.0,
            f_time: 120.0,
            full_bytes: 100_000,
            delta_bytes: 5_000,
            cache_hit_rate: 0.5,
            frames: 12,
            makespan_ms: 150_000,
        }];
        let fig = render_figure("Figure 1", &points);
        assert!(fig.contains("Figure 1"));
        assert!(fig.contains("100000"));
        let table = render_speedup_table(&points, &[0.05]);
        assert!(table.contains("100k"));
        assert!(table.contains("4.0"));
    }
}
