//! The TCP deployment: a blocking server runtime and a TCP client,
//! mirroring the paper's prototype shape — "clients and servers are
//! implemented as UNIX processes that use a reliable transport protocol
//! (TCP/IP) … a server process listens at a well-known port for
//! connections from clients."
//!
//! Like the in-process [`LiveSystem`](crate::LiveSystem), this is a thin
//! adapter over the shared [`ServerRuntime`]: only the
//! [`SessionAcceptor`] (a non-blocking listener) is TCP-specific.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use shadow_client::ClientConfig;
use shadow_netsim::tcp::{TcpFramed, TcpServer};
use shadow_runtime::{
    Accepted, PersistSink, ServerRuntime, SessionAcceptor, ShardedServerRuntime, WallClock,
};
use shadow_server::{ServerConfig, ServerNode};

use crate::live::LiveClient;

/// A [`LiveClient`](crate::LiveClient) over a TCP connection.
pub type TcpClient = LiveClient<TcpFramed>;

/// Connects a TCP client to a listening [`TcpServerRuntime`] (or
/// `shadowd`) and sends the `Hello`.
///
/// # Errors
///
/// Socket or handshake failures.
pub fn connect_tcp(config: ClientConfig, addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
    let transport = TcpFramed::connect(addr)?;
    LiveClient::over_transport(config, transport).map_err(|e| {
        // Preserve the real failure kind: an orderly close during the
        // handshake is not a reset, and a reset is not a decode error.
        let kind = match e.closed() {
            Some(closed) => closed
                .error_kind()
                .unwrap_or(io::ErrorKind::ConnectionAborted),
            None => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    })
}

/// Accepts framed TCP connections from the well-known port. The listener
/// never closes by itself, so [`Accepted::Closed`] is never produced.
struct TcpAcceptor {
    listener: TcpServer,
}

impl SessionAcceptor for TcpAcceptor {
    type Transport = TcpFramed;
    type Error = io::Error;

    fn poll_accept(&mut self) -> Result<Accepted<TcpFramed>, io::Error> {
        Ok(match self.listener.try_accept()? {
            Some(conn) => Accepted::Session(conn),
            None => Accepted::None,
        })
    }
}

/// The blocking server loop: accepts connections on a well-known port and
/// drives a [`ServerNode`].
///
/// # Example
///
/// ```no_run
/// use shadow::{Deployment, ServerConfig};
///
/// # fn main() -> Result<(), shadow::DeployError> {
/// let runtime = Deployment::new(ServerConfig::new("superc")).tcp("0.0.0.0:4411")?;
/// runtime.run_forever()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TcpServerRuntime {
    inner: ServerRuntime<TcpAcceptor, WallClock>,
    addr: SocketAddr,
}

impl TcpServerRuntime {
    /// Binds the well-known port.
    ///
    /// # Errors
    ///
    /// Bind failures.
    #[deprecated(note = "use `Deployment::new(config).tcp(addr)`")]
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        Self::bind_with(addr, ServerNode::new(config), None)
    }

    /// Binds the well-known port around a pre-built node (fresh, or
    /// restored from a durable store) and the sink its storage intents
    /// go to. The [`Deployment`](crate::Deployment) builder is the
    /// public face of this.
    pub(crate) fn bind_with(
        addr: impl ToSocketAddrs,
        node: ServerNode,
        sink: Option<Box<dyn PersistSink>>,
    ) -> io::Result<Self> {
        let listener = TcpServer::bind(addr)?;
        let addr = listener.local_addr()?;
        let mut inner = ServerRuntime::new(node, TcpAcceptor { listener }, WallClock::new());
        if let Some(sink) = sink {
            inner = inner.with_sink(sink);
        }
        Ok(TcpServerRuntime { inner, addr })
    }

    /// The server report: protocol metrics, cache behaviour, poll loop
    /// counters.
    pub fn report(&self) -> shadow_obs::NodeReport {
        self.inner.report()
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.addr)
    }

    /// One scheduling round: accept, read, fire timers, write. Returns
    /// whether any work was done.
    ///
    /// # Errors
    ///
    /// Listener failures (per-connection errors just drop the session).
    pub fn poll_once(&mut self) -> io::Result<bool> {
        self.inner.poll_once()
    }

    /// Serves forever (the daemon entry point).
    ///
    /// # Errors
    ///
    /// Listener failures.
    pub fn run_forever(mut self) -> io::Result<()> {
        loop {
            if !self.poll_once()? {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Serves until no work has arrived for `idle`, then returns the node
    /// for inspection (test entry point).
    ///
    /// # Errors
    ///
    /// Listener failures.
    pub fn run_until_idle_for(mut self, idle: Duration) -> io::Result<ServerNode> {
        let mut last_busy = Instant::now();
        loop {
            if self.poll_once()? {
                last_busy = Instant::now();
            } else {
                // Pending timers (running jobs) and live sessions are not
                // "idle": only a quiet, clientless, timerless server exits.
                if self.inner.idle() && last_busy.elapsed() >= idle {
                    return Ok(self.inner.into_node());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// The sharded TCP daemon (`shadowd --shards N` shape): the same
/// well-known port, but behind it N domain-affine worker shards fed by
/// a routing acceptor that peeks each connection's `Hello`.
///
/// # Example
///
/// ```no_run
/// use shadow::{Deployment, ServerConfig};
///
/// # fn main() -> Result<(), shadow::DeployError> {
/// let runtime = Deployment::new(ServerConfig::new("superc"))
///     .shards(4)
///     .tcp("0.0.0.0:4411")?;
/// runtime.run_forever()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedTcpServerRuntime {
    inner: ShardedServerRuntime<TcpAcceptor>,
    addr: SocketAddr,
}

impl ShardedTcpServerRuntime {
    /// Binds the well-known port and spawns `shards` worker threads.
    ///
    /// # Errors
    ///
    /// Bind failures.
    #[deprecated(note = "use `Deployment::new(config).shards(n).tcp(addr)`")]
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        shards: usize,
    ) -> io::Result<Self> {
        Self::bind_with_parts(
            addr,
            (0..shards.max(1))
                .map(|_| (ServerNode::new(config.clone()), None))
                .collect(),
        )
    }

    /// Binds the well-known port over pre-built shards — each its
    /// (possibly journal-restored) node plus the sink that shard's
    /// storage intents go to. The [`Deployment`](crate::Deployment)
    /// builder is the public face of this.
    pub(crate) fn bind_with_parts(
        addr: impl ToSocketAddrs,
        parts: Vec<(ServerNode, Option<Box<dyn PersistSink>>)>,
    ) -> io::Result<Self> {
        let listener = TcpServer::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(ShardedTcpServerRuntime {
            inner: ShardedServerRuntime::from_parts(
                parts,
                TcpAcceptor { listener },
                WallClock::new(),
            ),
            addr,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.addr)
    }

    /// One routing round: accept new connections, peek pending `Hello`s,
    /// hand routed sessions to their shards. Returns whether any routing
    /// work was done (shard work does not count — shards run on their own
    /// threads).
    ///
    /// # Errors
    ///
    /// Listener failures (per-connection errors just drop the session).
    pub fn poll_once(&mut self) -> io::Result<bool> {
        self.inner.poll_once()
    }

    /// The merged report across all shards plus the router's own
    /// `shards` section (see
    /// [`ShardedServerRuntime::report`](shadow_runtime::ShardedServerRuntime::report)).
    pub fn report(&self) -> shadow_obs::NodeReport {
        self.inner.report()
    }

    /// Serves forever (the daemon entry point).
    ///
    /// # Errors
    ///
    /// Listener failures.
    pub fn run_forever(mut self) -> io::Result<()> {
        loop {
            if !self.poll_once()? {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Serves until the router has been quiet for `idle` **and** every
    /// shard is drained (no live sessions, no pending timers), then shuts
    /// the shards down and returns their final nodes in shard-index order
    /// (test entry point).
    ///
    /// # Errors
    ///
    /// Listener failures.
    pub fn run_until_idle_for(mut self, idle: Duration) -> io::Result<Vec<ServerNode>> {
        let mut last_busy = Instant::now();
        loop {
            if self.poll_once()? {
                last_busy = Instant::now();
            } else {
                if last_busy.elapsed() >= idle
                    && self.inner.pending_count() == 0
                    && self.inner.shards_idle()
                {
                    return Ok(self.inner.shutdown());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use shadow_client::FileRef;
    use shadow_proto::{FileId, SubmitOptions};

    #[test]
    fn tcp_end_to_end_job() {
        let runtime = Deployment::new(ServerConfig::new("sc"))
            .tcp("127.0.0.1:0")
            .unwrap();
        let addr = runtime.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || runtime.run_until_idle_for(Duration::from_millis(400)));

        let mut client = connect_tcp(ClientConfig::new("ws", 1), addr).unwrap();
        client.wait_ready(Duration::from_secs(5)).unwrap();
        let job = FileRef::new(FileId::new(1), "ws:/t.job");
        client.edit_finished(&job, b"echo over tcp\n".to_vec());
        client.submit(&job, &[], SubmitOptions::default()).unwrap();
        let (_, output, _, stats) = client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(output, b"over tcp\n");
        assert_eq!(stats.exit_code, 0);
        drop(client);
        let node = handle.join().unwrap().unwrap().remove(0);
        assert_eq!(node.report().counter("server", "jobs_completed"), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn tcp_delta_resubmission() {
        // Deliberately exercises the deprecated entry point so the thin
        // wrapper keeps working until it is removed.
        let runtime =
            TcpServerRuntime::bind("127.0.0.1:0", ServerConfig::new("sc")).unwrap();
        let addr = runtime.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || runtime.run_until_idle_for(Duration::from_millis(400)));

        let mut client = connect_tcp(ClientConfig::new("ws", 1), addr).unwrap();
        client.wait_ready(Duration::from_secs(5)).unwrap();
        let data = FileRef::new(FileId::new(2), "ws:/data");
        let job = FileRef::new(FileId::new(1), "ws:/t.job");
        let content: Vec<u8> = (0..2000)
            .flat_map(|i| format!("row {i}\n").into_bytes())
            .collect();
        client.edit_finished(&data, content.clone());
        client.edit_finished(&job, b"wc ws:/data\n".to_vec());
        client.submit(&job, std::slice::from_ref(&data), SubmitOptions::default()).unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();

        let mut edited = content;
        edited.extend_from_slice(b"appended row\n");
        client.edit_finished(&data, edited);
        client.submit(&job, &[data], SubmitOptions::default()).unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(client.report().counter("client", "deltas_sent"), 1);
        drop(client);
        let node = handle.join().unwrap().unwrap();
        assert_eq!(node.report().counter("server", "delta_updates"), 1);
    }

    #[test]
    fn sharded_tcp_end_to_end_jobs_across_domains() {
        let runtime = Deployment::new(ServerConfig::new("sc"))
            .shards(2)
            .tcp("127.0.0.1:0")
            .unwrap();
        let addr = runtime.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || runtime.run_until_idle_for(Duration::from_millis(400)));

        let mut clients: Vec<TcpClient> = (1..=3u64)
            .map(|d| connect_tcp(ClientConfig::new(format!("ws{d}"), d), addr).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.wait_ready(Duration::from_secs(5)).unwrap();
            let job = FileRef::new(FileId::new(1), "ws:/t.job");
            c.edit_finished(&job, format!("echo tcp shard {i}\n").into_bytes());
            c.submit(&job, &[], SubmitOptions::default()).unwrap();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let (_, output, _, stats) = c.wait_job(Duration::from_secs(10)).unwrap();
            assert_eq!(output, format!("tcp shard {i}\n").into_bytes());
            assert_eq!(stats.exit_code, 0);
        }
        drop(clients);
        let nodes = handle.join().unwrap().unwrap();
        assert_eq!(nodes.len(), 2);
        let total: u64 = nodes
            .iter()
            .map(|n| n.report().counter("server", "jobs_completed"))
            .sum();
        assert_eq!(total, 3);
    }
}
