//! The TCP deployment: a blocking server runtime and a TCP client,
//! mirroring the paper's prototype shape — "clients and servers are
//! implemented as UNIX processes that use a reliable transport protocol
//! (TCP/IP) … a server process listens at a well-known port for
//! connections from clients."

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use shadow_client::ClientConfig;
use shadow_netsim::tcp::{TcpFramed, TcpServer};
use shadow_proto::{ClientMessage, Frame};
use shadow_server::{ServerAction, ServerConfig, ServerEvent, ServerNode, SessionId, TimerToken};

use crate::live::LiveClient;

/// A [`LiveClient`](crate::LiveClient) over a TCP connection.
pub type TcpClient = LiveClient<TcpFramed>;

/// Connects a TCP client to a listening [`TcpServerRuntime`] (or
/// `shadowd`) and sends the `Hello`.
///
/// # Errors
///
/// Socket or handshake failures.
pub fn connect_tcp(config: ClientConfig, addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
    let transport = TcpFramed::connect(addr)?;
    LiveClient::over_transport(config, transport)
        .map_err(|e| io::Error::new(io::ErrorKind::ConnectionReset, e.to_string()))
}

/// The blocking server loop: accepts connections on a well-known port and
/// drives a [`ServerNode`].
///
/// # Example
///
/// ```no_run
/// use shadow::{ServerConfig, TcpServerRuntime};
///
/// # fn main() -> std::io::Result<()> {
/// let runtime = TcpServerRuntime::bind("0.0.0.0:4411", ServerConfig::new("superc"))?;
/// runtime.run_forever()
/// # }
/// ```
pub struct TcpServerRuntime {
    listener: TcpServer,
    node: ServerNode,
    sessions: Vec<(SessionId, TcpFramed, bool)>,
    next_session: u64,
    timers: Vec<(Instant, TimerToken)>,
    started: Instant,
}

impl TcpServerRuntime {
    /// Binds the well-known port.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        Ok(TcpServerRuntime {
            listener: TcpServer::bind(addr)?,
            node: ServerNode::new(config),
            sessions: Vec::new(),
            next_session: 0,
            timers: Vec::new(),
            started: Instant::now(),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// One scheduling round: accept, read, fire timers, write. Returns
    /// whether any work was done.
    ///
    /// # Errors
    ///
    /// Listener failures (per-connection errors just drop the session).
    pub fn poll_once(&mut self) -> io::Result<bool> {
        let mut busy = false;
        // Accept new clients.
        while let Some(conn) = self.listener.try_accept()? {
            self.next_session += 1;
            let session = SessionId::new(self.next_session);
            let now_ms = self.now_ms();
            self.node.handle(ServerEvent::Connected { session, now_ms });
            self.sessions.push((session, conn, true));
            busy = true;
        }
        // Read frames.
        let mut inbound = Vec::new();
        for (session, conn, alive) in self.sessions.iter_mut() {
            if !*alive {
                continue;
            }
            loop {
                match conn.try_recv() {
                    Ok(Some(frame)) => {
                        if let Ok(Some((message, _))) = Frame::decode::<ClientMessage>(&frame) {
                            inbound.push((*session, message));
                        }
                        busy = true;
                    }
                    Ok(None) => break,
                    Err(_) => {
                        *alive = false;
                        break;
                    }
                }
            }
        }
        let now_ms = self.now_ms();
        let mut actions = Vec::new();
        for (session, message) in inbound {
            actions.extend(self.node.handle(ServerEvent::Message {
                session,
                message,
                now_ms,
            }));
        }
        // Report dead sessions to the node once and drop their slots.
        let mut dropped = Vec::new();
        self.sessions.retain(|(session, _, alive)| {
            if *alive {
                true
            } else {
                dropped.push(*session);
                false
            }
        });
        for session in dropped {
            busy = true;
            actions.extend(self.node.handle(ServerEvent::Disconnected { session, now_ms }));
        }
        // Fire due timers.
        let now = Instant::now();
        let mut due = Vec::new();
        self.timers.retain(|(at, token)| {
            if *at <= now {
                due.push(*token);
                false
            } else {
                true
            }
        });
        for token in due {
            busy = true;
            let now_ms = self.now_ms();
            actions.extend(self.node.handle(ServerEvent::Timer { token, now_ms }));
        }
        // Perform actions.
        for action in actions {
            match action {
                ServerAction::Send { session, message } => {
                    if let Some((_, conn, alive)) =
                        self.sessions.iter_mut().find(|(s, _, _)| *s == session)
                    {
                        if *alive && conn.send(&Frame::encode(&message)).is_err() {
                            *alive = false;
                        }
                    }
                }
                ServerAction::SetTimer { delay_ms, token } => {
                    self.timers
                        .push((Instant::now() + Duration::from_millis(delay_ms), token));
                }
            }
        }
        Ok(busy)
    }

    /// Serves forever (the daemon entry point).
    ///
    /// # Errors
    ///
    /// Listener failures.
    pub fn run_forever(mut self) -> io::Result<()> {
        loop {
            if !self.poll_once()? {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Serves until no work has arrived for `idle`, then returns the node
    /// for inspection (test entry point).
    ///
    /// # Errors
    ///
    /// Listener failures.
    pub fn run_until_idle_for(mut self, idle: Duration) -> io::Result<ServerNode> {
        let mut last_busy = Instant::now();
        loop {
            if self.poll_once()? {
                last_busy = Instant::now();
            } else {
                // Pending timers (running jobs) and live sessions are not
                // "idle": only a quiet, clientless, timerless server exits.
                let quiescent = self.timers.is_empty() && self.sessions.is_empty();
                if quiescent && last_busy.elapsed() >= idle {
                    return Ok(self.node);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

// Dead-session bookkeeping note: a session slot flips `alive = false` on
// first transport error; the next poll reports `Disconnected` to the node
// exactly once and removes the slot.

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_client::FileRef;
    use shadow_proto::{FileId, SubmitOptions};

    #[test]
    fn tcp_end_to_end_job() {
        let runtime =
            TcpServerRuntime::bind("127.0.0.1:0", ServerConfig::new("sc")).unwrap();
        let addr = runtime.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || runtime.run_until_idle_for(Duration::from_millis(400)));

        let mut client = connect_tcp(ClientConfig::new("ws", 1), addr).unwrap();
        client.wait_ready(Duration::from_secs(5)).unwrap();
        let job = FileRef::new(FileId::new(1), "ws:/t.job");
        client.edit_finished(&job, b"echo over tcp\n".to_vec());
        client.submit(&job, &[], SubmitOptions::default()).unwrap();
        let (_, output, _, stats) = client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(output, b"over tcp\n");
        assert_eq!(stats.exit_code, 0);
        drop(client);
        let node = handle.join().unwrap().unwrap();
        assert_eq!(node.metrics().jobs_completed, 1);
    }

    #[test]
    fn tcp_delta_resubmission() {
        let runtime =
            TcpServerRuntime::bind("127.0.0.1:0", ServerConfig::new("sc")).unwrap();
        let addr = runtime.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || runtime.run_until_idle_for(Duration::from_millis(400)));

        let mut client = connect_tcp(ClientConfig::new("ws", 1), addr).unwrap();
        client.wait_ready(Duration::from_secs(5)).unwrap();
        let data = FileRef::new(FileId::new(2), "ws:/data");
        let job = FileRef::new(FileId::new(1), "ws:/t.job");
        let content: Vec<u8> = (0..2000)
            .flat_map(|i| format!("row {i}\n").into_bytes())
            .collect();
        client.edit_finished(&data, content.clone());
        client.edit_finished(&job, b"wc ws:/data\n".to_vec());
        client.submit(&job, std::slice::from_ref(&data), SubmitOptions::default()).unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();

        let mut edited = content;
        edited.extend_from_slice(b"appended row\n");
        client.edit_finished(&data, edited);
        client.submit(&job, &[data], SubmitOptions::default()).unwrap();
        client.wait_job(Duration::from_secs(10)).unwrap();
        assert_eq!(client.metrics().deltas_sent, 1);
        drop(client);
        let node = handle.join().unwrap().unwrap();
        assert_eq!(node.metrics().delta_updates, 1);
    }
}
