//! Client-side version control for shadow files (§6.3.2 of the paper).
//!
//! "On the client side, the system associates a version number with each
//! file. Every time a file is edited, a new version is created and
//! identified separately from the previous versions. When the shadow
//! server requests a file, it indicates which version it has along with
//! the file name. In response … the client may transmit a completely new
//! version (if the specified version is not available for computing the
//! differences), or the difference between the current version and the
//! previous version specified by the server."
//!
//! [`VersionStore`] implements exactly that contract:
//!
//! * [`record_edit`](VersionStore::record_edit) creates the next version;
//! * [`delta_from`](VersionStore::delta_from) produces an ed-script delta
//!   against any retained base, or reports that the base is gone (→ the
//!   caller sends a full transfer);
//! * [`acknowledge`](VersionStore::acknowledge) prunes versions the server
//!   has durably cached ("the client deletes older versions after the
//!   server acknowledges the receipt of a later version");
//! * a configurable retention limit bounds how many older versions are
//!   kept ("a user may specify, as part of customization, a limit on the
//!   number of older versions").
//!
//! # Example
//!
//! ```
//! use shadow_version::VersionStore;
//! use shadow_proto::{FileId, VersionNumber};
//!
//! let mut store = VersionStore::new(4);
//! let file = FileId::new(1);
//! let v1 = store.record_edit(file, b"a\nb\n".to_vec());
//! let v2 = store.record_edit(file, b"a\nB\n".to_vec());
//! assert_eq!(v2, v1.next());
//! let (base, script) = store.delta_from(file, v1).expect("base retained");
//! assert_eq!(base, v1);
//! assert_eq!(script.stats().lines_added, 1); // only the changed line travels
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

use shadow_diff::{
    choose_chunk_codec, chunk_delta_into, diff_docs, DiffAlgorithm, DiffScratch, DiffStats,
    DocBuf, EdScript,
};
use shadow_proto::{ContentDigest, DeltaCodec, FileId, VersionNumber};

/// Per-file version chain.
#[derive(Debug, Clone, Default)]
struct FileVersions {
    /// Retained contents by version; always contains the latest. Each
    /// version is a [`DocBuf`]: the line index is built once at record
    /// time and shared (O(1) clone) with every delta computed against it.
    versions: BTreeMap<VersionNumber, DocBuf>,
    latest: Option<VersionNumber>,
    /// Highest version the server has acknowledged caching.
    acked: Option<VersionNumber>,
}

/// Summary of what a [`VersionStore`] currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VersionStoreStats {
    /// Files tracked.
    pub files: usize,
    /// Total retained versions across files.
    pub versions: usize,
    /// Total bytes of retained content.
    pub bytes: usize,
}

impl shadow_obs::Snapshot for VersionStoreStats {
    fn section_name(&self) -> &'static str {
        "versions"
    }

    fn snapshot(&self) -> shadow_obs::Section {
        shadow_obs::Section::new("versions")
            .with("files", self.files)
            .with("versions", self.versions)
            .with("bytes", self.bytes)
    }
}

/// The client's version store: per-file chains with acknowledgement-driven
/// pruning.
///
/// See the [crate docs](crate) for the paper context and an example.
#[derive(Debug, Clone)]
pub struct VersionStore {
    files: HashMap<FileId, FileVersions>,
    /// Number of versions *older than the latest* retained per file.
    retention_limit: usize,
    algorithm: DiffAlgorithm,
    /// Reusable diff working memory: steady-state delta computation does
    /// no heap allocation. `RefCell` because deltas are conceptually a
    /// read (`&self`); cloning a store starts with a fresh scratch.
    scratch: RefCell<DiffScratch>,
}

impl VersionStore {
    /// Creates a store retaining up to `retention_limit` older versions
    /// per file (the latest is always kept), diffing with the default
    /// Hunt–McIlroy algorithm.
    pub fn new(retention_limit: usize) -> Self {
        VersionStore {
            files: HashMap::new(),
            retention_limit,
            algorithm: DiffAlgorithm::default(),
            scratch: RefCell::new(DiffScratch::new()),
        }
    }

    /// Selects the diff algorithm used by [`delta_from`](Self::delta_from).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: DiffAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The configured retention limit.
    pub fn retention_limit(&self) -> usize {
        self.retention_limit
    }

    /// Records the result of an editing session, creating the next version.
    ///
    /// If `content` is byte-identical to the latest version, no new version
    /// is created and the existing number is returned (an editor session
    /// that changed nothing should not trigger cache traffic).
    pub fn record_edit(&mut self, file: FileId, content: Vec<u8>) -> VersionNumber {
        let entry = self.files.entry(file).or_default();
        if let Some(latest) = entry.latest {
            if entry.versions[&latest].as_bytes() == content.as_slice() {
                return latest;
            }
        }
        let next = entry
            .latest
            .map(VersionNumber::next)
            .unwrap_or(VersionNumber::FIRST);
        entry.versions.insert(next, DocBuf::from_bytes(content));
        entry.latest = Some(next);
        Self::prune(entry, self.retention_limit);
        next
    }

    /// Restores a persisted version into the chain (for clients that save
    /// their shadow environment across process runs, §6.3.1). Versions
    /// must be restored in increasing order; `version` becomes the latest
    /// when it exceeds the current latest.
    ///
    /// # Errors
    ///
    /// Returns `Err(existing_latest)` if `version` is not newer than the
    /// latest already present.
    pub fn restore(
        &mut self,
        file: FileId,
        version: VersionNumber,
        content: Vec<u8>,
    ) -> Result<(), VersionNumber> {
        let entry = self.files.entry(file).or_default();
        if let Some(latest) = entry.latest {
            if version <= latest {
                return Err(latest);
            }
        }
        entry.versions.insert(version, DocBuf::from_bytes(content));
        entry.latest = Some(version);
        Self::prune(entry, self.retention_limit);
        Ok(())
    }

    /// Iterates the retained `(version, content)` pairs of a file in
    /// ascending order (for persistence).
    pub fn retained(&self, file: FileId) -> impl Iterator<Item = (VersionNumber, &[u8])> {
        self.files
            .get(&file)
            .into_iter()
            .flat_map(|f| f.versions.iter().map(|(v, c)| (*v, c.as_bytes())))
    }

    /// The files tracked by this store.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.files.keys().copied()
    }

    /// The latest version and its content.
    pub fn latest(&self, file: FileId) -> Option<(VersionNumber, &[u8])> {
        let entry = self.files.get(&file)?;
        let latest = entry.latest?;
        Some((latest, entry.versions[&latest].as_bytes()))
    }

    /// The digest of the latest content.
    pub fn latest_digest(&self, file: FileId) -> Option<ContentDigest> {
        self.latest(file).map(|(_, c)| ContentDigest::of(c))
    }

    /// The retained content of a specific version.
    pub fn content_of(&self, file: FileId, version: VersionNumber) -> Option<&[u8]> {
        self.files
            .get(&file)?
            .versions
            .get(&version)
            .map(DocBuf::as_bytes)
    }

    /// Computes the delta from `base` to the latest version.
    ///
    /// Returns `None` when the base (or the file) is not retained — the
    /// caller must fall back to a full transfer, exactly the paper's
    /// "completely new version" case.
    pub fn delta_from(&self, file: FileId, base: VersionNumber) -> Option<(VersionNumber, EdScript)> {
        let entry = self.files.get(&file)?;
        let latest = entry.latest?;
        let base_doc = entry.versions.get(&base)?;
        let latest_doc = &entry.versions[&latest];
        let script = diff_docs(
            self.algorithm,
            base_doc,
            latest_doc,
            &mut self.scratch.borrow_mut(),
        )
        .to_ed_script();
        Some((base, script))
    }

    /// Computes the delta from `base` to the latest version, returning its
    /// wire (textual) form and statistics directly.
    ///
    /// This is the zero-copy submission path: the script text is emitted
    /// straight from the retained version buffers through the store's
    /// reusable [`DiffScratch`] — no per-line allocation, no intermediate
    /// [`EdScript`]. Returns `None` when the base (or the file) is not
    /// retained, as for [`delta_from`](Self::delta_from).
    pub fn delta_text_from(
        &self,
        file: FileId,
        base: VersionNumber,
    ) -> Option<(VersionNumber, Vec<u8>, DiffStats)> {
        let entry = self.files.get(&file)?;
        let latest = entry.latest?;
        let base_doc = entry.versions.get(&base)?;
        let latest_doc = &entry.versions[&latest];
        let delta = diff_docs(
            self.algorithm,
            base_doc,
            latest_doc,
            &mut self.scratch.borrow_mut(),
        );
        Some((base, delta.to_text(), delta.stats()))
    }

    /// Computes the delta from `base` to the latest version, selecting
    /// the delta codec per file shape: line-oriented ed script for text,
    /// the content-defined chunk codec for binary or line-hostile
    /// content (single-line megafiles, minified sources). The returned
    /// [`DeltaCodec`] must travel with the bytes so the receiver applies
    /// the matching decoder.
    ///
    /// Returns `None` when the base (or the file) is not retained — the
    /// caller falls back to a full transfer, exactly as for
    /// [`delta_from`](Self::delta_from).
    pub fn delta_payload_from(
        &self,
        file: FileId,
        base: VersionNumber,
    ) -> Option<(VersionNumber, DeltaCodec, Vec<u8>)> {
        let entry = self.files.get(&file)?;
        let latest = entry.latest?;
        let base_doc = entry.versions.get(&base)?;
        let latest_doc = &entry.versions[&latest];
        let mut scratch = self.scratch.borrow_mut();
        if choose_chunk_codec(base_doc, latest_doc) {
            let mut out = Vec::new();
            chunk_delta_into(
                base_doc.as_bytes(),
                latest_doc.as_bytes(),
                &mut scratch,
                &mut out,
            );
            Some((base, DeltaCodec::Chunk, out))
        } else {
            let delta = diff_docs(self.algorithm, base_doc, latest_doc, &mut scratch);
            Some((base, DeltaCodec::Line, delta.to_text()))
        }
    }

    /// Notes that the server has durably cached `version`; versions older
    /// than it are pruned (they can never again be useful as delta bases).
    ///
    /// Acknowledgements beyond the latest version we ever produced come
    /// from a buggy or malicious server; they are clamped to the latest so
    /// the current content can never be pruned away.
    pub fn acknowledge(&mut self, file: FileId, version: VersionNumber) {
        let Some(entry) = self.files.get_mut(&file) else {
            return;
        };
        let Some(latest) = entry.latest else { return };
        let version = version.min(latest);
        if entry.acked.is_some_and(|a| a >= version) {
            return;
        }
        entry.acked = Some(version);
        entry.versions.retain(|&v, _| v >= version);
        // The latest always survives (guaranteed by the clamp above).
        debug_assert!(entry.versions.contains_key(&latest));
    }

    /// The highest acknowledged version, if any.
    pub fn acked(&self, file: FileId) -> Option<VersionNumber> {
        self.files.get(&file)?.acked
    }

    /// Whether the file is tracked at all.
    pub fn contains(&self, file: FileId) -> bool {
        self.files.contains_key(&file)
    }

    /// Forgets a file entirely.
    pub fn forget(&mut self, file: FileId) {
        self.files.remove(&file);
    }

    /// Retention summary.
    pub fn stats(&self) -> VersionStoreStats {
        let mut s = VersionStoreStats {
            files: self.files.len(),
            ..VersionStoreStats::default()
        };
        for f in self.files.values() {
            s.versions += f.versions.len();
            s.bytes += f.versions.values().map(DocBuf::byte_len).sum::<usize>();
        }
        s
    }

    /// A deterministic digest of the version-chain state: per file (in
    /// sorted order) the latest and acked versions plus the digest of
    /// every retained version's content. Used by the model checker to
    /// deduplicate explored states.
    pub fn state_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut files: Vec<FileId> = self.files.keys().copied().collect();
        files.sort_unstable();
        let mut h = shadow_proto::StableHasher::new();
        for file in files {
            let entry = &self.files[&file];
            (file, entry.latest, entry.acked).hash(&mut h);
            for (v, content) in &entry.versions {
                (*v, ContentDigest::of(content.as_bytes()).as_u64()).hash(&mut h);
            }
        }
        h.finish()
    }

    /// Keeps the latest plus at most `limit` older versions, preferring to
    /// drop the oldest. The acked version is protected when possible (it is
    /// the most probable delta base).
    fn prune(entry: &mut FileVersions, limit: usize) {
        let Some(latest) = entry.latest else { return };
        while entry.versions.len() > limit + 1 {
            let victim = entry
                .versions
                .keys()
                .copied().find(|&v| v != latest && Some(v) != entry.acked)
                .or_else(|| {
                    entry
                        .versions
                        .keys()
                        .copied()
                        .find(|&v| v != latest)
                });
            match victim {
                Some(v) => {
                    entry.versions.remove(&v);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_diff::Document;

    fn f(n: u64) -> FileId {
        FileId::new(n)
    }

    #[test]
    fn first_edit_creates_version_one() {
        let mut s = VersionStore::new(4);
        let v = s.record_edit(f(1), b"x\n".to_vec());
        assert_eq!(v, VersionNumber::FIRST);
        assert_eq!(s.latest(f(1)).unwrap().0, v);
        assert_eq!(s.latest(f(1)).unwrap().1, b"x\n");
    }

    #[test]
    fn versions_increment_per_edit() {
        let mut s = VersionStore::new(4);
        let v1 = s.record_edit(f(1), b"a\n".to_vec());
        let v2 = s.record_edit(f(1), b"b\n".to_vec());
        let v3 = s.record_edit(f(1), b"c\n".to_vec());
        assert_eq!(v2, v1.next());
        assert_eq!(v3, v2.next());
        assert_eq!(s.content_of(f(1), v1).unwrap(), b"a\n");
        assert_eq!(s.content_of(f(1), v2).unwrap(), b"b\n");
    }

    #[test]
    fn unchanged_content_does_not_create_a_version() {
        let mut s = VersionStore::new(4);
        let v1 = s.record_edit(f(1), b"same\n".to_vec());
        let v2 = s.record_edit(f(1), b"same\n".to_vec());
        assert_eq!(v1, v2);
        assert_eq!(s.stats().versions, 1);
    }

    #[test]
    fn files_are_independent() {
        let mut s = VersionStore::new(4);
        s.record_edit(f(1), b"1".to_vec());
        let v = s.record_edit(f(2), b"2".to_vec());
        assert_eq!(v, VersionNumber::FIRST);
        assert_eq!(s.stats().files, 2);
    }

    #[test]
    fn delta_reconstructs_latest() {
        let mut s = VersionStore::new(4);
        let base_content = b"one\ntwo\nthree\n".to_vec();
        let v1 = s.record_edit(f(1), base_content.clone());
        s.record_edit(f(1), b"one\n2\nthree\nfour\n".to_vec());
        let (base, script) = s.delta_from(f(1), v1).unwrap();
        assert_eq!(base, v1);
        let rebuilt = script
            .apply(&Document::from_bytes(base_content))
            .unwrap()
            .to_bytes();
        assert_eq!(rebuilt, b"one\n2\nthree\nfour\n");
    }

    #[test]
    fn delta_from_missing_base_is_none() {
        let mut s = VersionStore::new(0); // keep only latest
        let v1 = s.record_edit(f(1), b"a\n".to_vec());
        s.record_edit(f(1), b"b\n".to_vec());
        // v1 was pruned by the retention limit.
        assert!(s.delta_from(f(1), v1).is_none());
        assert!(s.delta_from(f(9), VersionNumber::FIRST).is_none());
    }

    #[test]
    fn acknowledge_prunes_older_versions() {
        let mut s = VersionStore::new(10);
        let v1 = s.record_edit(f(1), b"a\n".to_vec());
        let v2 = s.record_edit(f(1), b"b\n".to_vec());
        let v3 = s.record_edit(f(1), b"c\n".to_vec());
        s.acknowledge(f(1), v2);
        assert!(s.content_of(f(1), v1).is_none());
        assert!(s.content_of(f(1), v2).is_some());
        assert!(s.content_of(f(1), v3).is_some());
        assert_eq!(s.acked(f(1)), Some(v2));
    }

    #[test]
    fn bogus_future_acknowledgement_cannot_prune_latest() {
        // Regression: a (buggy/malicious) server acking a version we never
        // produced must not delete the latest content.
        let mut s = VersionStore::new(4);
        let v1 = s.record_edit(f(1), b"a\n".to_vec());
        s.acknowledge(f(1), VersionNumber::new(999));
        assert_eq!(s.latest(f(1)).unwrap().0, v1);
        assert_eq!(s.latest(f(1)).unwrap().1, b"a\n");
        assert_eq!(s.acked(f(1)), Some(v1));
        // And new edits continue normally.
        let v2 = s.record_edit(f(1), b"b\n".to_vec());
        assert_eq!(v2, v1.next());
    }

    #[test]
    fn acknowledge_of_untracked_file_is_noop() {
        let mut s = VersionStore::new(4);
        s.acknowledge(f(9), VersionNumber::new(1));
        assert!(!s.contains(f(9)));
    }

    #[test]
    fn stale_acknowledgements_are_ignored() {
        let mut s = VersionStore::new(10);
        let v1 = s.record_edit(f(1), b"a\n".to_vec());
        let v2 = s.record_edit(f(1), b"b\n".to_vec());
        s.acknowledge(f(1), v2);
        s.acknowledge(f(1), v1); // late/duplicate ack
        assert_eq!(s.acked(f(1)), Some(v2));
        assert!(s.content_of(f(1), v2).is_some());
    }

    #[test]
    fn retention_limit_bounds_old_versions() {
        let mut s = VersionStore::new(2);
        for i in 0..10 {
            s.record_edit(f(1), format!("content {i}\n").into_bytes());
        }
        // Latest + 2 older.
        assert_eq!(s.stats().versions, 3);
        let (latest, content) = s.latest(f(1)).unwrap();
        assert_eq!(latest, VersionNumber::new(10));
        assert_eq!(content, b"content 9\n");
    }

    #[test]
    fn acked_version_survives_retention_pressure() {
        let mut s = VersionStore::new(1);
        let v1 = s.record_edit(f(1), b"v1\n".to_vec());
        s.acknowledge(f(1), v1);
        for i in 2..6 {
            s.record_edit(f(1), format!("v{i}\n").into_bytes());
        }
        // v1 is the acked base: it must still be available for deltas.
        assert!(s.content_of(f(1), v1).is_some());
        let (base, _) = s.delta_from(f(1), v1).unwrap();
        assert_eq!(base, v1);
    }

    #[test]
    fn delta_against_acked_base_after_many_edits() {
        let mut s = VersionStore::new(3);
        let base: String = (0..100).map(|i| format!("line {i}\n")).collect();
        let v1 = s.record_edit(f(1), base.clone().into_bytes());
        s.acknowledge(f(1), v1);
        let edited = base.replace("line 50", "LINE 50");
        s.record_edit(f(1), edited.clone().into_bytes());
        let (_, script) = s.delta_from(f(1), v1).unwrap();
        let rebuilt = script
            .apply(&Document::from_bytes(base.into_bytes()))
            .unwrap()
            .to_bytes();
        assert_eq!(rebuilt, edited.into_bytes());
        assert!(script.wire_len() < 64);
    }

    #[test]
    fn forget_removes_file() {
        let mut s = VersionStore::new(4);
        s.record_edit(f(1), b"x".to_vec());
        s.forget(f(1));
        assert!(!s.contains(f(1)));
        assert_eq!(s.stats().files, 0);
    }

    #[test]
    fn stats_count_bytes() {
        let mut s = VersionStore::new(4);
        s.record_edit(f(1), vec![0; 10]);
        s.record_edit(f(1), vec![1; 20]);
        assert_eq!(s.stats().bytes, 30);
        assert_eq!(s.stats().versions, 2);
    }

    #[test]
    fn delta_text_matches_script_text() {
        let mut s = VersionStore::new(4);
        let v1 = s.record_edit(f(1), b"one\ntwo\nthree\n".to_vec());
        s.record_edit(f(1), b"one\n2\nthree\nfour\n".to_vec());
        let (_, script) = s.delta_from(f(1), v1).unwrap();
        let (base, text, stats) = s.delta_text_from(f(1), v1).unwrap();
        assert_eq!(base, v1);
        assert_eq!(text, script.to_text());
        assert_eq!(stats, script.stats());
        let rebuilt = shadow_diff::apply_delta(b"one\ntwo\nthree\n", &text).unwrap();
        assert_eq!(rebuilt, b"one\n2\nthree\nfour\n");
        assert!(s.delta_text_from(f(9), v1).is_none());
    }

    #[test]
    fn myers_backend_works_identically() {
        let mut s = VersionStore::new(4).with_algorithm(DiffAlgorithm::Myers);
        let v1 = s.record_edit(f(1), b"a\nb\nc\n".to_vec());
        s.record_edit(f(1), b"a\nx\nc\n".to_vec());
        let (_, script) = s.delta_from(f(1), v1).unwrap();
        let rebuilt = script
            .apply(&Document::from_bytes(b"a\nb\nc\n".to_vec()))
            .unwrap();
        assert_eq!(rebuilt.to_bytes(), b"a\nx\nc\n");
    }
}
