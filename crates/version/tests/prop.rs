//! Property tests: version chains stay internally consistent under any
//! interleaving of edits, acknowledgements and delta requests.

use proptest::prelude::*;
use shadow_diff::Document;
use shadow_proto::{FileId, VersionNumber};
use shadow_version::VersionStore;

#[derive(Debug, Clone)]
enum Op {
    Edit { file: u64, content: Vec<u8> },
    Ack { file: u64, version: u64 },
    Delta { file: u64, base: u64 },
    Forget { file: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..3, prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(file, content)| Op::Edit { file, content }),
        2 => (0u64..3, 0u64..20).prop_map(|(file, version)| Op::Ack { file, version }),
        2 => (0u64..3, 0u64..20).prop_map(|(file, base)| Op::Delta { file, base }),
        1 => (0u64..3).prop_map(|file| Op::Forget { file }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chains_stay_consistent(
        retention in 0usize..6,
        ops in prop::collection::vec(arb_op(), 0..64),
    ) {
        let mut store = VersionStore::new(retention);
        // Shadow model: the latest content we wrote per file.
        let mut latest_content: std::collections::HashMap<u64, Vec<u8>> = Default::default();
        for op in ops {
            match op {
                Op::Edit { file, content } => {
                    let v = store.record_edit(FileId::new(file), content.clone());
                    latest_content.insert(file, content);
                    // The returned version is always retrievable and holds
                    // exactly what we stored.
                    prop_assert_eq!(
                        store.content_of(FileId::new(file), v).unwrap(),
                        latest_content[&file].as_slice()
                    );
                }
                Op::Ack { file, version } => {
                    store.acknowledge(FileId::new(file), VersionNumber::new(version));
                }
                Op::Delta { file, base } => {
                    if let Some((base_v, script)) =
                        store.delta_from(FileId::new(file), VersionNumber::new(base))
                    {
                        // Any delta the store hands out reconstructs the
                        // latest content from the named base.
                        let base_content = store
                            .content_of(FileId::new(file), base_v)
                            .expect("delta implies retained base");
                        let rebuilt = script
                            .apply(&Document::from_bytes(base_content.to_vec()))
                            .expect("store-produced script applies");
                        prop_assert_eq!(
                            rebuilt.to_bytes(),
                            latest_content[&file].clone()
                        );
                    }
                }
                Op::Forget { file } => {
                    store.forget(FileId::new(file));
                    latest_content.remove(&file);
                }
            }
            // Invariants after every operation:
            for (&file, content) in &latest_content {
                let (latest, stored) = store
                    .latest(FileId::new(file))
                    .expect("tracked file has a latest");
                prop_assert_eq!(stored, content.as_slice());
                // Retention bound: latest + at most `retention` older
                // versions, +1 slack for a protected acked base.
                let count = store.retained(FileId::new(file)).count();
                prop_assert!(count <= retention + 2, "count {count}");
                // Acked never exceeds latest.
                if let Some(acked) = store.acked(FileId::new(file)) {
                    prop_assert!(acked <= latest);
                }
            }
        }
    }
}
