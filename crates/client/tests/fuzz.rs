//! Robustness: the client state machine must never panic on arbitrary
//! (well-typed but bogus) server messages — update requests for unknown
//! files, completions of unknown jobs, output deltas against absent
//! bases, acks for versions never sent.

use bytes::Bytes;
use proptest::prelude::*;
use shadow_client::{ClientConfig, ClientEvent, ClientNode, ConnId, FileRef};
use shadow_proto::{
    ContentDigest, DeltaCodec, FileId, HostName, JobId, JobStats, JobStatus, JobStatusEntry,
    OutputPayload, RequestId, ServerMessage, SubmitOptions, TransferEncoding, VersionNumber,
    PROTOCOL_VERSION,
};

fn arb_encoding() -> impl Strategy<Value = TransferEncoding> {
    prop_oneof![
        Just(TransferEncoding::Identity),
        Just(TransferEncoding::Rle),
        Just(TransferEncoding::Lzss),
    ]
}

fn arb_output() -> impl Strategy<Value = OutputPayload> {
    prop_oneof![
        (arb_encoding(), prop::collection::vec(any::<u8>(), 0..128)).prop_map(
            |(encoding, data)| OutputPayload::Full {
                encoding,
                data: Bytes::from(data),
            }
        ),
        (
            0u64..8,
            prop_oneof![Just(DeltaCodec::Line), Just(DeltaCodec::Chunk)],
            arb_encoding(),
            prop::collection::vec(any::<u8>(), 0..128),
            any::<u64>()
        )
            .prop_map(|(job, codec, encoding, data, d)| OutputPayload::Delta {
                base_job: JobId::new(job),
                codec,
                encoding,
                data: Bytes::from(data),
                digest: ContentDigest::from_raw(d),
            }),
    ]
}

fn arb_status() -> impl Strategy<Value = JobStatus> {
    prop_oneof![
        Just(JobStatus::Queued),
        Just(JobStatus::Running),
        Just(JobStatus::Completed),
        Just(JobStatus::Unknown),
    ]
}

fn arb_retained() -> impl Strategy<Value = Vec<(FileId, VersionNumber)>> {
    prop::collection::vec(
        (0u64..6, 0u64..5).prop_map(|(f, v)| (FileId::new(f), VersionNumber::new(v))),
        0..4,
    )
}

fn arb_message() -> impl Strategy<Value = ServerMessage> {
    prop_oneof![
        ("[a-z]{1,6}", any::<bool>(), arb_retained()).prop_map(|(s, resumed, retained)| {
            ServerMessage::HelloAck {
                protocol: PROTOCOL_VERSION,
                server: HostName::new(s),
                resumed,
                retained,
            }
        }),
        any::<u64>().prop_map(|nonce| ServerMessage::Pong { nonce }),
        (0u64..6, prop::option::of(0u64..5)).prop_map(|(f, have)| ServerMessage::UpdateRequest {
            file: FileId::new(f),
            have: have.map(VersionNumber::new),
        }),
        (0u64..6, 0u64..8).prop_map(|(f, v)| ServerMessage::VersionAck {
            file: FileId::new(f),
            version: VersionNumber::new(v),
        }),
        (any::<u64>(), 0u64..8).prop_map(|(r, j)| ServerMessage::SubmitAck {
            request: RequestId::new(r),
            job: JobId::new(j),
        }),
        (any::<u64>(), "[ -~]{0,24}").prop_map(|(r, reason)| ServerMessage::SubmitError {
            request: RequestId::new(r),
            reason,
        }),
        (any::<u64>(), prop::collection::vec((0u64..8, arb_status()), 0..4)).prop_map(
            |(r, entries)| ServerMessage::StatusReport {
                request: RequestId::new(r),
                entries: entries
                    .into_iter()
                    .map(|(j, status)| JobStatusEntry {
                        job: JobId::new(j),
                        status,
                        submitted_at_ms: 0,
                    })
                    .collect(),
            }
        ),
        (0u64..8, arb_output(), prop::collection::vec(any::<u8>(), 0..32)).prop_map(
            |(j, output, errors)| ServerMessage::JobComplete {
                job: JobId::new(j),
                output,
                errors: Bytes::from(errors),
                stats: JobStats::default(),
            }
        ),
        Just(ServerMessage::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn client_survives_arbitrary_server_messages(
        messages in prop::collection::vec(arb_message(), 0..48),
        edits in prop::collection::vec((0u64..3, prop::collection::vec(any::<u8>(), 0..64)), 0..8),
    ) {
        let mut client = ClientNode::new(ClientConfig::new("ws", 1));
        let conn = ConnId::new(0);
        client.connect(conn);
        // Interleave some legitimate local activity so internal state is
        // non-trivial when the bogus messages land.
        let mut edits = edits.into_iter();
        for (i, message) in messages.into_iter().enumerate() {
            if i % 3 == 0 {
                if let Some((which, content)) = edits.next() {
                    let f = FileRef::new(FileId::new(which + 1), format!("ws:/f{which}"));
                    client.edit_finished(&f, content);
                    // A submit may legitimately fail before HelloAck.
                    let _ = client.submit(conn, &f, &[], SubmitOptions::default());
                }
            }
            if i % 7 == 6 {
                // Link churn at arbitrary points must never panic.
                client.handle(ClientEvent::LinkDown { conn, now_ms: i as u64 });
                client.handle(ClientEvent::Resume { conn, now_ms: i as u64 });
            }
            client.handle(ClientEvent::Message {
                conn,
                message,
                now_ms: i as u64,
            });
        }
    }

    #[test]
    fn client_survives_messages_on_unknown_connections(
        messages in prop::collection::vec((0u64..4, arb_message()), 0..32),
    ) {
        let mut client = ClientNode::new(ClientConfig::new("ws", 1));
        // No connect() at all: every message references an unknown conn.
        for (i, (conn, message)) in messages.into_iter().enumerate() {
            client.handle(ClientEvent::Message {
                conn: ConnId::new(conn),
                message,
                now_ms: i as u64,
            });
        }
    }
}
