//! The shadow client: the component that runs at the user's workstation.
//!
//! §6.1 of the paper: "The client hides the details of communication, and
//! accepts requests for remote processing at the user's site. Multiple
//! clients can have connections open to a server simultaneously, and a
//! client can have simultaneous connections to multiple servers."
//!
//! Like the server, [`ClientNode`] is a **sans-io state machine**: events
//! in ([`ClientEvent`]), actions out ([`ClientAction`]). The pieces:
//!
//! * the **shadow environment** ([`ShadowEnv`]) — the per-user
//!   customization database of §6.3.1 (default host, editor, retention
//!   limit, transfer encoding);
//! * the **shadow editor** ([`ShadowEditor`]) — encapsulates a conventional
//!   editor without modifying it (§6.2) and runs the post-processor that
//!   versions the result and notifies interested servers;
//! * `submit` / `status` commands producing protocol messages, output
//!   delivery handling (including reverse-shadow output deltas), and the
//!   version-acknowledgement bookkeeping that lets the
//!   [`VersionStore`](shadow_version::VersionStore) prune safely even with
//!   connections to several servers.
//!
//! # Example
//!
//! ```
//! use shadow_client::{ClientConfig, ClientEvent, ClientNode, ConnId};
//!
//! let mut client = ClientNode::new(ClientConfig::new("ws1", 1));
//! let conn = ConnId::new(0);
//! let actions = client.connect(conn);
//! assert_eq!(actions.len(), 1); // the Hello
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod editor;
mod jobs;
mod node;

pub use config::{
    ClientConfig, ClientConfigBuilder, ConfigError, DeltaPolicy, ShadowEnv, TransferMode,
};
pub use editor::{EditOutcome, Editor, EditorCommand, FnEditor, ScriptedEditor, ShadowEditor};
pub use jobs::{JobTracker, TrackedJob};
pub use node::{
    ClientAction, ClientError, ClientEvent, ClientMetrics, ClientNode, ConnId, FileRef,
    Notification,
};
