//! The shadow editor: encapsulating the user's editor (§6.2).
//!
//! "Shadow Editor encapsulates a conventional editor of the user's choice
//! … It does not modify an existing editor and the user's view of the
//! editor remains unchanged. It contains a postprocessor responsible for
//! carrying out tasks related to shadow processing at the end of an
//! editing session."
//!
//! [`ShadowEditor`] wraps any [`Editor`] implementation: it reads the file
//! from the virtual file system, lets the editor transform the content,
//! writes the result back, and reports the canonical identity + new
//! content so the caller can run the shadow post-processing
//! ([`ClientNode::edit_finished`](crate::ClientNode::edit_finished)).

use shadow_vfs::{CanonicalName, Vfs, VfsError};

/// Anything that can transform a file's content — the "conventional editor
/// of the user's choice".
pub trait Editor {
    /// Transforms the current content into the edited content.
    fn edit(&mut self, content: Vec<u8>) -> Vec<u8>;
}

/// An [`Editor`] built from a closure — handy for tests and scripted
/// workloads.
///
/// # Example
///
/// ```
/// use shadow_client::{Editor, FnEditor};
///
/// let mut editor = FnEditor::new(|mut c: Vec<u8>| {
///     c.extend_from_slice(b"appended\n");
///     c
/// });
/// assert_eq!(editor.edit(b"x\n".to_vec()), b"x\nappended\n");
/// ```
pub struct FnEditor<F>(F);

impl<F: FnMut(Vec<u8>) -> Vec<u8>> FnEditor<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        FnEditor(f)
    }
}

impl<F: FnMut(Vec<u8>) -> Vec<u8>> Editor for FnEditor<F> {
    fn edit(&mut self, content: Vec<u8>) -> Vec<u8> {
        (self.0)(content)
    }
}

impl std::fmt::Debug for FnEditor<()> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnEditor")
    }
}


/// A deterministic scripted editor: a sequence of line-editing commands in
/// the spirit of `ed`/`sed`, applied in order. Useful for workloads,
/// examples and tests that need realistic, reproducible editing sessions.
///
/// # Example
///
/// ```
/// use shadow_client::{Editor, ScriptedEditor};
///
/// let mut editor = ScriptedEditor::new()
///     .substitute("speed = 10", "speed = 25")
///     .delete_matching("# TODO")
///     .append_line("# reviewed");
/// let out = editor.edit(b"speed = 10\n# TODO tune\n".to_vec());
/// assert_eq!(out, b"speed = 25\n# reviewed\n");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScriptedEditor {
    commands: Vec<EditorCommand>,
}

/// One command of a [`ScriptedEditor`] session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditorCommand {
    /// Replace every occurrence of `find` with `replace` (all lines).
    Substitute {
        /// Text to find.
        find: String,
        /// Replacement text.
        replace: String,
    },
    /// Delete every line containing the pattern.
    DeleteMatching(String),
    /// Append one line at the end of the file.
    AppendLine(String),
    /// Insert one line before 1-based line `line` (clamped to the end).
    InsertLine {
        /// 1-based insertion position.
        line: usize,
        /// The line's text.
        text: String,
    },
}

impl ScriptedEditor {
    /// An editor session with no commands yet.
    pub fn new() -> Self {
        ScriptedEditor::default()
    }

    /// Adds a substitute command.
    #[must_use]
    pub fn substitute(mut self, find: impl Into<String>, replace: impl Into<String>) -> Self {
        self.commands.push(EditorCommand::Substitute {
            find: find.into(),
            replace: replace.into(),
        });
        self
    }

    /// Adds a delete-matching-lines command.
    #[must_use]
    pub fn delete_matching(mut self, pattern: impl Into<String>) -> Self {
        self.commands
            .push(EditorCommand::DeleteMatching(pattern.into()));
        self
    }

    /// Adds an append-line command.
    #[must_use]
    pub fn append_line(mut self, text: impl Into<String>) -> Self {
        self.commands.push(EditorCommand::AppendLine(text.into()));
        self
    }

    /// Adds an insert-line command.
    #[must_use]
    pub fn insert_line(mut self, line: usize, text: impl Into<String>) -> Self {
        self.commands.push(EditorCommand::InsertLine {
            line,
            text: text.into(),
        });
        self
    }

    /// The commands in this session.
    pub fn commands(&self) -> &[EditorCommand] {
        &self.commands
    }
}

impl Editor for ScriptedEditor {
    fn edit(&mut self, content: Vec<u8>) -> Vec<u8> {
        // Work line-oriented over lossy UTF-8 (scripted editing is a text
        // workflow; binary files should use a different Editor).
        let text = String::from_utf8_lossy(&content).into_owned();
        let had_trailing_newline = text.ends_with('\n') || text.is_empty();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        for command in &self.commands {
            match command {
                EditorCommand::Substitute { find, replace } => {
                    if !find.is_empty() {
                        for line in &mut lines {
                            *line = line.replace(find.as_str(), replace);
                        }
                    }
                }
                EditorCommand::DeleteMatching(pattern) => {
                    lines.retain(|l| !l.contains(pattern.as_str()));
                }
                EditorCommand::AppendLine(text) => lines.push(text.clone()),
                EditorCommand::InsertLine { line, text } => {
                    let at = line.saturating_sub(1).min(lines.len());
                    lines.insert(at, text.clone());
                }
            }
        }
        let mut out = lines.join("\n");
        if (had_trailing_newline || !self.commands.is_empty()) && !out.is_empty() {
            out.push('\n');
        }
        out.into_bytes()
    }
}

/// The result of one shadow editing session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditOutcome {
    /// The file's canonical identity (resolved through aliases/mounts).
    pub name: CanonicalName,
    /// The content after the session.
    pub content: Vec<u8>,
    /// Whether the session changed the file at all.
    pub changed: bool,
}

/// The editor wrapper: read → edit → write → report.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShadowEditor;

impl ShadowEditor {
    /// Runs one editing session on `host:path` within `vfs`.
    ///
    /// A missing file starts from empty content, like editing a new file.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors (bad paths, directories, loops).
    pub fn edit_file(
        vfs: &mut Vfs,
        host: &str,
        path: &str,
        editor: &mut dyn Editor,
    ) -> Result<EditOutcome, VfsError> {
        let before = match vfs.read_file(host, path) {
            Ok(content) => content,
            Err(VfsError::NotFound { .. }) => Vec::new(),
            Err(e) => return Err(e),
        };
        let after = editor.edit(before.clone());
        let changed = after != before;
        let name = vfs.write_file(host, path, after.clone())?;
        Ok(EditOutcome {
            name,
            content: after,
            changed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_proto::DomainId;

    fn vfs() -> Vfs {
        let mut v = Vfs::new(DomainId::new(1));
        v.add_host("ws").unwrap();
        v
    }

    #[test]
    fn editing_existing_file_updates_content() {
        let mut v = vfs();
        v.write_file("ws", "/f", b"one\n".to_vec()).unwrap();
        let mut ed = FnEditor::new(|mut c: Vec<u8>| {
            c.extend_from_slice(b"two\n");
            c
        });
        let out = ShadowEditor::edit_file(&mut v, "ws", "/f", &mut ed).unwrap();
        assert!(out.changed);
        assert_eq!(out.content, b"one\ntwo\n");
        assert_eq!(v.read_file("ws", "/f").unwrap(), b"one\ntwo\n");
    }

    #[test]
    fn editing_new_file_starts_empty() {
        let mut v = vfs();
        let mut ed = FnEditor::new(|_| b"fresh\n".to_vec());
        let out = ShadowEditor::edit_file(&mut v, "ws", "/new", &mut ed).unwrap();
        assert!(out.changed);
        assert_eq!(v.read_file("ws", "/new").unwrap(), b"fresh\n");
    }

    #[test]
    fn no_change_is_reported() {
        let mut v = vfs();
        v.write_file("ws", "/f", b"same\n".to_vec()).unwrap();
        let mut ed = FnEditor::new(|c| c);
        let out = ShadowEditor::edit_file(&mut v, "ws", "/f", &mut ed).unwrap();
        assert!(!out.changed);
    }

    #[test]
    fn canonical_name_resolves_aliases() {
        let mut v = vfs();
        v.write_file("ws", "/real", b"x\n".to_vec()).unwrap();
        v.symlink("ws", "/alias", "/real").unwrap();
        let mut ed = FnEditor::new(|_| b"y\n".to_vec());
        let out = ShadowEditor::edit_file(&mut v, "ws", "/alias", &mut ed).unwrap();
        assert_eq!(out.name.path.to_string(), "/real");
        assert_eq!(v.read_file("ws", "/real").unwrap(), b"y\n");
    }


    #[test]
    fn scripted_editor_substitutes_and_deletes() {
        let mut ed = ScriptedEditor::new()
            .substitute("alpha", "ALPHA")
            .delete_matching("drop me");
        let out = ed.edit(b"alpha one\ndrop me please\nalpha two\n".to_vec());
        assert_eq!(out, b"ALPHA one\nALPHA two\n");
    }

    #[test]
    fn scripted_editor_insert_positions_clamp() {
        let mut ed = ScriptedEditor::new()
            .insert_line(1, "first")
            .insert_line(99, "last");
        let out = ed.edit(b"middle\n".to_vec());
        assert_eq!(out, b"first\nmiddle\nlast\n");
    }

    #[test]
    fn scripted_editor_empty_script_is_identity() {
        let mut ed = ScriptedEditor::new();
        assert_eq!(ed.edit(b"keep\nme\n".to_vec()), b"keep\nme\n");
        assert_eq!(ed.edit(Vec::new()), b"");
    }

    #[test]
    fn scripted_editor_with_shadow_editor_wrapper() {
        let mut v = vfs();
        v.write_file("ws", "/cfg", b"retries = 1\n# fixme\n".to_vec())
            .unwrap();
        let mut ed = ScriptedEditor::new()
            .substitute("retries = 1", "retries = 5")
            .delete_matching("# fixme");
        let out = ShadowEditor::edit_file(&mut v, "ws", "/cfg", &mut ed).unwrap();
        assert!(out.changed);
        assert_eq!(v.read_file("ws", "/cfg").unwrap(), b"retries = 5\n");
    }

    #[test]
    fn errors_propagate() {
        let mut v = vfs();
        v.mkdir_p("ws", "/dir").unwrap();
        let mut ed = FnEditor::new(|c| c);
        assert!(ShadowEditor::edit_file(&mut v, "ws", "/dir", &mut ed).is_err());
    }
}
