//! Client-side job tracking (§6.2: "the client maintains the information
//! on the status of all the jobs").

use std::collections::BTreeMap;

use shadow_proto::{JobId, JobStatus, RequestId};

use crate::node::ConnId;

/// What the client knows about one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackedJob {
    /// The connection it was submitted on.
    pub conn: ConnId,
    /// The submit request that created it.
    pub request: RequestId,
    /// Last known status.
    pub status: JobStatus,
    /// Client clock (ms) at submission.
    pub submitted_at_ms: u64,
    /// Client clock (ms) when the output arrived, if it has.
    pub completed_at_ms: Option<u64>,
    /// Bytes of output delivered, once completed.
    pub output_bytes: Option<u64>,
}

/// The client's table of jobs it has submitted.
#[derive(Debug, Clone, Default)]
pub struct JobTracker {
    jobs: BTreeMap<JobId, TrackedJob>,
    /// Submits awaiting their ack: request → (conn, submitted_at_ms).
    pending: BTreeMap<RequestId, (ConnId, u64)>,
}

impl JobTracker {
    /// Records a submit that has not been acknowledged yet.
    pub(crate) fn submitted(&mut self, request: RequestId, conn: ConnId, now_ms: u64) {
        self.pending.insert(request, (conn, now_ms));
    }

    /// Converts a pending submit into a tracked job on `SubmitAck`.
    ///
    /// A `JobComplete` can overtake its `SubmitAck` (re-delivery across a
    /// reconnect); the job is then already tracked in a terminal state and
    /// the late ack only fills in the submit bookkeeping — it must not
    /// resurrect the job as `Queued`.
    pub(crate) fn accepted(&mut self, request: RequestId, job: JobId, now_ms: u64) {
        let (conn, submitted_at_ms) = self
            .pending
            .remove(&request)
            .unwrap_or((ConnId::new(0), now_ms));
        let t = self.jobs.entry(job).or_insert(TrackedJob {
            conn,
            request,
            status: JobStatus::Queued,
            submitted_at_ms,
            completed_at_ms: None,
            output_bytes: None,
        });
        t.conn = conn;
        t.request = request;
        t.submitted_at_ms = submitted_at_ms;
    }

    /// Drops a pending submit on `SubmitError`.
    pub(crate) fn rejected(&mut self, request: RequestId) {
        self.pending.remove(&request);
    }

    /// Applies a status report entry.
    pub(crate) fn status_update(&mut self, job: JobId, status: JobStatus) {
        if let Some(t) = self.jobs.get_mut(&job) {
            // Never regress a completed job on a stale report.
            if !t.status.is_terminal() {
                t.status = status;
            }
        }
    }

    /// Marks a job completed with its delivered output size. A job the
    /// tracker has no ack for yet is recorded on the spot, so a
    /// completion that overtakes its `SubmitAck` is never lost.
    pub(crate) fn completed(
        &mut self,
        conn: ConnId,
        job: JobId,
        output_bytes: u64,
        failed: bool,
        now_ms: u64,
    ) {
        let t = self.jobs.entry(job).or_insert(TrackedJob {
            conn,
            request: RequestId::new(0),
            status: JobStatus::Queued,
            submitted_at_ms: now_ms,
            completed_at_ms: None,
            output_bytes: None,
        });
        t.status = if failed {
            JobStatus::Failed
        } else {
            JobStatus::Completed
        };
        t.completed_at_ms = Some(now_ms);
        t.output_bytes = Some(output_bytes);
    }

    /// Everything known about `job`.
    pub fn get(&self, job: JobId) -> Option<&TrackedJob> {
        self.jobs.get(&job)
    }

    /// All tracked jobs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &TrackedJob)> {
        self.jobs.iter().map(|(id, t)| (*id, t))
    }

    /// Jobs not yet in a terminal state.
    pub fn pending_jobs(&self) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|(_, t)| !t.status.is_terminal())
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_ack_complete_lifecycle() {
        let mut t = JobTracker::default();
        let req = RequestId::new(1);
        let conn = ConnId::new(3);
        t.submitted(req, conn, 100);
        t.accepted(req, JobId::new(7), 150);
        let job = t.get(JobId::new(7)).unwrap();
        assert_eq!(job.conn, conn);
        assert_eq!(job.status, JobStatus::Queued);
        assert_eq!(job.submitted_at_ms, 100);

        t.status_update(JobId::new(7), JobStatus::Running);
        assert_eq!(t.get(JobId::new(7)).unwrap().status, JobStatus::Running);
        assert_eq!(t.pending_jobs(), vec![JobId::new(7)]);

        t.completed(conn, JobId::new(7), 42, false, 900);
        let job = t.get(JobId::new(7)).unwrap();
        assert_eq!(job.status, JobStatus::Completed);
        assert_eq!(job.completed_at_ms, Some(900));
        assert_eq!(job.output_bytes, Some(42));
        assert!(t.pending_jobs().is_empty());
    }

    #[test]
    fn rejection_clears_pending() {
        let mut t = JobTracker::default();
        t.submitted(RequestId::new(1), ConnId::new(0), 0);
        t.rejected(RequestId::new(1));
        t.accepted(RequestId::new(1), JobId::new(9), 50);
        // Ack after rejection still tracks (defensively) with ack time.
        assert_eq!(t.get(JobId::new(9)).unwrap().submitted_at_ms, 50);
    }

    #[test]
    fn stale_status_cannot_regress_terminal_state() {
        let mut t = JobTracker::default();
        t.submitted(RequestId::new(1), ConnId::new(0), 0);
        t.accepted(RequestId::new(1), JobId::new(1), 1);
        t.completed(ConnId::new(0), JobId::new(1), 10, false, 5);
        t.status_update(JobId::new(1), JobStatus::Running);
        assert_eq!(t.get(JobId::new(1)).unwrap().status, JobStatus::Completed);
    }

    /// A `JobComplete` that overtakes its `SubmitAck` must still leave
    /// the job terminal once the late ack arrives — found by
    /// `shadow-check explore` as a stuck-job violation under reordered
    /// delivery.
    #[test]
    fn completion_before_ack_stays_terminal() {
        let mut t = JobTracker::default();
        let conn = ConnId::new(2);
        t.submitted(RequestId::new(1), conn, 100);
        t.completed(conn, JobId::new(4), 8, false, 200);
        let job = t.get(JobId::new(4)).unwrap();
        assert_eq!(job.status, JobStatus::Completed);
        assert!(t.pending_jobs().is_empty());

        t.accepted(RequestId::new(1), JobId::new(4), 300);
        let job = t.get(JobId::new(4)).unwrap();
        assert_eq!(job.status, JobStatus::Completed, "late ack must not requeue");
        assert_eq!(job.conn, conn);
        assert_eq!(job.request, RequestId::new(1));
        assert_eq!(job.submitted_at_ms, 100);
        assert_eq!(job.output_bytes, Some(8));
        assert!(t.pending_jobs().is_empty());
    }

    #[test]
    fn failed_jobs_are_terminal() {
        let mut t = JobTracker::default();
        t.submitted(RequestId::new(1), ConnId::new(0), 0);
        t.accepted(RequestId::new(1), JobId::new(1), 1);
        t.completed(ConnId::new(0), JobId::new(1), 0, true, 5);
        assert_eq!(t.get(JobId::new(1)).unwrap().status, JobStatus::Failed);
        assert!(t.pending_jobs().is_empty());
    }

    #[test]
    fn iter_orders_by_job_id() {
        let mut t = JobTracker::default();
        for i in [3u64, 1, 2] {
            t.submitted(RequestId::new(i), ConnId::new(0), 0);
            t.accepted(RequestId::new(i), JobId::new(i), 0);
        }
        let ids: Vec<u64> = t.iter().map(|(id, _)| id.as_u64()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
