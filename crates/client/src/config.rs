//! Client configuration and the shadow environment (§6.3.1).

use shadow_diff::DiffAlgorithm;
use shadow_proto::{DomainId, HostName, TransferEncoding};

/// How the client moves file content to servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransferMode {
    /// Shadow processing: notify on edit, answer demand-driven pulls with
    /// deltas against the server's cached base.
    #[default]
    Shadow,
    /// The conventional batch baseline the paper measures against: push
    /// every file in full with each submission ("the client must transfer
    /// all the files needed for remote processing over the network every
    /// time he submits a job").
    Conventional,
}

/// When to prefer a delta over a full transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeltaPolicy {
    /// Send the smaller of {delta, full} — adaptive, the default (§3's
    /// adaptability goal: heavily edited files ship whole).
    #[default]
    Adaptive,
    /// Always send a delta when a base is available (the naive prototype
    /// behaviour; the ablation bench quantifies the difference).
    Always,
}

/// The per-user customization database (§6.3.1: "the shadow environment is
/// a database that contains … customization information for each user.
/// Though the environment is set up automatically, a user has an option to
/// customize it").
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowEnv {
    /// Default supercomputer host for `submit` without an explicit host.
    pub default_server: Option<HostName>,
    /// The user's editor command (informational; the
    /// [`ShadowEditor`](crate::ShadowEditor)
    /// wrapper invokes whatever [`Editor`](crate::Editor) it is given,
    /// leaving the user's tool unchanged).
    pub editor: String,
    /// Older versions retained per file (§6.3.2 customization).
    pub version_retention: usize,
    /// Transfer encoding for update payloads.
    pub encoding: TransferEncoding,
    /// Delta-versus-full decision policy.
    pub delta_policy: DeltaPolicy,
    /// Diff algorithm for producing deltas.
    pub algorithm: DiffAlgorithm,
}

impl Default for ShadowEnv {
    fn default() -> Self {
        ShadowEnv {
            default_server: None,
            editor: "vi".to_string(),
            version_retention: 4,
            encoding: TransferEncoding::Identity,
            delta_policy: DeltaPolicy::default(),
            algorithm: DiffAlgorithm::default(),
        }
    }
}

/// Configuration of a [`ClientNode`](crate::ClientNode).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// This workstation's host name.
    pub host: HostName,
    /// The naming domain this client resolves names within.
    pub domain: DomainId,
    /// Transfer mode (shadow vs. conventional baseline).
    pub mode: TransferMode,
    /// The user's shadow environment.
    pub env: ShadowEnv,
    /// Completed job outputs retained per connection as reverse-shadow
    /// bases.
    pub output_retention: usize,
}

impl ClientConfig {
    /// A client with the default shadow environment.
    pub fn new(host: impl Into<String>, domain: u64) -> Self {
        ClientConfig {
            host: HostName::new(host.into()),
            domain: DomainId::new(domain),
            mode: TransferMode::default(),
            env: ShadowEnv::default(),
            output_retention: 4,
        }
    }

    /// Starts a validated fluent builder; invariants (non-empty host,
    /// retention limits ≥ 1) are checked once at
    /// [`build()`](ClientConfigBuilder::build).
    pub fn builder(host: impl Into<String>, domain: u64) -> ClientConfigBuilder {
        ClientConfigBuilder {
            config: ClientConfig::new(host, domain),
        }
    }

    /// Switches to the conventional (full-transfer) baseline mode.
    #[must_use]
    pub fn conventional(mut self) -> Self {
        self.mode = TransferMode::Conventional;
        self
    }

    /// Sets the shadow environment.
    #[must_use]
    pub fn with_env(mut self, env: ShadowEnv) -> Self {
        self.env = env;
        self
    }
}

/// A configuration value rejected by a builder's `build()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for [`ClientConfig`], created by
/// [`ClientConfig::builder`]. Unlike the `with_*` conveniences on the
/// config itself, every invariant is deferred to [`build()`](Self::build)
/// and reported as a [`ConfigError`] instead of a panic.
#[derive(Debug, Clone)]
pub struct ClientConfigBuilder {
    config: ClientConfig,
}

impl ClientConfigBuilder {
    /// Switches to the conventional (full-transfer) baseline mode.
    #[must_use]
    pub fn conventional(mut self) -> Self {
        self.config.mode = TransferMode::Conventional;
        self
    }

    /// Replaces the whole shadow environment.
    #[must_use]
    pub fn env(mut self, env: ShadowEnv) -> Self {
        self.config.env = env;
        self
    }

    /// Sets the user's editor command (§6.3.1 customization).
    #[must_use]
    pub fn editor(mut self, editor: impl Into<String>) -> Self {
        self.config.env.editor = editor.into();
        self
    }

    /// Sets how many older versions are retained per file.
    #[must_use]
    pub fn version_retention(mut self, versions: usize) -> Self {
        self.config.env.version_retention = versions;
        self
    }

    /// Sets the transfer encoding for update payloads.
    #[must_use]
    pub fn encoding(mut self, encoding: TransferEncoding) -> Self {
        self.config.env.encoding = encoding;
        self
    }

    /// Sets the delta-versus-full decision policy.
    #[must_use]
    pub fn delta_policy(mut self, policy: DeltaPolicy) -> Self {
        self.config.env.delta_policy = policy;
        self
    }

    /// Sets the diff algorithm used to produce deltas.
    #[must_use]
    pub fn diff_algorithm(mut self, algorithm: DiffAlgorithm) -> Self {
        self.config.env.algorithm = algorithm;
        self
    }

    /// Sets the default supercomputer host for bare `submit`s.
    #[must_use]
    pub fn default_server(mut self, host: impl Into<String>) -> Self {
        self.config.env.default_server = Some(HostName::new(host.into()));
        self
    }

    /// Sets how many completed job outputs are retained per connection
    /// as reverse-shadow bases.
    #[must_use]
    pub fn output_retention(mut self, outputs: usize) -> Self {
        self.config.output_retention = outputs;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<ClientConfig, ConfigError> {
        let c = self.config;
        if c.host.as_str().is_empty() {
            return Err(ConfigError("host name must not be empty".into()));
        }
        if c.env.version_retention < 1 {
            return Err(ConfigError(
                "version retention must be >= 1: the client must always \
                 keep its own latest version"
                    .into(),
            ));
        }
        if c.output_retention < 1 {
            return Err(ConfigError(
                "output retention must be >= 1 for reverse shadow bases".into(),
            ));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ClientConfig::new("ws", 3);
        assert_eq!(c.mode, TransferMode::Shadow);
        assert_eq!(c.env.version_retention, 4);
        assert_eq!(c.env.delta_policy, DeltaPolicy::Adaptive);
        assert_eq!(c.env.editor, "vi");
        assert_eq!(c.domain, DomainId::new(3));
    }

    #[test]
    fn conventional_builder() {
        let c = ClientConfig::new("ws", 1).conventional();
        assert_eq!(c.mode, TransferMode::Conventional);
    }

    #[test]
    fn builder_builds_and_validates() {
        let c = ClientConfig::builder("ws", 2)
            .editor("emacs")
            .version_retention(9)
            .encoding(TransferEncoding::Lzss)
            .delta_policy(DeltaPolicy::Always)
            .default_server("superc")
            .output_retention(2)
            .build()
            .unwrap();
        assert_eq!(c.env.editor, "emacs");
        assert_eq!(c.env.version_retention, 9);
        assert_eq!(c.env.encoding, TransferEncoding::Lzss);
        assert_eq!(c.env.delta_policy, DeltaPolicy::Always);
        assert_eq!(c.env.default_server, Some(HostName::new("superc")));
        assert_eq!(c.output_retention, 2);
        // Builder defaults equal the plain constructor.
        assert_eq!(ClientConfig::builder("ws", 1).build().unwrap(), ClientConfig::new("ws", 1));
    }

    #[test]
    fn builder_rejects_bad_values() {
        let e = ClientConfig::builder("ws", 1).version_retention(0).build();
        assert!(e.unwrap_err().to_string().contains("retention"));
        let e = ClientConfig::builder("ws", 1).output_retention(0).build();
        assert!(e.is_err());
        let e = ClientConfig::builder("", 1).build();
        assert!(e.unwrap_err().to_string().contains("host"));
    }

    #[test]
    fn env_customization() {
        let env = ShadowEnv {
            editor: "emacs".into(),
            version_retention: 9,
            encoding: TransferEncoding::Lzss,
            ..ShadowEnv::default()
        };
        let c = ClientConfig::new("ws", 1).with_env(env.clone());
        assert_eq!(c.env, env);
    }
}
