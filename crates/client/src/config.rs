//! Client configuration and the shadow environment (§6.3.1).

use shadow_diff::DiffAlgorithm;
use shadow_proto::{DomainId, HostName, TransferEncoding};

/// How the client moves file content to servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransferMode {
    /// Shadow processing: notify on edit, answer demand-driven pulls with
    /// deltas against the server's cached base.
    #[default]
    Shadow,
    /// The conventional batch baseline the paper measures against: push
    /// every file in full with each submission ("the client must transfer
    /// all the files needed for remote processing over the network every
    /// time he submits a job").
    Conventional,
}

/// When to prefer a delta over a full transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeltaPolicy {
    /// Send the smaller of {delta, full} — adaptive, the default (§3's
    /// adaptability goal: heavily edited files ship whole).
    #[default]
    Adaptive,
    /// Always send a delta when a base is available (the naive prototype
    /// behaviour; the ablation bench quantifies the difference).
    Always,
}

/// The per-user customization database (§6.3.1: "the shadow environment is
/// a database that contains … customization information for each user.
/// Though the environment is set up automatically, a user has an option to
/// customize it").
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowEnv {
    /// Default supercomputer host for `submit` without an explicit host.
    pub default_server: Option<HostName>,
    /// The user's editor command (informational; the
    /// [`ShadowEditor`](crate::ShadowEditor)
    /// wrapper invokes whatever [`Editor`](crate::Editor) it is given,
    /// leaving the user's tool unchanged).
    pub editor: String,
    /// Older versions retained per file (§6.3.2 customization).
    pub version_retention: usize,
    /// Transfer encoding for update payloads.
    pub encoding: TransferEncoding,
    /// Delta-versus-full decision policy.
    pub delta_policy: DeltaPolicy,
    /// Diff algorithm for producing deltas.
    pub algorithm: DiffAlgorithm,
}

impl Default for ShadowEnv {
    fn default() -> Self {
        ShadowEnv {
            default_server: None,
            editor: "vi".to_string(),
            version_retention: 4,
            encoding: TransferEncoding::Identity,
            delta_policy: DeltaPolicy::default(),
            algorithm: DiffAlgorithm::default(),
        }
    }
}

/// Configuration of a [`ClientNode`](crate::ClientNode).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// This workstation's host name.
    pub host: HostName,
    /// The naming domain this client resolves names within.
    pub domain: DomainId,
    /// Transfer mode (shadow vs. conventional baseline).
    pub mode: TransferMode,
    /// The user's shadow environment.
    pub env: ShadowEnv,
    /// Completed job outputs retained per connection as reverse-shadow
    /// bases.
    pub output_retention: usize,
}

impl ClientConfig {
    /// A client with the default shadow environment.
    pub fn new(host: impl Into<String>, domain: u64) -> Self {
        ClientConfig {
            host: HostName::new(host.into()),
            domain: DomainId::new(domain),
            mode: TransferMode::default(),
            env: ShadowEnv::default(),
            output_retention: 4,
        }
    }

    /// Switches to the conventional (full-transfer) baseline mode.
    #[must_use]
    pub fn conventional(mut self) -> Self {
        self.mode = TransferMode::Conventional;
        self
    }

    /// Sets the shadow environment.
    #[must_use]
    pub fn with_env(mut self, env: ShadowEnv) -> Self {
        self.env = env;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ClientConfig::new("ws", 3);
        assert_eq!(c.mode, TransferMode::Shadow);
        assert_eq!(c.env.version_retention, 4);
        assert_eq!(c.env.delta_policy, DeltaPolicy::Adaptive);
        assert_eq!(c.env.editor, "vi");
        assert_eq!(c.domain, DomainId::new(3));
    }

    #[test]
    fn conventional_builder() {
        let c = ClientConfig::new("ws", 1).conventional();
        assert_eq!(c.mode, TransferMode::Conventional);
    }

    #[test]
    fn env_customization() {
        let env = ShadowEnv {
            editor: "emacs".into(),
            version_retention: 9,
            encoding: TransferEncoding::Lzss,
            ..ShadowEnv::default()
        };
        let c = ClientConfig::new("ws", 1).with_env(env.clone());
        assert_eq!(c.env, env);
    }
}
